"""Table II: SMP prefiltering of the MEDLINE document for queries M1-M5."""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.bench import TableReporter, measure, megabytes
from repro.workloads.medline import MEDLINE_QUERIES, MEDLINE_QUERY_ORDER

_REPORTER = TableReporter(
    title="Table II - SMP prefiltering of the MEDLINE document",
    columns=[
        "Query", "Proj.Size MB", "Mem MB", "Usr+Sys s", "States (CW+BM)",
        "Shift [char]", "Init.Jumps %", "Char Comp. %",
    ],
)


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()


@pytest.mark.parametrize("query_name", MEDLINE_QUERY_ORDER)
def test_table2_row(benchmark, query_name, medline_document, medline_schema):
    spec = MEDLINE_QUERIES[query_name]
    prefilter = SmpPrefilter.compile(
        medline_schema, spec.parsed_paths(), add_default_paths=False,
    )

    def run():
        return prefilter.session().run(medline_document)

    measurement = measure(run)
    run_result = measurement.result
    benchmark.pedantic(run, rounds=1, iterations=1)

    stats = run_result.stats
    _REPORTER.add_row(
        query_name,
        megabytes(run_result.output_size),
        megabytes(measurement.peak_memory_bytes),
        measurement.cpu_seconds,
        prefilter.compilation.states_label(),
        stats.average_shift,
        stats.initial_jump_ratio,
        stats.char_comparison_ratio,
    )

    # Shape assertions: MEDLINE tag names are long, so the average shift is
    # larger than on XMark, and only a small fraction of characters is read.
    assert stats.average_shift > 4.0
    assert stats.char_comparison_ratio < 40.0
    if query_name == "M1":
        # M1 targets an element that never occurs: near-empty projection.
        assert stats.projection_ratio < 0.001
