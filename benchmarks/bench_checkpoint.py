"""Checkpoint overhead: durability cost vs checkpoint interval.

The scenario is the serving loop of ``aio.serve_records``: a MEDLINE
record feed flowing through the 4-query shared scan (M2-M5), with the
session checkpointed durably (atomic write + fsync, see
:func:`repro.checkpoint.write_checkpoint`) every N records.  The sweep
measures the wall-time overhead over the identical uncheckpointed run
for N in 1/4/16/64 and persists the series as
``benchmarks/results/BENCH_checkpoint.json``.

Capture itself (``session.checkpoint()`` without a path) is separately
measured and is effectively free -- the cost is durability: one fsynced
file replace per interval.  That cost is fixed per checkpoint, so the
overhead fraction is ``ckpt_cost / (interval x record work)``; the
**gated bound** is the recovery contract the README advertises: at a
64-record interval the overhead must stay <= 5 %.  Byte-identity of the
checkpointed run's output against the uncheckpointed reference is
asserted on every row.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import api
from repro.bench import throughput_mb_per_second, TableReporter, write_json_report
from repro.workloads import load_dataset
from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd

DOCUMENT_BYTES = 16_000_000
RECORD_BYTES = 64 * 1024
QUERIES = ("M2", "M3", "M4", "M5")
INTERVALS = (64, 16, 4, 1)
#: Gated: overhead of checkpointing every 64 records vs no checkpoints.
OVERHEAD_BOUND_AT_64 = 0.05
ROUNDS = 3

_REPORTER = TableReporter(
    title="Checkpoint interval sweep (MEDLINE feed, shared M2-M5, fsync per checkpoint)",
    columns=["Interval", "Checkpoints", "Wall s", "MB/s", "Overhead"],
)
_ROWS: list[dict[str, float]] = []
_CAPTURE: list[float] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()
    if _ROWS or _CAPTURE:
        write_json_report("BENCH_checkpoint.json", {
            "workload": "medline",
            "queries": list(QUERIES),
            "backend": "native",
            "document_bytes": float(DOCUMENT_BYTES),
            "record_bytes": float(RECORD_BYTES),
            "overhead_bound_at_64": OVERHEAD_BOUND_AT_64,
            "capture_only_seconds": _CAPTURE[0] if _CAPTURE else None,
            "interval_sweep": _ROWS,
        })


@pytest.fixture(scope="module")
def records():
    document = load_dataset("medline", size_bytes=DOCUMENT_BYTES).encode("utf-8")
    return [
        document[offset:offset + RECORD_BYTES]
        for offset in range(0, len(document), RECORD_BYTES)
    ]


@pytest.fixture(scope="module")
def engine():
    dtd = medline_dtd()
    return api.Engine([
        api.Query.from_spec(dtd, MEDLINE_QUERIES[name], backend="native")
        for name in QUERIES
    ])


@pytest.fixture(scope="module")
def reference(engine, records):
    run = engine.run(api.Source.from_bytes(b"".join(records)), binary=True)
    return run.outputs


def _drive(engine, records, checkpoint_path, interval):
    """Feed the record stream, checkpointing durably every ``interval``."""
    collected = [[] for _ in range(len(QUERIES))]
    session = engine.open(
        sinks=[api.CallbackSink(pieces.append) for pieces in collected],
        binary=True,
    )
    taken = 0
    for index, record in enumerate(records, start=1):
        session.feed(record)
        if interval and index % interval == 0:
            session.checkpoint(checkpoint_path)
            taken += 1
    session.finish()
    return [b"".join(pieces) for pieces in collected], taken


def _best_of(callable_, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.fixture(scope="module")
def baseline(engine, records, reference):
    wall, (outputs, taken) = _best_of(
        lambda: _drive(engine, records, None, 0)
    )
    assert taken == 0
    assert outputs == reference
    return wall


def test_capture_without_durability_is_free(engine, records):
    """``session.checkpoint()`` (no path) must cost microseconds, not ms."""
    session = engine.open(binary=True)
    session.feed(records[0])
    rounds = 200
    started = time.perf_counter()
    for _ in range(rounds):
        session.checkpoint()
    per_capture = (time.perf_counter() - started) / rounds
    _CAPTURE.append(per_capture)
    assert per_capture < 0.005, (
        f"in-memory state capture costs {per_capture * 1e3:.2f} ms -- "
        "export_state grew pathological copying"
    )


@pytest.mark.parametrize("interval", INTERVALS)
def test_interval_sweep(benchmark, interval, engine, records, reference,
                        baseline, tmp_path):
    checkpoint_path = str(tmp_path / "sweep.ckpt")

    def run():
        return _drive(engine, records, checkpoint_path, interval)

    wall, (outputs, taken) = _best_of(run)
    benchmark.pedantic(run, rounds=1, iterations=1)
    assert outputs == reference  # checkpointing never changes the bytes
    assert taken == len(records) // interval

    overhead = (wall - baseline) / baseline if baseline else 0.0
    stream_bytes = sum(len(record) for record in records)
    _REPORTER.add_row(
        interval, taken, wall,
        throughput_mb_per_second(stream_bytes, wall),
        f"{overhead * 100:+.1f}%",
    )
    _ROWS.append({
        "interval": float(interval),
        "checkpoints_taken": float(taken),
        "wall_seconds": wall,
        "baseline_wall_seconds": baseline,
        "throughput_mb_per_second":
            throughput_mb_per_second(stream_bytes, wall),
        "overhead_vs_no_checkpoint": overhead,
    })

    if interval == 64:
        assert overhead <= OVERHEAD_BOUND_AT_64, (
            f"checkpointing every 64 records costs {overhead * 100:.1f}% "
            f"over the uncheckpointed run (bound "
            f"{OVERHEAD_BOUND_AT_64 * 100:.0f}%) -- the durable write has "
            "grown too expensive for the serving loop"
        )
