"""Parallel sharded execution and buffer-reuse ingestion benchmarks.

Two series, persisted as ``benchmarks/results/BENCH_parallel.json``:

* **jobs sweep** -- a generated multi-document MEDLINE corpus filtered by
  ``Engine(mode="parallel", jobs=N)`` for N in 1/2/4/8: wall time,
  throughput and the speedup over ``jobs=1``.  On a multi-core machine the
  speedup tracks the worker count until it saturates the cores (the run
  records ``cpu_count`` so the trajectory is interpretable); correctness
  (byte-identical merge) is asserted on every row.
* **buffer-reuse A/B** -- the single-stream chunk-size sweep run twice,
  with fresh-``bytes`` reads vs pooled ``readinto`` buffers, quantifying
  the allocator churn removed by :class:`repro.core.sources.BufferPool`.

Scaling assertions are gated on the available CPU count: a 1-core
container cannot (and must not pretend to) show multi-core speedups.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import api
from repro.bench import TableReporter, throughput_mb_per_second, write_json_report
from repro.core.sources import BufferPool
from repro.workloads.medline import (
    MEDLINE_QUERIES,
    generate_medline_document,
    medline_dtd,
)

JOBS_SWEEP = (1, 2, 4, 8)
CORPUS_DOCUMENTS = 8
CORPUS_DOCUMENT_BYTES = 750_000
AB_CHUNK_SIZES = (64 * 1024, 1024 * 1024)
ROUNDS = 3

_CPU_COUNT = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
    else (os.cpu_count() or 1)

_REPORTER = TableReporter(
    title="Parallel sharded corpus execution (MEDLINE, M2+M5)",
    columns=["Jobs", "Wall s", "MB/s", "Speedup vs jobs=1"],
)
_AB_REPORTER = TableReporter(
    title="Buffer-reuse A/B: pooled readinto vs fresh bytes (MEDLINE, M2)",
    columns=["Chunk KiB", "Fresh s", "Pooled s", "Pooled/Fresh"],
)

_JOBS_ROWS: list[dict[str, float]] = []
_AB_ROWS: list[dict[str, float]] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_report():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()
    if _AB_REPORTER.rows:
        _AB_REPORTER.emit()
    if _JOBS_ROWS or _AB_ROWS:
        write_json_report("BENCH_parallel.json", {
            "workload": "medline",
            "queries": ["M2", "M5"],
            "backend": "native",
            "cpu_count": float(_CPU_COUNT),
            "corpus_documents": float(CORPUS_DOCUMENTS),
            "corpus_document_bytes": float(CORPUS_DOCUMENT_BYTES),
            "jobs_sweep": _JOBS_ROWS,
            "buffer_reuse_ab": _AB_ROWS,
        })


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A deterministic multi-document corpus on disk."""
    directory = tmp_path_factory.mktemp("parallel-corpus")
    paths = []
    citations = max(10, CORPUS_DOCUMENT_BYTES // 1650)
    for index in range(CORPUS_DOCUMENTS):
        document = generate_medline_document(
            citations=citations, seed=1000 + index
        )
        path = directory / f"doc{index:02d}.xml"
        path.write_text(document, encoding="utf-8")
        paths.append(str(path))
    return paths


@pytest.fixture(scope="module")
def corpus_bytes(corpus):
    return sum(os.path.getsize(path) for path in corpus)


@pytest.fixture(scope="module")
def queries():
    dtd = medline_dtd()
    return [
        api.Query.from_spec(dtd, MEDLINE_QUERIES[name], backend="native")
        for name in ("M2", "M5")
    ]


@pytest.fixture(scope="module")
def reference_outputs(corpus, queries):
    run = api.Engine(queries).run(api.Source.from_paths(corpus), binary=True)
    return run.outputs


def best_of(callable_, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.mark.parametrize("jobs", JOBS_SWEEP)
def test_jobs_sweep(benchmark, jobs, corpus, corpus_bytes, queries,
                    reference_outputs):
    engine = api.Engine(queries, mode="parallel", jobs=jobs)

    def run():
        return engine.run(api.Source.from_paths(corpus), binary=True)

    wall, result = best_of(run)
    benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.outputs == reference_outputs  # the merge is byte-identical
    assert result.jobs == jobs

    throughput = throughput_mb_per_second(corpus_bytes, wall)
    baseline = next(
        (row["wall_seconds"] for row in _JOBS_ROWS if row["jobs"] == 1), wall
    )
    speedup = baseline / wall if wall else 0.0
    _REPORTER.add_row(jobs, wall, throughput, speedup)
    _JOBS_ROWS.append({
        "jobs": float(jobs),
        "corpus_bytes": float(corpus_bytes),
        "wall_seconds": wall,
        "throughput_mb_per_second": throughput,
        "speedup_vs_jobs1": speedup,
    })

    # Scaling bounds, gated on the hardware actually having the cores: the
    # merge-correctness assertion above runs everywhere, the speedup bound
    # only where a speedup is physically possible.
    if jobs == 4 and _CPU_COUNT >= 4:
        assert speedup >= 2.5, (
            f"jobs=4 reached only {speedup:.2f}x over jobs=1 on "
            f"{_CPU_COUNT} CPUs (bound 2.5x)"
        )
    elif jobs == 2 and _CPU_COUNT >= 2:
        assert speedup >= 1.4, (
            f"jobs=2 reached only {speedup:.2f}x over jobs=1 on "
            f"{_CPU_COUNT} CPUs (bound 1.4x)"
        )


@pytest.mark.parametrize("chunk_size", AB_CHUNK_SIZES)
def test_buffer_reuse_ab(benchmark, chunk_size, corpus, queries):
    """Pooled ``readinto`` ingestion vs fresh ``bytes`` reads, single stream."""
    engine = api.Engine(queries[:1])
    path = corpus[0]
    size = os.path.getsize(path)

    def run_fresh():
        return engine.run(
            api.Source.from_file(path, chunk_size=chunk_size), binary=True
        )

    pool = BufferPool(chunk_size, capacity=2)

    def run_pooled():
        return engine.run(
            api.Source.from_file(path, chunk_size=chunk_size, pool=pool),
            binary=True,
        )

    fresh_output = run_fresh().single.output
    assert run_pooled().single.output == fresh_output

    fresh_wall, _ = best_of(run_fresh, rounds=5)
    pooled_wall, _ = best_of(run_pooled, rounds=5)
    benchmark.pedantic(run_pooled, rounds=1, iterations=1)
    ratio = pooled_wall / fresh_wall if fresh_wall else 1.0
    _AB_REPORTER.add_row(chunk_size / 1024, fresh_wall, pooled_wall, ratio)
    _AB_ROWS.append({
        "chunk_size": float(chunk_size),
        "input_bytes": float(size),
        "fresh_wall_seconds": fresh_wall,
        "pooled_wall_seconds": pooled_wall,
        "fresh_throughput_mb_per_second":
            throughput_mb_per_second(size, fresh_wall),
        "pooled_throughput_mb_per_second":
            throughput_mb_per_second(size, pooled_wall),
        "pooled_over_fresh_wall_ratio": ratio,
    })
    # The pooled path must never regress below the fresh path (generous
    # slack for timer noise; the win grows with the chunk size).
    assert pooled_wall <= fresh_wall * 1.15, (
        f"pooled readinto ingestion slower than fresh reads at "
        f"{chunk_size >> 10} KiB chunks: {pooled_wall * 1000:.1f} vs "
        f"{fresh_wall * 1000:.1f} ms"
    )
