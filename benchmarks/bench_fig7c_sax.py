"""Figure 7(c): throughput of SAX tokenization vs. SMP prefiltering.

The paper measures the Xerces SAX parser (SAX1/SAX2) against the average SMP
prefiltering throughput on both datasets and finds SMP 3-9x faster although
it performs a more complex task.  The reproduction compares the pure-Python
tokenizer (which, like any SAX parser, must inspect every character) against
the average SMP throughput over the same query workloads, with both systems
implemented in the same runtime.
"""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.bench import TableReporter, measure, throughput_mb_per_second
from repro.workloads.medline import MEDLINE_QUERIES, MEDLINE_QUERY_ORDER
from repro.workloads.xmark import XMARK_QUERIES
from repro.xml import XmlTokenizer

_REPORTER = TableReporter(
    title="Figure 7(c) - Tokenizer vs average SMP throughput",
    columns=["Dataset", "SAX tokenizer MB/s", "avg SMP MB/s", "SMP/SAX ratio"],
)

#: A representative subset of Table I queries keeps the benchmark short; the
#: full set can be swept by editing this tuple.
_XMARK_SUBSET = ("XM1", "XM5", "XM6", "XM13", "XM14", "XM19")


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()


def _tokenize_fully(text: str) -> int:
    count = 0
    for _ in XmlTokenizer(text).tokens():
        count += 1
    return count


def _average_smp_throughput(document: str, schema, specs) -> float:
    rates = []
    for spec in specs:
        prefilter = SmpPrefilter.compile(
            schema, spec.parsed_paths(), backend="native", add_default_paths=False,
        )
        run = measure(lambda: prefilter.session().run(document), trace_memory=False)
        rates.append(throughput_mb_per_second(len(document), run.wall_seconds))
    return sum(rates) / len(rates)


@pytest.mark.parametrize("dataset", ["xmark", "medline"])
def test_fig7c_row(benchmark, dataset, xmark_document, medline_document,
                   xmark_schema, medline_schema):
    if dataset == "xmark":
        document, schema = xmark_document, xmark_schema
        specs = [XMARK_QUERIES[name] for name in _XMARK_SUBSET]
    else:
        document, schema = medline_document, medline_schema
        specs = [MEDLINE_QUERIES[name] for name in MEDLINE_QUERY_ORDER]

    sax = measure(lambda: _tokenize_fully(document), trace_memory=False)
    sax_rate = throughput_mb_per_second(len(document), sax.wall_seconds)
    smp_rate = _average_smp_throughput(document, schema, specs)
    benchmark.pedantic(lambda: _tokenize_fully(document), rounds=1, iterations=1)

    _REPORTER.add_row(dataset, sax_rate, smp_rate, smp_rate / sax_rate if sax_rate else 0.0)

    # The paper's headline: prefiltering with string matching is faster than
    # merely tokenizing the input.
    assert smp_rate > sax_rate
