"""Shared fixtures for the benchmark suite.

Every benchmark obtains its input documents from :mod:`repro.workloads`
(deterministic synthetic XMark / MEDLINE data).  The document size defaults
to ``repro.workloads.datasets.DEFAULT_DOCUMENT_BYTES`` and can be raised via
the ``REPRO_DOCUMENT_BYTES`` environment variable to study scaling.
"""

from __future__ import annotations

import pytest

from repro.workloads import default_document_bytes, load_dataset
from repro.workloads.medline import medline_dtd
from repro.workloads.xmark import xmark_dtd


@pytest.fixture(scope="session")
def document_bytes() -> int:
    """Benchmark document size in bytes."""
    return default_document_bytes()


@pytest.fixture(scope="session")
def xmark_document(document_bytes: int) -> str:
    """The XMark-like benchmark document."""
    return load_dataset("xmark", size_bytes=document_bytes)


@pytest.fixture(scope="session")
def medline_document(document_bytes: int) -> str:
    """The MEDLINE-like benchmark document."""
    return load_dataset("medline", size_bytes=document_bytes)


@pytest.fixture(scope="session")
def xmark_schema():
    """The XMark DTD (parsed once per session)."""
    return xmark_dtd()


@pytest.fixture(scope="session")
def medline_schema():
    """The MEDLINE DTD (parsed once per session)."""
    return medline_dtd()
