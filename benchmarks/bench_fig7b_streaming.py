"""Figure 7(b): streaming XPath evaluation with and without SMP prefiltering.

The paper runs SPEX stand-alone over MEDLINE and then pipelines SMP
prefiltering in front of it; the pipelined runtime stays close to the
prefiltering time alone and the end-to-end throughput rises substantially.
The reproduction replays this with the streaming XPath engine over the
MEDLINE-like document for queries M1-M5.

A second table sweeps the chunk size of the *incremental* filter path and
records throughput and peak memory per chunk size -- the constant-memory
claim of Table I.  The sweep runs in three ingestion modes: ``str`` (the
encode shim), ``bytes`` (the native path, no per-chunk encode or decode)
and ``mmap`` (the whole memory-mapped document as the search buffer).  The
sweep is persisted as machine-readable
``benchmarks/results/BENCH_streaming.json`` so future changes have a perf
trajectory to compare against; the bytes rows must not fall below the str
rows at 1 MiB chunks (no decode-copy regression).
"""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.accel import accel_available
from repro.bench import (
    TableReporter,
    measure,
    megabytes,
    throughput_mb_per_second,
    write_json_report,
)
from repro.core.sources import open_mmap
from repro.core.stream import iter_chunks
from repro.workloads.medline import MEDLINE_QUERIES, MEDLINE_QUERY_ORDER
from repro.xpath import StreamingXPathEngine

#: Chunk sizes of the streaming sweep (4 KiB .. 1 MiB).
CHUNK_SIZES = (4 * 1024, 64 * 1024, 1024 * 1024)

_REPORTER = TableReporter(
    title="Figure 7(b) - Streaming engine alone vs SMP-pipelined (MEDLINE)",
    columns=[
        "Query", "Alone s", "Alone MB/s",
        "SMP s", "Pipelined s", "Pipelined MB/s", "Results",
    ],
)

_SWEEP_REPORTER = TableReporter(
    title="Streaming filter chunk-size sweep (MEDLINE, M2)",
    columns=[
        "Mode", "Chunk KiB", "Wall s", "MB/s", "Peak traced KiB", "Peak RSS MB",
    ],
)

_SWEEP_ROWS: list[dict[str, float]] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()
    if _SWEEP_REPORTER.rows:
        _SWEEP_REPORTER.emit()
    if _SWEEP_ROWS:
        write_json_report("BENCH_streaming.json", {
            "workload": "medline",
            "query": "M2",
            "backend": "native",
            "rows": _SWEEP_ROWS,
        })


@pytest.mark.parametrize("query_name", MEDLINE_QUERY_ORDER)
def test_fig7b_row(benchmark, query_name, medline_document, medline_schema):
    spec = MEDLINE_QUERIES[query_name]
    engine = StreamingXPathEngine(spec.query)
    prefilter = SmpPrefilter.compile(
        medline_schema, spec.parsed_paths(), backend="native", add_default_paths=False,
    )
    input_size = len(medline_document)

    alone = measure(lambda: engine.evaluate(medline_document), trace_memory=False)
    smp = measure(lambda: prefilter.session().run(medline_document), trace_memory=False)
    projected = smp.result.output
    piped = measure(lambda: engine.evaluate(projected), trace_memory=False)
    benchmark.pedantic(
        lambda: StreamingXPathEngine(spec.query).evaluate(
            prefilter.session().run(medline_document).output
        ),
        rounds=1,
        iterations=1,
    )

    pipelined_seconds = smp.wall_seconds + piped.wall_seconds
    _REPORTER.add_row(
        query_name,
        alone.wall_seconds,
        throughput_mb_per_second(input_size, alone.wall_seconds),
        smp.wall_seconds,
        pipelined_seconds,
        throughput_mb_per_second(input_size, pipelined_seconds),
        len(piped.result),
    )

    # The pipelined evaluation must return the same results and be faster
    # than evaluating the raw stream (the Figure 7(b) claim).
    def values(items):
        return sorted(
            item.serialize() if hasattr(item, "serialize") else str(item) for item in items
        )

    assert values(piped.result) == values(alone.result)
    assert pipelined_seconds < alone.wall_seconds


#: Ingestion modes of the sweep: the str encode shim, the native byte
#: path, and (one row, no chunking) the memory-mapped whole-file window.
#: The delivery rows ablate the below-the-interpreter layers one by one on
#: the 1 MiB byte path: ``pertoken`` (the generator reference), ``batched``
#: (flat drive loop + vectorized scans), ``accel`` (batched + the C token
#: kernel) -- all byte-identical in output, differing only in cost.
DELIVERY_MODES = ("pertoken", "batched", "accel")
SWEEP_CASES = tuple(
    ("str", chunk_size) for chunk_size in CHUNK_SIZES
) + tuple(
    ("bytes", chunk_size) for chunk_size in CHUNK_SIZES
) + (("mmap", 0),) + tuple(
    (delivery, 1024 * 1024) for delivery in DELIVERY_MODES
)


@pytest.mark.parametrize(("mode", "chunk_size"), SWEEP_CASES,
                         ids=lambda value: str(value))
def test_chunk_size_sweep(benchmark, mode, chunk_size, medline_document,
                          medline_schema, tmp_path_factory):
    """Throughput and peak memory per chunk size and ingestion mode."""
    spec = MEDLINE_QUERIES["M2"]
    prefilter = SmpPrefilter.compile(
        medline_schema, spec.parsed_paths(), backend="native",
        add_default_paths=False,
    )
    input_size = len(medline_document)
    document_bytes = medline_document.encode("utf-8")
    if mode == "mmap":
        mmap_path = tmp_path_factory.mktemp("sweep") / "medline.xml"
        mmap_path.write_bytes(document_bytes)
    if mode == "accel" and not accel_available():
        pytest.skip("repro._accel extension not built")

    def run_streamed():
        sink_bytes = 0

        def sink(fragment) -> None:
            nonlocal sink_bytes
            sink_bytes += len(fragment)

        if mode == "str":
            run = prefilter.session(sink=sink, binary=True).run(iter_chunks(medline_document, chunk_size))
        elif mode == "bytes":
            run = prefilter.session(sink=sink, binary=True).run(iter_chunks(document_bytes, chunk_size))
        elif mode == "mmap":
            run = prefilter.session(sink=sink, binary=True).run([open_mmap(str(mmap_path))])
        else:  # delivery ablation on the byte path
            session = prefilter.session(sink=sink, binary=True, delivery=mode)
            for chunk in iter_chunks(document_bytes, chunk_size):
                session.feed(chunk)
            session.finish()
            assert session.delivery == mode
            run = session
        return run, sink_bytes

    # Peak memory comes from a traced run; wall time from an untraced one
    # (tracemalloc slows allocation-heavy code down several-fold and would
    # distort the recorded throughput trajectory).
    traced = measure(run_streamed, trace_memory=True)
    timed = measure(run_streamed, trace_memory=False)
    benchmark.pedantic(lambda: run_streamed(), rounds=1, iterations=1)
    run, sink_bytes = timed.result
    assert sink_bytes == run.stats.output_size

    throughput = throughput_mb_per_second(input_size, timed.wall_seconds)
    _SWEEP_REPORTER.add_row(
        mode,
        chunk_size / 1024,
        timed.wall_seconds,
        throughput,
        traced.peak_memory_bytes / 1024,
        megabytes(timed.peak_rss_bytes),
    )
    _SWEEP_ROWS.append({
        "mode": mode,
        "chunk_size": float(chunk_size),
        "input_bytes": float(input_size),
        "wall_seconds": timed.wall_seconds,
        "throughput_mb_per_second": throughput,
        "peak_traced_bytes": float(traced.peak_memory_bytes),
        "peak_rss_bytes": float(timed.peak_rss_bytes),
    })

    # The constant-memory claim: the traced peak tracks the chunk size plus
    # the carry-over window, never the document.  (The mmap window is file
    # pages, not traced heap, so the same bound holds there.)
    if mode != "mmap":
        assert traced.peak_memory_bytes < max(8 * chunk_size, 1 << 20)

    # Large chunks must not collapse throughput (the pre-fix sweep showed
    # 367 MB/s at 64 KiB vs 112 MB/s at 1 MiB): the 1 MiB figure stays
    # within 2x of the 64 KiB figure, with slack for timer noise.
    by_chunk = {
        int(row["chunk_size"]): row
        for row in _SWEEP_ROWS if row["mode"] == mode
    }
    if 65536 in by_chunk and 1048576 in by_chunk:
        small = by_chunk[65536]["throughput_mb_per_second"]
        large = by_chunk[1048576]["throughput_mb_per_second"]
        assert large * 2.5 >= small, (
            f"large-chunk throughput collapsed ({mode}): {large:.0f} MB/s "
            f"at 1 MiB vs {small:.0f} MB/s at 64 KiB"
        )

    # The no-decode-copy claim: at 1 MiB chunks the byte path must at least
    # match the str shim (generous slack for timer noise in CI).
    str_rows = {
        int(row["chunk_size"]): row
        for row in _SWEEP_ROWS if row["mode"] == "str"
    }
    bytes_rows = {
        int(row["chunk_size"]): row
        for row in _SWEEP_ROWS if row["mode"] == "bytes"
    }
    if 1048576 in str_rows and 1048576 in bytes_rows:
        str_mbps = str_rows[1048576]["throughput_mb_per_second"]
        bytes_mbps = bytes_rows[1048576]["throughput_mb_per_second"]
        assert bytes_mbps * 1.25 >= str_mbps, (
            f"byte path regressed below the str shim at 1 MiB chunks: "
            f"{bytes_mbps:.0f} vs {str_mbps:.0f} MB/s"
        )
