"""Figure 7(b): streaming XPath evaluation with and without SMP prefiltering.

The paper runs SPEX stand-alone over MEDLINE and then pipelines SMP
prefiltering in front of it; the pipelined runtime stays close to the
prefiltering time alone and the end-to-end throughput rises substantially.
The reproduction replays this with the streaming XPath engine over the
MEDLINE-like document for queries M1-M5.
"""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.bench import TableReporter, measure, megabytes, throughput_mb_per_second
from repro.workloads.medline import MEDLINE_QUERIES, MEDLINE_QUERY_ORDER
from repro.xpath import StreamingXPathEngine

_REPORTER = TableReporter(
    title="Figure 7(b) - Streaming engine alone vs SMP-pipelined (MEDLINE)",
    columns=[
        "Query", "Alone s", "Alone MB/s",
        "SMP s", "Pipelined s", "Pipelined MB/s", "Results",
    ],
)


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()


@pytest.mark.parametrize("query_name", MEDLINE_QUERY_ORDER)
def test_fig7b_row(benchmark, query_name, medline_document, medline_schema):
    spec = MEDLINE_QUERIES[query_name]
    engine = StreamingXPathEngine(spec.query)
    prefilter = SmpPrefilter.compile(
        medline_schema, spec.parsed_paths(), backend="native", add_default_paths=False,
    )
    input_size = len(medline_document)

    alone = measure(lambda: engine.evaluate(medline_document), trace_memory=False)
    smp = measure(lambda: prefilter.filter_document(medline_document), trace_memory=False)
    projected = smp.result.output
    piped = measure(lambda: engine.evaluate(projected), trace_memory=False)
    benchmark.pedantic(
        lambda: StreamingXPathEngine(spec.query).evaluate(
            prefilter.filter_document(medline_document).output
        ),
        rounds=1,
        iterations=1,
    )

    pipelined_seconds = smp.wall_seconds + piped.wall_seconds
    _REPORTER.add_row(
        query_name,
        alone.wall_seconds,
        throughput_mb_per_second(input_size, alone.wall_seconds),
        smp.wall_seconds,
        pipelined_seconds,
        throughput_mb_per_second(input_size, pipelined_seconds),
        len(piped.result),
    )

    # The pipelined evaluation must return the same results and be faster
    # than evaluating the raw stream (the Figure 7(b) claim).
    def values(items):
        return sorted(
            item.serialize() if hasattr(item, "serialize") else str(item) for item in items
        )

    assert values(piped.result) == values(alone.result)
    assert pipelined_seconds < alone.wall_seconds
