"""Figure 7(a): an in-memory query engine with and without SMP prefiltering.

The paper couples QizX with SMP sequentially (prefilter to disk, reload,
evaluate) and shows that prefiltering lets the engine scale to documents it
cannot load otherwise.  The reproduction sweeps document sizes, gives the
in-memory engine a fixed memory budget, and reports for every size whether
stand-alone evaluation succeeds and how the runtimes compare.
"""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.bench import TableReporter, measure, megabytes
from repro.workloads import load_dataset
from repro.workloads.xmark import XMARK_QUERIES
from repro.xpath import InMemoryQueryEngine, MemoryLimitExceeded
from repro.xpath.engine import estimate_tree_memory
from repro.xml.tree import parse_document

_QUERY = "XM13"
_SIZE_FRACTIONS = (0.08, 0.3, 1.0)

_REPORTER = TableReporter(
    title="Figure 7(a) - In-memory engine alone vs SMP + engine (query XM13)",
    columns=[
        "Doc MB", "Engine alone s", "Engine status",
        "SMP s", "SMP+Engine s", "Pipeline status", "Proj MB",
    ],
)


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()


@pytest.fixture(scope="module")
def documents(document_bytes):
    sizes = [max(40_000, int(document_bytes * fraction)) for fraction in _SIZE_FRACTIONS]
    return [(size, load_dataset("xmark", size_bytes=size)) for size in sizes]


@pytest.fixture(scope="module")
def memory_limit(documents):
    """A budget that the largest unprojected document exceeds."""
    largest = documents[-1][1]
    return int(estimate_tree_memory(parse_document(largest)) * 0.6)


@pytest.mark.parametrize("index", range(len(_SIZE_FRACTIONS)))
def test_fig7a_point(benchmark, index, documents, memory_limit, xmark_schema):
    size, document = documents[index]
    spec = XMARK_QUERIES[_QUERY]
    engine = InMemoryQueryEngine(memory_limit_bytes=memory_limit)
    prefilter = SmpPrefilter.compile(
        xmark_schema, spec.parsed_paths(), backend="native", add_default_paths=False,
    )

    # Stand-alone evaluation (may exceed the memory budget).
    def run_alone():
        try:
            return ("ok", engine.run(spec.xpath, document))
        except MemoryLimitExceeded:
            return ("out-of-memory", None)

    alone = measure(run_alone, trace_memory=False)
    alone_status, _ = alone.result

    # Sequential prefilter + evaluation (the paper's "SMP+QizX" setup).
    smp = measure(lambda: prefilter.session().run(document), trace_memory=False)
    projected = smp.result.output

    def run_pipelined():
        try:
            return ("ok", engine.run(spec.xpath, projected))
        except MemoryLimitExceeded:
            return ("out-of-memory", None)

    pipelined = measure(run_pipelined, trace_memory=False)
    pipeline_status, _ = pipelined.result
    benchmark.pedantic(lambda: prefilter.session().run(document), rounds=1, iterations=1)

    _REPORTER.add_row(
        megabytes(size),
        alone.wall_seconds,
        alone_status,
        smp.wall_seconds,
        smp.wall_seconds + pipelined.wall_seconds,
        pipeline_status,
        megabytes(len(projected)),
    )

    # The prefiltered pipeline must always fit in the memory budget.
    assert pipeline_status == "ok"
    if index == len(_SIZE_FRACTIONS) - 1:
        # The largest document must exceed the budget without prefiltering,
        # reproducing the paper's failure cliff.
        assert alone_status == "out-of-memory"
