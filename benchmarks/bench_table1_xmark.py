"""Table I: SMP performance characteristics on the XMark workload.

For every query XM1-XM14, XM17-XM20 the benchmark compiles the prefilter,
runs it over the XMark-like document, and reports the paper's columns:
projected size, peak memory, Usr+Sys CPU seconds, runtime-DFA states split
into CW and BM states, average forward-shift size, initial-jump percentage
and character-comparison percentage.
"""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.bench import TableReporter, measure, megabytes
from repro.workloads.xmark import XMARK_QUERIES, XMARK_QUERY_ORDER

_REPORTER = TableReporter(
    title="Table I - SMP prefiltering of the XMark document",
    columns=[
        "Query", "Proj.Size MB", "Mem MB", "Usr+Sys s", "States (CW+BM)",
        "Shift [char]", "Init.Jumps %", "Char Comp. %",
    ],
)


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()


@pytest.mark.parametrize("query_name", XMARK_QUERY_ORDER)
def test_table1_row(benchmark, query_name, xmark_document, xmark_schema):
    spec = XMARK_QUERIES[query_name]
    prefilter = SmpPrefilter.compile(
        xmark_schema, spec.parsed_paths(), add_default_paths=False,
    )

    def run():
        return prefilter.session().run(xmark_document)

    measurement = measure(run)
    run_result = measurement.result
    benchmark.pedantic(run, rounds=1, iterations=1)

    stats = run_result.stats
    compilation = prefilter.compilation
    _REPORTER.add_row(
        query_name,
        megabytes(run_result.output_size),
        megabytes(measurement.peak_memory_bytes),
        measurement.cpu_seconds,
        compilation.states_label(),
        stats.average_shift,
        stats.initial_jump_ratio,
        stats.char_comparison_ratio,
    )

    # Sanity assertions tying the reproduction to the paper's shape: SMP
    # inspects well under half of the input and produces smaller output.
    assert stats.char_comparison_ratio < 50.0
    assert run_result.output_size < len(xmark_document)
