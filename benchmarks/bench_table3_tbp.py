"""Table III: SMP vs. a tokenizing projector (Type-Based Projection stand-in).

The paper compares SMP against Type-Based Projection (TBP), the only other
schema-aware projection tool, and attributes the two-orders-of-magnitude gap
to TBP's full tokenization of the input.  The reproduction uses the
token-based reference projector as the TBP stand-in: it implements exactly
the same projection semantics but must tokenize every character.
"""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.bench import TableReporter, measure, megabytes
from repro.projection import ReferenceProjector
from repro.workloads.xmark import TBP_COMPARISON_QUERIES, XMARK_QUERIES

_REPORTER = TableReporter(
    title="Table III - Tokenizing projection (TBP stand-in) vs SMP",
    columns=[
        "Query", "TBP Usr+Sys s", "TBP Mem MB", "TBP Proj MB",
        "SMP Usr+Sys s", "SMP Mem MB", "SMP Proj MB", "Speedup x",
    ],
)


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()


@pytest.mark.parametrize("query_name", TBP_COMPARISON_QUERIES)
def test_table3_row(benchmark, query_name, xmark_document, xmark_schema):
    spec = XMARK_QUERIES[query_name]
    paths = spec.parsed_paths()

    projector = ReferenceProjector(
        paths, add_default_paths=False, alphabet=xmark_schema.tag_names(),
    )
    prefilter = SmpPrefilter.compile(
        xmark_schema, paths, backend="native", add_default_paths=False,
    )

    tbp = measure(lambda: projector.project_text(xmark_document))
    smp = measure(lambda: prefilter.session().run(xmark_document))
    benchmark.pedantic(
        lambda: prefilter.session().run(xmark_document), rounds=1, iterations=1,
    )

    speedup = tbp.cpu_seconds / smp.cpu_seconds if smp.cpu_seconds > 0 else float("inf")
    _REPORTER.add_row(
        query_name,
        tbp.cpu_seconds,
        megabytes(tbp.peak_memory_bytes),
        megabytes(tbp.result.output_size),
        smp.cpu_seconds,
        megabytes(smp.peak_memory_bytes),
        megabytes(len(smp.result.output)),
        speedup,
    )

    # Shape assertions: both produce (near) identical projections, and SMP is
    # significantly faster than the tokenizing projector.
    assert smp.result.output == tbp.result.output
    assert smp.cpu_seconds < tbp.cpu_seconds
