"""Ablation: the contribution of the skipping string matchers.

Not a table of the paper, but an ablation its design discussion calls for:
how much of SMP's advantage comes from Boyer-Moore / Commentz-Walter skipping
versus the character-by-character alternatives (naive search and the
Aho-Corasick family used by tokenizing approaches)?  The benchmark runs the
same prefiltering task under every matcher backend and reports character
comparisons and CPU time.
"""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.bench import TableReporter, measure
from repro.matching import available_backends
from repro.workloads import load_dataset
from repro.workloads.xmark import XMARK_QUERIES

_QUERY = "XM13"

#: The naive backend is quadratic-ish in practice; a smaller document keeps
#: the ablation affordable without changing the comparison's shape.
_ABLATION_DOCUMENT_BYTES = 400_000


@pytest.fixture(scope="module")
def ablation_document() -> str:
    return load_dataset("xmark", size_bytes=_ABLATION_DOCUMENT_BYTES)

_REPORTER = TableReporter(
    title="Ablation - matcher backends on query XM13 (XMark)",
    columns=["Backend", "Usr+Sys s", "Char Comp. %", "Shift [char]", "Output bytes"],
)


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()


@pytest.mark.parametrize("backend", sorted(available_backends()))
def test_ablation_backend(benchmark, backend, ablation_document, xmark_schema):
    spec = XMARK_QUERIES[_QUERY]
    prefilter = SmpPrefilter.compile(
        xmark_schema, spec.parsed_paths(), backend=backend, add_default_paths=False,
    )
    run = measure(lambda: prefilter.session().run(ablation_document), trace_memory=False)
    benchmark.pedantic(
        lambda: prefilter.session().run(ablation_document), rounds=1, iterations=1,
    )
    stats = run.result.stats
    _REPORTER.add_row(
        backend,
        run.cpu_seconds,
        stats.char_comparison_ratio,
        stats.average_shift,
        len(run.result.output),
    )
    assert run.result.output  # every backend produces a projection


def test_skipping_beats_character_by_character(ablation_document, xmark_schema):
    """The instrumented BM/CW configuration inspects far fewer characters
    than the naive backend on the same task."""
    spec = XMARK_QUERIES[_QUERY]
    paths = spec.parsed_paths()
    instrumented = SmpPrefilter.compile(
        xmark_schema, paths, backend="instrumented", add_default_paths=False,
    ).session().run(ablation_document)
    naive = SmpPrefilter.compile(
        xmark_schema, paths, backend="naive", add_default_paths=False,
    ).session().run(ablation_document)
    assert instrumented.output == naive.output
    assert instrumented.stats.total_comparisons < naive.stats.total_comparisons / 2
