"""Parameterized throughput over generated workloads.

The builtin benches measure two fixed corpora (MEDLINE, XMark); this one
makes the performance claims *parameterized*: throughput as a function of
nesting depth, fanout, and concurrent query count over seed-deterministic
generated workloads (:func:`repro.workloads.get` ``gen:`` addresses).
Three row series land in ``benchmarks/results/BENCH_generated.json``:

- ``depth_rows``: nesting depth sweep at fixed fanout/query count;
- ``fanout_rows``: fanout sweep at fixed depth;
- ``query_rows``: shared-scan query count sweep on one fixed schema.

No per-row perf gate: the series are informational (they feed the perf
smoke's informational row and release-over-release comparisons).  Byte
correctness *is* asserted: every measured run must produce the same
per-query output as a per-token reference pass.
"""

from __future__ import annotations

import pytest

from repro import MultiQueryEngine, workloads
from repro.bench import (
    TableReporter,
    measure,
    throughput_mb_per_second,
    write_json_report,
)
from repro.core.stream import iter_chunks

CHUNK_SIZE = 64 * 1024
ROUNDS = 3

#: Corpus sizing per generated workload (small enough for CI, large enough
#: to dominate session setup).
RECORDS = 4
RECORD_BYTES = 120_000

DEPTHS = (4, 8, 12, 16)
FANOUTS = (2, 4, 8)
QUERY_COUNTS = (1, 4, 8, 16)

_REPORTER = TableReporter(
    title="Generated workloads: throughput vs depth / fanout / query count",
    columns=["Series", "Value", "Queries", "Input MB", "Wall s", "MB/s"],
)

_DEPTH_ROWS: list[dict[str, object]] = []
_FANOUT_ROWS: list[dict[str, object]] = []
_QUERY_ROWS: list[dict[str, object]] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()
    if _DEPTH_ROWS or _FANOUT_ROWS or _QUERY_ROWS:
        write_json_report("BENCH_generated.json", {
            "records": RECORDS,
            "record_bytes": RECORD_BYTES,
            "chunk_size": CHUNK_SIZE,
            "backend": "native",
            "depth_rows": _DEPTH_ROWS,
            "fanout_rows": _FANOUT_ROWS,
            "query_rows": _QUERY_ROWS,
        })


def _best_of(callable_, rounds=ROUNDS):
    best = None
    for _ in range(rounds):
        sample = measure(callable_, trace_memory=False)
        if best is None or sample.wall_seconds < best.wall_seconds:
            best = sample
    return best


def _satisfiable(workload, count):
    names = [
        name for name in workload.query_order
        if "phantom" not in name and "never" not in name
    ]
    return [workload.query(name) for name in names[:count]]


def _shared_pass(engine, stream, query_count, delivery=None):
    session = engine.session(binary=True, delivery=delivery)
    outputs = [[] for _ in range(query_count)]
    for chunk in iter_chunks(stream, CHUNK_SIZE):
        for index, piece in enumerate(session.feed(chunk)):
            outputs[index].append(piece)
    for index, piece in enumerate(session.finish()):
        outputs[index].append(piece)
    return [b"".join(pieces) for pieces in outputs]


def _measure_workload(address, query_count):
    workload = workloads.get(address)
    stream = workload.stream()
    specs = _satisfiable(workload, query_count)
    assert len(specs) == query_count, address
    engine = MultiQueryEngine(workload.dtd, specs, backend="native")

    # Byte-identity precondition: the measured (default-delivery) pass
    # must equal the per-token reference pass.
    reference = _shared_pass(engine, stream, query_count,
                             delivery="pertoken")
    assert _shared_pass(engine, stream, query_count) == reference

    best = _best_of(lambda: _shared_pass(engine, stream, query_count))
    return stream, best


def _row(series, value, query_count, stream, best):
    mb_per_second = throughput_mb_per_second(len(stream), best.wall_seconds)
    _REPORTER.add_row(
        series, value, query_count, f"{len(stream) / 1e6:.1f}",
        best.wall_seconds, mb_per_second,
    )
    return {
        "series": series,
        "value": value,
        "query_count": query_count,
        "input_bytes": float(len(stream)),
        "wall_seconds": best.wall_seconds,
        "mb_per_second": mb_per_second,
    }


@pytest.mark.parametrize("depth", DEPTHS)
def test_depth_series(benchmark, depth):
    address = (f"gen:depth={depth},fanout=3,seed=31,records={RECORDS},"
               f"record_bytes={RECORD_BYTES},queries=8")
    stream, best = _measure_workload(address, 4)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _DEPTH_ROWS.append(_row("depth", depth, 4, stream, best))


@pytest.mark.parametrize("fanout", FANOUTS)
def test_fanout_series(benchmark, fanout):
    address = (f"gen:depth=5,fanout={fanout},seed=32,records={RECORDS},"
               f"record_bytes={RECORD_BYTES},queries=8")
    stream, best = _measure_workload(address, 4)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _FANOUT_ROWS.append(_row("fanout", fanout, 4, stream, best))


@pytest.mark.parametrize("count", QUERY_COUNTS)
def test_query_count_series(benchmark, count):
    address = (f"gen:depth=6,fanout=4,seed=33,records={RECORDS},"
               f"record_bytes={RECORD_BYTES},queries=24,unsat_ratio=0.0")
    stream, best = _measure_workload(address, count)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _QUERY_ROWS.append(_row("queries", count, count, stream, best))
