"""Shared-scan multi-query engine vs N independent filter sessions.

The multi-query engine's claim is that the character-scanning cost of SMP
prefiltering amortises across concurrent queries: one union-automaton pass
feeds N per-query runtimes, so wall time stays near-flat as the query count
grows, while running N independent :class:`FilterSession`s scales linearly.
This bench measures both sides over the MEDLINE workload (M1-M5) for rising
query counts, asserts byte-identical per-query output, and persists the
trajectory as machine-readable ``benchmarks/results/BENCH_multiquery.json``.

The headline row is N=4 (M2-M5): the shared scan must beat the sequential
baseline by at least 2x.

A second row family tracks the shared scan per token-event *delivery*
(``pertoken`` pure reference, ``batched`` C scan + Python stepping,
``accel`` fully native stepping) against N independent accelerated
sessions, so the shared-vs-independent crossover is recorded release over
release: the native delivery at N=4 must stay at or below 1.0x the
independent-sessions wall time.
"""

from __future__ import annotations

import pytest

from repro import MultiQueryEngine, SmpPrefilter
from repro.accel import accel_available
from repro.bench import TableReporter, measure, throughput_mb_per_second, write_json_report
from repro.core.stream import iter_chunks
from repro.workloads.medline import MEDLINE_QUERIES
from repro.workloads.xmark import XMARK_QUERIES, XMARK_QUERY_ORDER

#: Query sets per row: rising N, ending in the headline N=4 set (M2-M5).
QUERY_SETS: tuple[tuple[str, ...], ...] = (
    ("M2",),
    ("M2", "M5"),
    ("M2", "M4", "M5"),
    ("M2", "M3", "M4", "M5"),
    ("M1", "M2", "M3", "M4", "M5"),
)

CHUNK_SIZE = 64 * 1024
ROUNDS = 5

#: Many-query stress rows (XMark): rising N up to most of the workload, to
#: locate the crossover where per-hit dispatch work catches up with the
#: saved scanning -- the ROADMAP's "dozens of queries" follow-up.
STRESS_COUNTS = (2, 4, 8, 12, 16)
STRESS_ROUNDS = 3

#: Token-event delivery tiers measured per query count ("accel" resolves to
#: "batched" when the C extension is unavailable; the resolved name is what
#: gets recorded).
DELIVERY_MODES = ("pertoken", "batched", "accel")

_REPORTER = TableReporter(
    title="Shared-scan multi-query engine vs N independent sessions (MEDLINE)",
    columns=[
        "N", "Queries", "Shared s", "Shared MB/s",
        "Sequential s", "Sequential MB/s", "Speedup",
    ],
)

_STRESS_REPORTER = TableReporter(
    title="Many-query stress: shared scan vs N sessions (XMark, bytes path)",
    columns=[
        "N", "Shared s", "Shared MB/s",
        "Sequential s", "Sequential MB/s", "Speedup",
    ],
)

_DELIVERY_REPORTER = TableReporter(
    title="Delivery tiers: shared scan vs N independent accel sessions (MEDLINE)",
    columns=[
        "N", "Delivery", "Resolved", "Shared s", "Shared MB/s",
        "Independent s", "vs independent",
    ],
)

_ROWS: list[dict[str, object]] = []
_STRESS_ROWS: list[dict[str, object]] = []
_DELIVERY_ROWS: list[dict[str, object]] = []


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()
    if _STRESS_REPORTER.rows:
        _STRESS_REPORTER.emit()
    if _DELIVERY_REPORTER.rows:
        _DELIVERY_REPORTER.emit()
    if _ROWS or _STRESS_ROWS or _DELIVERY_ROWS:
        write_json_report("BENCH_multiquery.json", {
            "workload": "medline",
            "backend": "native",
            "chunk_size": CHUNK_SIZE,
            "rows": _ROWS,
            "stress_workload": "xmark",
            "stress_mode": "bytes",
            "stress_rows": _STRESS_ROWS,
            "delivery_rows": _DELIVERY_ROWS,
        })


def _best_of(callable_, rounds=ROUNDS):
    best = None
    for _ in range(rounds):
        sample = measure(callable_, trace_memory=False)
        if best is None or sample.wall_seconds < best.wall_seconds:
            best = sample
    return best


@pytest.mark.parametrize("names", QUERY_SETS, ids="-".join)
def test_multiquery_row(benchmark, names, medline_document, medline_schema):
    specs = [MEDLINE_QUERIES[name] for name in names]
    engine = MultiQueryEngine(medline_schema, specs, backend="native")
    plans = [
        SmpPrefilter.cached_for_query(medline_schema, spec, backend="native")
        for spec in specs
    ]
    input_size = len(medline_document)

    def shared():
        return engine.session().run(iter_chunks(medline_document, CHUNK_SIZE))

    def sequential():
        return [
            plan.session().run(iter_chunks(medline_document, CHUNK_SIZE))
            for plan in plans
        ]

    # Byte-identical per-query output is a precondition of the comparison.
    shared_run = shared()
    baseline_runs = sequential()
    for name, output, reference in zip(names, shared_run.outputs, baseline_runs):
        assert output == reference.output, name

    shared_best = _best_of(shared)
    sequential_best = _best_of(sequential)
    benchmark.pedantic(shared, rounds=1, iterations=1)

    speedup = sequential_best.wall_seconds / shared_best.wall_seconds
    _REPORTER.add_row(
        len(names),
        "+".join(names),
        shared_best.wall_seconds,
        throughput_mb_per_second(input_size, shared_best.wall_seconds),
        sequential_best.wall_seconds,
        throughput_mb_per_second(input_size, sequential_best.wall_seconds),
        f"{speedup:.2f}x",
    )
    _ROWS.append({
        "queries": list(names),
        "query_count": len(names),
        "input_bytes": float(input_size),
        "shared_wall_seconds": shared_best.wall_seconds,
        "shared_mb_per_second":
            throughput_mb_per_second(input_size, shared_best.wall_seconds),
        "sequential_wall_seconds": sequential_best.wall_seconds,
        "sequential_mb_per_second":
            throughput_mb_per_second(input_size, sequential_best.wall_seconds),
        "speedup": speedup,
        "outputs_identical": True,
    })

    # Regression guard (the committed BENCH_multiquery.json records >= 2x at
    # N=4; the in-suite bound is looser so CI noise cannot flake the run).
    if len(names) == 4:
        assert speedup >= 1.4, (
            f"shared scan only {speedup:.2f}x faster than {len(names)} "
            "independent sessions"
        )


@pytest.mark.parametrize("names", QUERY_SETS, ids="-".join)
def test_multiquery_delivery_rows(benchmark, names, medline_document, medline_schema):
    """One shared scan per delivery tier vs N independent accel sessions.

    The independent baseline always runs the default (accelerated when
    built) single-query sessions, so the ``vs independent`` column answers
    the release-over-release question directly: below 1.0x the shared scan
    wins even against fully accelerated independent runs.  The native
    delivery at the headline N=4 is required to stay at or below 1.0x.
    """
    specs = [MEDLINE_QUERIES[name] for name in names]
    engine = MultiQueryEngine(medline_schema, specs, backend="native")
    plans = [
        SmpPrefilter.cached_for_query(medline_schema, spec, backend="native")
        for spec in specs
    ]
    input_size = len(medline_document)

    def shared(delivery):
        session = engine.session(delivery=delivery)
        outputs = [[] for _ in specs]
        for chunk in iter_chunks(medline_document, CHUNK_SIZE):
            for index, piece in enumerate(session.feed(chunk)):
                outputs[index].append(piece)
        for index, piece in enumerate(session.finish()):
            outputs[index].append(piece)
        return ["".join(pieces) for pieces in outputs], session.delivery

    def independent():
        return [
            plan.session().run(iter_chunks(medline_document, CHUNK_SIZE))
            for plan in plans
        ]

    # Byte-identity across all delivery tiers is a precondition of the
    # comparison: every tier must produce the per-token reference output.
    reference_outputs, _ = shared("pertoken")
    for name, output, reference in zip(names, independent(), reference_outputs):
        assert output.output == reference, name

    independent_best = _best_of(independent)
    benchmark.pedantic(lambda: shared("accel"), rounds=1, iterations=1)

    for delivery in DELIVERY_MODES:
        outputs, resolved = shared(delivery)
        assert outputs == reference_outputs, delivery
        best = _best_of(lambda: shared(delivery))
        ratio = best.wall_seconds / independent_best.wall_seconds
        _DELIVERY_REPORTER.add_row(
            len(names),
            delivery,
            resolved,
            best.wall_seconds,
            throughput_mb_per_second(input_size, best.wall_seconds),
            independent_best.wall_seconds,
            f"{ratio:.2f}x",
        )
        _DELIVERY_ROWS.append({
            "queries": list(names),
            "query_count": len(names),
            "delivery": delivery,
            "resolved_delivery": resolved,
            "input_bytes": float(input_size),
            "shared_wall_seconds": best.wall_seconds,
            "shared_mb_per_second":
                throughput_mb_per_second(input_size, best.wall_seconds),
            "independent_wall_seconds": independent_best.wall_seconds,
            "vs_independent": ratio,
            "outputs_identical": True,
        })
        # Acceptance gate: the native stepper keeps the shared N=4 scan at
        # or below the wall time of N fully accelerated independent runs.
        if delivery == "accel" and resolved == "accel" and len(names) == 4:
            assert ratio <= 1.0, (
                f"native shared scan at N=4 took {ratio:.2f}x the "
                "independent accelerated sessions (must be <= 1.0x)"
            )
    if not accel_available():
        _DELIVERY_ROWS[-1]["note"] = "accel resolved to batched (extension unbuilt)"


@pytest.mark.parametrize("count", STRESS_COUNTS)
def test_multiquery_stress_row(benchmark, count, xmark_document, xmark_schema):
    """12+ XMark queries through one byte-native shared scan.

    The saved work (one scan instead of N) grows linearly in N while the
    per-hit dispatch cost also grows with the subscription fan-out; this
    row series locates the crossover empirically.  Input is fed as bytes
    (the native path) on both sides of the comparison.
    """
    names = XMARK_QUERY_ORDER[:count]
    specs = [XMARK_QUERIES[name] for name in names]
    engine = MultiQueryEngine(xmark_schema, specs, backend="native")
    plans = [
        SmpPrefilter.cached_for_query(xmark_schema, spec, backend="native")
        for spec in specs
    ]
    document_bytes = xmark_document.encode("utf-8")
    input_size = len(document_bytes)

    def shared():
        return engine.session(binary=True).run(iter_chunks(document_bytes, CHUNK_SIZE))

    def sequential():
        return [
            plan.session(binary=True).run(
                iter_chunks(document_bytes, CHUNK_SIZE)
            )
            for plan in plans
        ]

    # Byte-identical per-query output is a precondition of the comparison.
    shared_run = shared()
    baseline_runs = sequential()
    for name, output, reference in zip(names, shared_run.outputs, baseline_runs):
        assert output == reference.output, name

    shared_best = _best_of(shared, rounds=STRESS_ROUNDS)
    sequential_best = _best_of(sequential, rounds=STRESS_ROUNDS)
    benchmark.pedantic(shared, rounds=1, iterations=1)

    speedup = sequential_best.wall_seconds / shared_best.wall_seconds
    _STRESS_REPORTER.add_row(
        count,
        shared_best.wall_seconds,
        throughput_mb_per_second(input_size, shared_best.wall_seconds),
        sequential_best.wall_seconds,
        throughput_mb_per_second(input_size, sequential_best.wall_seconds),
        f"{speedup:.2f}x",
    )
    _STRESS_ROWS.append({
        "queries": list(names),
        "query_count": count,
        "input_bytes": float(input_size),
        "shared_wall_seconds": shared_best.wall_seconds,
        "shared_mb_per_second":
            throughput_mb_per_second(input_size, shared_best.wall_seconds),
        "sequential_wall_seconds": sequential_best.wall_seconds,
        "sequential_mb_per_second":
            throughput_mb_per_second(input_size, sequential_best.wall_seconds),
        "speedup": speedup,
        "outputs_identical": True,
    })
