"""Ablation: the contribution of the initial-jump offsets (table J).

The paper observes that initial jumps contribute little on XMark (0.1-2.6 %)
but up to 7.6 % of skipped characters on MEDLINE query M5, because only
required schema parts help.  This ablation disables table J (all offsets 0)
and measures the change in inspected characters.
"""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.bench import TableReporter
from repro.workloads.medline import MEDLINE_QUERIES
from repro.workloads.xmark import XMARK_QUERIES

_REPORTER = TableReporter(
    title="Ablation - initial jump offsets on and off",
    columns=[
        "Query", "Char Comp. % (J on)", "Init.Jumps %", "Char Comp. % (J off)",
        "Delta %",
    ],
)

_CASES = (
    ("XM6", "xmark"),
    ("XM13", "xmark"),
    ("M5", "medline"),
)


@pytest.fixture(scope="module", autouse=True)
def _emit_table():
    yield
    if _REPORTER.rows:
        _REPORTER.emit()


@pytest.mark.parametrize("query_name, dataset", _CASES)
def test_ablation_jump_offsets(benchmark, query_name, dataset,
                               xmark_document, medline_document,
                               xmark_schema, medline_schema):
    if dataset == "xmark":
        document, schema = xmark_document, xmark_schema
        spec = XMARK_QUERIES[query_name]
    else:
        document, schema = medline_document, medline_schema
        spec = MEDLINE_QUERIES[query_name]

    with_jumps = SmpPrefilter.compile(
        schema, spec.parsed_paths(), add_default_paths=False,
    )
    without_jumps = SmpPrefilter.compile(
        schema, spec.parsed_paths(), add_default_paths=False,
    )
    without_jumps.tables.jumps = {state: 0 for state in without_jumps.tables.jumps}

    on_run = with_jumps.session().run(document)
    off_run = without_jumps.session().run(document)
    benchmark.pedantic(
        lambda: with_jumps.session().run(document), rounds=1, iterations=1,
    )

    _REPORTER.add_row(
        query_name,
        on_run.stats.char_comparison_ratio,
        on_run.stats.initial_jump_ratio,
        off_run.stats.char_comparison_ratio,
        off_run.stats.char_comparison_ratio - on_run.stats.char_comparison_ratio,
    )

    # Disabling jumps never changes the projection, only the work done.
    assert on_run.output == off_run.output
    assert on_run.stats.total_comparisons <= off_run.stats.total_comparisons
