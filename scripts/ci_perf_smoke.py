"""CI perf smoke: chunk sweep, bytes-vs-str bound, multi-query speedup.

Three regressions this guards against, on a small MEDLINE document so the
job stays fast and robust to runner noise:

* the large-chunk throughput collapse (pre-fix: 367 MB/s at 64 KiB chunks
  vs 112 MB/s at 1 MiB chunks, caused by unbounded per-token probe scans
  over the buffered window) -- the 1 MiB figure must stay within a generous
  factor of the 64 KiB figure;
* the byte-native path regressing below the str encode shim -- at 1 MiB
  chunks feeding ``bytes`` must be at least as fast as feeding ``str``
  (the whole point of byte-native ingestion is dropping the per-chunk
  encode/decode copy, so bytes >= 1.0x str on best-of-N timings);
* the shared-scan multi-query engine regressing against the N-sessions
  baseline -- at N=4 (M2-M5) its wall time must not exceed ``MULTI_BOUND``
  of running the four sessions sequentially.  The bound was 0.75x while
  both sides scanned per-token in Python, then 1.6x after the PR 6 C
  token kernel made independent sessions ~9x faster while the shared
  engine still dispatched per event in Python.  The native
  ``step_events`` stepper (C DrivenStream stepping + emit-span batching)
  restored the shared advantage, so the bound is re-anchored to 1.0x
  (measured ~0.55x): shared N=4 must beat four independent accelerated
  sessions outright.  The gate needs the extension (both sides
  accelerated) and is skipped with a visible notice when it is unbuilt;
  byte-identity is still checked.  A second bound guards the shared
  engine's own accelerated scan: with the extension built, the accel
  union sweep must not run slower than the pure shared loop;
* the unified dataflow API (repro.api, PR 4) growing overhead over the
  direct session loop it wraps -- at 1 MiB bytes chunks the
  ``Engine.run(Source.from_bytes(...))`` path must reach at least
  ``API_FLOOR`` (0.95x) of the direct ``session().run`` throughput;
* the pooled ``readinto`` byte path (PR 5) regressing below the
  fresh-``bytes`` read path -- at 1 MiB chunks buffer reuse must be at
  least 1.0x within noise (it strictly removes allocations);
* the parallel sharded engine (PR 5) losing its scaling -- on a runner
  with >= ``PARALLEL_MIN_CPUS`` CPUs, ``jobs=4`` over a small corpus must
  finish in at most ``PARALLEL_BOUND`` (0.6x) of the sequential wall time
  (skipped, loudly, on smaller machines where no speedup is physical);
* the below-the-interpreter hot path (PR 6) losing its gains -- at 1 MiB
  bytes chunks the batched delivery must stay at least
  ``BATCHED_FLOOR`` (1.0x, within noise) of the per-token generator
  reference, and the C accelerator -- when the extension is built -- at
  least ``ACCEL_FLOOR`` (1.5x) of the pure batched loop.  When the
  extension is not importable the accel gate is skipped with a visible
  notice rather than silently passing.

Run from the repository root::

    python scripts/ci_perf_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

DOCUMENT_BYTES = 1_500_000
SWEEP_CHUNKS = (64 * 1024, 1024 * 1024)
#: 1 MiB-chunk wall time may be at most this factor of the 64 KiB figure
#: (the pre-fix collapse was ~3.3x).
SWEEP_FACTOR = 2.0
#: Timer-noise slack of the bytes-vs-str bound (nominal bound: 1.0x).
BYTES_NOISE_SLACK = 1.10
MULTI_QUERIES = ("M2", "M3", "M4", "M5")
#: Shared-scan wall time must not exceed this multiple of the N-session
#: baseline.  Re-anchored for the native step_events stepper (see the
#: module docstring): with scan AND per-stream dispatch below the
#: interpreter, sharing the document pass must win outright at N=4.
#: Checked only with the extension built (both sides accelerated).
MULTI_BOUND = 1.0
#: Minimum throughput of the repro.api path relative to the direct session
#: loop (the API is a thin orchestration layer; 5% covers real overhead,
#: the timer-noise slack is shared with the other gates).
API_FLOOR = 0.95
#: The jobs=4 corpus wall time must be at most this fraction of jobs=1.
PARALLEL_BOUND = 0.6
#: Batched delivery throughput relative to the per-token generator
#: (nominal 1.0x -- the flat loop strictly removes generator round-trips;
#: the shared noise slack absorbs runner jitter).
BATCHED_FLOOR = 1.0
#: Accelerated delivery throughput relative to the pure batched loop.
ACCEL_FLOOR = 1.5
#: CPUs needed before the parallel bound is meaningful.
PARALLEL_MIN_CPUS = 4
#: Corpus of the parallel smoke: documents x bytes (small, CI-friendly).
PARALLEL_DOCUMENTS = 8
PARALLEL_DOCUMENT_BYTES = 400_000
ROUNDS = 5


def best_of(callable_, rounds=ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def main() -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sys.path.insert(0, os.path.join(repo_root, "src"))
    from repro import SmpPrefilter
    from repro.core.stream import iter_chunks
    from repro.workloads import load_dataset
    from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd

    document = load_dataset("medline", size_bytes=DOCUMENT_BYTES)
    dtd = medline_dtd()
    print(f"MEDLINE document: {len(document) / 1e6:.1f} MB")
    failures = 0

    # --- chunk-size sweep -------------------------------------------------
    plan = SmpPrefilter.cached_for_query(
        dtd, MEDLINE_QUERIES["M2"], backend="native"
    )
    walls = {}
    for chunk_size in SWEEP_CHUNKS:
        walls[chunk_size] = best_of(
            lambda cs=chunk_size: plan.session().run(iter_chunks(document, cs))
        )
        print(f"chunk {chunk_size >> 10:>5} KiB: {walls[chunk_size] * 1000:.1f} ms "
              f"({len(document) / 1e6 / walls[chunk_size]:.0f} MB/s)")
    small, large = walls[SWEEP_CHUNKS[0]], walls[SWEEP_CHUNKS[1]]
    if large > small * SWEEP_FACTOR:
        print(f"FAIL: 1 MiB chunks {large / small:.2f}x slower than 64 KiB "
              f"(bound {SWEEP_FACTOR}x) -- the large-chunk collapse is back")
        failures += 1
    else:
        print(f"OK: chunk-size sweep ratio {large / small:.2f}x "
              f"(bound {SWEEP_FACTOR}x)")

    # --- bytes path vs str shim at 1 MiB chunks ---------------------------
    document_bytes = document.encode("utf-8")
    large_chunk = SWEEP_CHUNKS[-1]
    str_wall = best_of(
        lambda: plan.session(binary=True).run(
            iter_chunks(document, large_chunk)
        )
    )
    bytes_wall = best_of(
        lambda: plan.session(binary=True).run(
            iter_chunks(document_bytes, large_chunk)
        )
    )
    ratio = str_wall / bytes_wall
    print(f"1 MiB chunks: str shim {str_wall * 1000:.1f} ms, "
          f"bytes {bytes_wall * 1000:.1f} ms (bytes {ratio:.2f}x str)")
    # The nominal bound is bytes >= 1.0x str (the byte path strictly does
    # less work); BYTES_NOISE_SLACK absorbs runner timer jitter like every
    # other gate in this script, without hiding a real regression.
    if bytes_wall > str_wall * BYTES_NOISE_SLACK:
        print(f"FAIL: byte-native path slower than the str shim "
              f"({bytes_wall * 1000:.1f} ms > {str_wall * 1000:.1f} ms "
              f"x {BYTES_NOISE_SLACK}) -- the decode-copy saving has "
              "regressed")
        failures += 1
    else:
        print(f"OK: bytes path >= 1.0x the str path within noise "
              f"({ratio:.2f}x, slack {BYTES_NOISE_SLACK}x)")

    # --- delivery modes: batched vs pertoken, accel vs batched ------------
    from repro.accel import accel_available

    def delivery_wall(delivery):
        return best_of(
            lambda: plan.session(binary=True, delivery=delivery).run(
                iter_chunks(document_bytes, large_chunk)
            )
        )

    pertoken_wall = delivery_wall("pertoken")
    batched_wall = delivery_wall("batched")
    ratio = pertoken_wall / batched_wall
    print(f"1 MiB chunks: pertoken {pertoken_wall * 1000:.1f} ms, "
          f"batched {batched_wall * 1000:.1f} ms (batched {ratio:.2f}x "
          f"pertoken, floor {BATCHED_FLOOR}x)")
    if batched_wall * BATCHED_FLOOR > pertoken_wall * BYTES_NOISE_SLACK:
        print(f"FAIL: batched delivery runs below {BATCHED_FLOOR}x of the "
              "per-token generator -- the flat drive loop has regressed")
        failures += 1
    else:
        print(f"OK: batched delivery >= {BATCHED_FLOOR}x pertoken within "
              f"noise ({ratio:.2f}x, slack {BYTES_NOISE_SLACK}x)")

    if accel_available():
        accel_wall = delivery_wall("accel")
        ratio = batched_wall / accel_wall
        print(f"1 MiB chunks: accel {accel_wall * 1000:.1f} ms "
              f"(accel {ratio:.2f}x batched, floor {ACCEL_FLOOR}x)")
        if accel_wall * ACCEL_FLOOR > batched_wall:
            print(f"FAIL: the C accelerator runs below {ACCEL_FLOOR}x of "
                  "the pure batched loop -- the kernel has regressed")
            failures += 1
        else:
            print(f"OK: accel delivery >= {ACCEL_FLOOR}x batched "
                  f"({ratio:.2f}x)")
    else:
        print("SKIP: repro._accel extension not built (or REPRO_PURE=1); "
              "the accel >= "
              f"{ACCEL_FLOOR}x batched gate was NOT checked -- build with "
              "`python setup.py build_ext --inplace` to enable it")

    # --- repro.api path vs the direct session loop ------------------------
    from repro import api

    api_engine = api.Engine(
        api.Query.from_plan(plan, label="M2")
    )
    api_run = api_engine.run(
        api.Source.from_bytes(document_bytes, chunk_size=large_chunk),
        binary=True,
    )
    direct_run = plan.session(binary=True).run(
        iter_chunks(document_bytes, large_chunk)
    )
    if api_run.single.output != direct_run.output:
        print("FAIL: repro.api output differs from the direct session path")
        failures += 1
    # Interleaved rounds: alternating the two paths keeps machine noise
    # from landing on one side of the comparison.
    api_wall = direct_wall = float("inf")
    for _ in range(2 * ROUNDS):
        started = time.perf_counter()
        plan.session(binary=True).run(iter_chunks(document_bytes, large_chunk))
        direct_wall = min(direct_wall, time.perf_counter() - started)
        started = time.perf_counter()
        api_engine.run(
            api.Source.from_bytes(document_bytes, chunk_size=large_chunk),
            binary=True,
        )
        api_wall = min(api_wall, time.perf_counter() - started)
    ratio = direct_wall / api_wall  # api throughput relative to direct
    print(f"1 MiB chunks: direct session {direct_wall * 1000:.1f} ms, "
          f"repro.api {api_wall * 1000:.1f} ms (api {ratio:.2f}x direct, "
          f"floor {API_FLOOR}x x noise slack {BYTES_NOISE_SLACK})")
    if api_wall * API_FLOOR > direct_wall * BYTES_NOISE_SLACK:
        print(f"FAIL: the repro.api path runs below {API_FLOOR}x of the "
              "direct session throughput -- the dataflow layer grew "
              "per-chunk overhead")
        failures += 1
    else:
        print(f"OK: repro.api >= {API_FLOOR}x direct-session throughput "
              f"within noise ({ratio:.2f}x)")

    # --- pooled readinto vs fresh-bytes reads at 1 MiB chunks -------------
    from repro.core.sources import BufferPool

    document_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-perf-smoke-"), "medline.xml"
    )
    with open(document_path, "wb") as handle:
        handle.write(document_bytes)

    from repro import api

    pool_engine = api.Engine(api.Query.from_plan(plan, label="M2"))
    reuse_pool = BufferPool(large_chunk, capacity=2)
    # Interleaved rounds (see the repro.api gate): sequential best-of
    # blocks let clock drift land on one side of the comparison.
    fresh_wall = pooled_wall = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        pool_engine.run(
            api.Source.from_file(document_path, chunk_size=large_chunk),
            binary=True,
        )
        fresh_wall = min(fresh_wall, time.perf_counter() - started)
        started = time.perf_counter()
        pool_engine.run(
            api.Source.from_file(
                document_path, chunk_size=large_chunk, pool=reuse_pool
            ),
            binary=True,
        )
        pooled_wall = min(pooled_wall, time.perf_counter() - started)
    ratio = fresh_wall / pooled_wall
    print(f"1 MiB chunks: fresh reads {fresh_wall * 1000:.1f} ms, "
          f"pooled readinto {pooled_wall * 1000:.1f} ms "
          f"(pooled {ratio:.2f}x fresh)")
    # Nominal bound: pooled >= 1.0x fresh (buffer reuse strictly removes a
    # per-chunk allocation); the shared noise slack absorbs timer jitter.
    if pooled_wall > fresh_wall * BYTES_NOISE_SLACK:
        print(f"FAIL: the pooled byte path runs below 1.0x of the unpooled "
              f"path at 1 MiB chunks ({pooled_wall * 1000:.1f} ms > "
              f"{fresh_wall * 1000:.1f} ms x {BYTES_NOISE_SLACK}) -- buffer "
              "reuse has regressed")
        failures += 1
    else:
        print(f"OK: pooled readinto >= 1.0x fresh reads within noise "
              f"({ratio:.2f}x, slack {BYTES_NOISE_SLACK}x)")

    # --- parallel sharded corpus: jobs=4 vs sequential --------------------
    cpu_count = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    from repro.workloads.medline import generate_medline_document

    corpus_dir = tempfile.mkdtemp(prefix="repro-perf-corpus-")
    corpus_paths = []
    citations = max(10, PARALLEL_DOCUMENT_BYTES // 1650)
    for index in range(PARALLEL_DOCUMENTS):
        path = os.path.join(corpus_dir, f"doc{index}.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(generate_medline_document(
                citations=citations, seed=3000 + index
            ))
        corpus_paths.append(path)

    corpus_queries = [api.Query.from_plan(plan, label="M2")]
    sequential_engine = api.Engine(corpus_queries)
    parallel_engine = api.Engine(corpus_queries, mode="parallel", jobs=4)
    sequential_run = sequential_engine.run(
        api.Source.from_paths(corpus_paths), binary=True
    )
    parallel_run = parallel_engine.run(
        api.Source.from_paths(corpus_paths), binary=True
    )
    if parallel_run.outputs != sequential_run.outputs:
        print("FAIL: parallel corpus output differs from sequential")
        failures += 1
    else:
        print("OK: parallel corpus output byte-identical to sequential")
    if cpu_count >= PARALLEL_MIN_CPUS:
        sequential_wall = best_of(
            lambda: sequential_engine.run(
                api.Source.from_paths(corpus_paths), binary=True
            ),
            rounds=3,
        )
        parallel_wall = best_of(
            lambda: parallel_engine.run(
                api.Source.from_paths(corpus_paths), binary=True
            ),
            rounds=3,
        )
        ratio = parallel_wall / sequential_wall
        print(f"corpus x{PARALLEL_DOCUMENTS}: sequential "
              f"{sequential_wall * 1000:.1f} ms, jobs=4 "
              f"{parallel_wall * 1000:.1f} ms (ratio {ratio:.2f}, bound "
              f"{PARALLEL_BOUND})")
        if ratio > PARALLEL_BOUND:
            print(f"FAIL: jobs=4 wall time exceeds {PARALLEL_BOUND}x of the "
                  "sequential corpus run -- parallel scaling has regressed")
            failures += 1
        else:
            print(f"OK: jobs=4 runs the corpus "
                  f"{sequential_wall / parallel_wall:.2f}x faster than "
                  "sequential")
    else:
        print(f"SKIP: parallel speedup bound needs >= {PARALLEL_MIN_CPUS} "
              f"CPUs (runner has {cpu_count}); correctness was still "
              "checked above")

    # --- shared-scan multi-query vs N sessions ----------------------------
    from repro.core.multi import MultiQueryEngine

    specs = [MEDLINE_QUERIES[name] for name in MULTI_QUERIES]
    engine = api.Engine(
        [api.Query.from_spec(dtd, spec, backend="native") for spec in specs]
    )
    plans = [
        SmpPrefilter.cached_for_query(dtd, spec, backend="native")
        for spec in specs
    ]

    def shared():
        return engine.run(
            api.Source.from_text(document, chunk_size=64 * 1024)
        )

    def baseline():
        return [
            session_plan.session().run(iter_chunks(document, 64 * 1024))
            for session_plan in plans
        ]

    shared_run = shared()
    baseline_runs = baseline()
    for name, output, reference in zip(
        MULTI_QUERIES, shared_run.outputs, baseline_runs
    ):
        if output != reference.output:
            print(f"FAIL: shared-scan output for {name} differs from an "
                  "independent session")
            failures += 1

    if accel_available():
        # Interleaved rounds, like the repro.api gate: this runner's clock
        # drifts enough that back-to-back best-of blocks land noise on one
        # side of the comparison.
        shared_wall = baseline_wall = float("inf")
        for _ in range(ROUNDS):
            started = time.perf_counter()
            shared()
            shared_wall = min(shared_wall, time.perf_counter() - started)
            started = time.perf_counter()
            baseline()
            baseline_wall = min(baseline_wall, time.perf_counter() - started)
        ratio = shared_wall / baseline_wall
        print(f"shared N={len(MULTI_QUERIES)}: {shared_wall * 1000:.1f} ms, "
              f"baseline: {baseline_wall * 1000:.1f} ms "
              f"(ratio {ratio:.2f}, bound {MULTI_BOUND})")
        if ratio > MULTI_BOUND * BYTES_NOISE_SLACK:
            print(f"FAIL: shared-scan wall time exceeds {MULTI_BOUND}x of "
                  f"the {len(MULTI_QUERIES)}-session baseline -- the native "
                  "step dispatch has regressed")
            failures += 1
        else:
            print(f"OK: shared scan within {MULTI_BOUND}x of sequential "
                  f"accelerated sessions ({ratio:.2f}x, slack "
                  f"{BYTES_NOISE_SLACK}x)")
    else:
        print("SKIP: repro._accel extension not built (or REPRO_PURE=1); "
              f"the shared N=4 <= {MULTI_BOUND}x independent-sessions gate "
              "was NOT checked (it compares two accelerated paths) -- "
              "byte-identity was still verified above")

    if accel_available():
        multi_engine = MultiQueryEngine(dtd, specs, backend="native")

        def shared_delivery(delivery):
            session = multi_engine.session(delivery=delivery)
            for chunk in iter_chunks(document, 64 * 1024):
                session.feed(chunk)
            return session.finish()

        accel_shared = pure_shared = float("inf")
        for _ in range(ROUNDS):
            started = time.perf_counter()
            shared_delivery("accel")
            accel_shared = min(accel_shared, time.perf_counter() - started)
            started = time.perf_counter()
            shared_delivery("batched")
            pure_shared = min(pure_shared, time.perf_counter() - started)
        ratio = pure_shared / accel_shared
        print(f"shared union sweep: accel {accel_shared * 1000:.1f} ms, "
              f"pure {pure_shared * 1000:.1f} ms (accel {ratio:.2f}x pure)")
        if accel_shared > pure_shared * BYTES_NOISE_SLACK:
            print("FAIL: the accelerated union sweep runs slower than the "
                  "pure shared loop -- the scan_events kernel has regressed")
            failures += 1
        else:
            print(f"OK: accelerated union sweep >= 1.0x the pure shared "
                  f"loop within noise ({ratio:.2f}x)")
    else:
        print("SKIP: repro._accel extension not built (or REPRO_PURE=1); "
              "the shared-sweep accel gate was NOT checked")

    # --- generated workload throughput (informational, no gate) -----------
    # Tracks shared-scan throughput over a seed-deterministic generated
    # workload (repro.workloads.get "gen:" address) release over release;
    # benchmarks/bench_generated.py records the full depth/fanout/query
    # sweeps.  Print-only: generated schemas change shape across seeds, so
    # a hard bound here would gate on workload shape, not on the engine.
    from repro import workloads

    generated = workloads.get(
        "gen:depth=8,fanout=4,seed=31,records=4,record_bytes=120000,"
        "queries=8"
    )
    generated_stream = generated.stream()
    generated_specs = [
        generated.query(name)
        for name in generated.query_order
        if "phantom" not in name and "never" not in name
    ][:4]
    generated_engine = MultiQueryEngine(
        generated.dtd, generated_specs, backend="native"
    )

    def generated_shared():
        session = generated_engine.session(binary=True)
        for chunk in iter_chunks(generated_stream, 64 * 1024):
            session.feed(chunk)
        return session.finish()

    generated_wall = best_of(generated_shared, rounds=3)
    print(f"INFO: generated workload (depth=8 fanout=4 seed=31, "
          f"N={len(generated_specs)} queries, "
          f"{len(generated_stream) / 1e6:.1f} MB): "
          f"{generated_wall * 1000:.1f} ms "
          f"({len(generated_stream) / 1e6 / generated_wall:.0f} MB/s) "
          "-- informational, not gated")

    # --- durable checkpoint overhead (informational, no gate) --------------
    # Tracks the cost of checkpointing the serving loop every 64 records
    # (64 KiB feed frames through the 4-query shared scan, one fsynced
    # atomic write per checkpoint).  The gated <= 5% bound lives in
    # benchmarks/bench_checkpoint.py with a full interval sweep; this row
    # just keeps the number visible per push.
    ckpt_engine = api.Engine(
        [api.Query.from_spec(dtd, spec, backend="native") for spec in specs]
    )
    ckpt_records = [
        document_bytes[offset:offset + 64 * 1024]
        for offset in range(0, len(document_bytes), 64 * 1024)
    ]
    ckpt_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-perf-ckpt-"), "smoke.ckpt"
    )

    def checkpointed(interval):
        session = ckpt_engine.open(binary=True)
        for index, record in enumerate(ckpt_records, start=1):
            session.feed(record)
            if interval and index % interval == 0:
                session.checkpoint(ckpt_path)
        session.finish()

    plain_wall = ckpt_wall = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        checkpointed(0)
        plain_wall = min(plain_wall, time.perf_counter() - started)
        started = time.perf_counter()
        checkpointed(64)
        ckpt_wall = min(ckpt_wall, time.perf_counter() - started)
    overhead = (ckpt_wall - plain_wall) / plain_wall if plain_wall else 0.0
    print(f"INFO: checkpoint every 64 records (shared N={len(specs)}, "
          f"{len(ckpt_records)} x 64 KiB frames): plain "
          f"{plain_wall * 1000:.1f} ms, checkpointed "
          f"{ckpt_wall * 1000:.1f} ms ({overhead * 100:+.1f}% overhead) "
          "-- informational, gated in benchmarks/bench_checkpoint.py")

    if failures:
        print(f"{failures} perf-smoke check(s) failed")
        return 1
    print("OK: perf smoke holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
