"""CI smoke test: pipe a ~10 MB XMark document through the CLI in bounded memory.

Generates a >=10 MB synthetic XMark document, runs ``python -m repro`` over
it with a 64 KiB chunk size and ``--measure-memory``, checks the projected
output is non-trivial and asserts the peak traced allocation size stays
below a fixed budget -- i.e. the CLI streams in O(chunk + carry window)
memory instead of materialising the document.

Run from the repository root::

    python scripts/ci_memory_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

TARGET_BYTES = 10 * 1024 * 1024
CHUNK_SIZE = 64 * 1024
#: Peak traced allocations allowed inside the CLI process.
PEAK_BUDGET_BYTES = 8 * 1024 * 1024

XMARK_PATHS = ["/site/people/person#", "/site/people/person/name#"]


def main() -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(repo_root, "src")
    sys.path.insert(0, src)
    from repro.workloads.xmark import XMARK_DTD_TEXT, generate_xmark_document

    scale = 10.0
    document = generate_xmark_document(scale=scale, seed=11)
    while len(document) < TARGET_BYTES:
        scale *= 1.3
        document = generate_xmark_document(scale=scale, seed=11)
    print(f"generated XMark document: {len(document) / 1e6:.1f} MB")

    with tempfile.TemporaryDirectory() as tmp:
        dtd_path = os.path.join(tmp, "xmark.dtd")
        doc_path = os.path.join(tmp, "xmark.xml")
        out_path = os.path.join(tmp, "projected.xml")
        with open(dtd_path, "w", encoding="utf-8") as handle:
            handle.write(XMARK_DTD_TEXT)
        with open(doc_path, "w", encoding="utf-8") as handle:
            handle.write(document)
        del document

        environment = dict(os.environ)
        environment["PYTHONPATH"] = src + os.pathsep + environment.get("PYTHONPATH", "")
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", dtd_path, *XMARK_PATHS,
                "--backend", "native",
                "--chunk-size", str(CHUNK_SIZE),
                "--input", doc_path,
                "--output", out_path,
                "--no-default-paths",
                "--stats-json", "--measure-memory",
            ],
            env=environment,
            capture_output=True,
            text=True,
            timeout=600,
        )
        if completed.returncode != 0:
            print(completed.stdout)
            print(completed.stderr)
            print(f"FAIL: CLI exited with {completed.returncode}")
            return 1
        stats = json.loads(completed.stderr.strip().splitlines()[-1])
        output_size = os.path.getsize(out_path)

    peak = int(stats["peak_memory_bytes"])
    print(f"projected output: {output_size / 1e6:.2f} MB")
    print(f"peak traced memory: {peak / 1e6:.2f} MB "
          f"(budget {PEAK_BUDGET_BYTES / 1e6:.0f} MB)")
    if output_size <= 0:
        print("FAIL: empty projection")
        return 1
    if stats["input_size"] < TARGET_BYTES:
        print("FAIL: CLI did not consume the whole document")
        return 1
    if peak > PEAK_BUDGET_BYTES:
        print("FAIL: peak memory exceeds the constant-memory budget")
        return 1
    print("OK: constant-memory streaming holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
