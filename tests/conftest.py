"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dtd.model import Dtd
from repro.workloads.medline import generate_medline_document, medline_dtd
from repro.workloads.xmark import generate_xmark_document, xmark_dtd

#: The running example of the paper (Example 2 / Figures 3 and 5).
PAPER_DTD_TEXT = """<!DOCTYPE a [ <!ELEMENT a (b|c)*>
<!ELEMENT b (#PCDATA)> <!ELEMENT c (b,b?)> ]>"""

#: A small DTD in the shape of the paper's Figure 1 / Figure 2 example.
SITE_DTD_TEXT = """<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT item (location, name, payment, description, shipping, incategory+)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category ID #REQUIRED>
]>"""

#: The document of the paper's Figure 2 (whitespace-free serialization).
FIGURE2_DOCUMENT = (
    "<site><regions><africa><item><location>United States</location>"
    "<name>T V</name><payment>Creditcard</payment>"
    "<description>15'' LCD-FlatPanel</description>"
    "<shipping>Within country</shipping>"
    '<incategory category="c3"/></item></africa>'
    "<asia/>"
    "<australia><item ><location>Egypt</location><name>PDA</name>"
    "<payment>Check</payment><description>Palm Zire 71</description>"
    '<shipping/><incategory category="c3"/></item></australia>'
    "</regions></site>"
)


@pytest.fixture(scope="session")
def paper_dtd() -> Dtd:
    """The DTD of the paper's Example 2."""
    return Dtd.parse(PAPER_DTD_TEXT)


@pytest.fixture(scope="session")
def site_dtd() -> Dtd:
    """The simplified XMark excerpt of the paper's Figure 1."""
    return Dtd.parse(SITE_DTD_TEXT)


@pytest.fixture(scope="session")
def figure2_document() -> str:
    """The document the paper prefilters in Figure 2."""
    return FIGURE2_DOCUMENT


@pytest.fixture(scope="session")
def xmark_dtd_fixture() -> Dtd:
    """The full synthetic XMark DTD."""
    return xmark_dtd()


@pytest.fixture(scope="session")
def xmark_document_small() -> str:
    """A small XMark-like document shared across tests."""
    return generate_xmark_document(scale=0.02, seed=11)


@pytest.fixture(scope="session")
def medline_dtd_fixture() -> Dtd:
    """The full synthetic MEDLINE DTD."""
    return medline_dtd()


@pytest.fixture(scope="session")
def medline_document_small() -> str:
    """A small MEDLINE-like document shared across tests."""
    return generate_medline_document(citations=60, seed=3)
