"""Tests for the Glushkov construction and the document-level DTD-automaton."""

from __future__ import annotations

import pytest

from repro.dtd import (
    Dtd,
    DtdAutomaton,
    build_glushkov,
    close_symbol,
    open_symbol,
    parse_content_model,
)


def glushkov_for(text: str):
    _, model = parse_content_model(text)
    return build_glushkov(model)


class TestGlushkovConstruction:
    def test_simple_sequence(self):
        automaton = glushkov_for("(a, b)")
        assert automaton.positions == {0: "a", 1: "b"}
        assert automaton.first == {0}
        assert automaton.last == {1}
        assert automaton.follow[0] == {1}
        assert automaton.follow[1] == set()
        assert not automaton.nullable

    def test_choice(self):
        automaton = glushkov_for("(a | b)")
        assert automaton.first == {0, 1}
        assert automaton.last == {0, 1}
        assert not automaton.nullable

    def test_star_adds_feedback_loop(self):
        automaton = glushkov_for("(a | b)*")
        assert automaton.nullable
        assert automaton.follow[0] == {0, 1}
        assert automaton.follow[1] == {0, 1}

    def test_optional_in_sequence(self):
        automaton = glushkov_for("(a, b?, c)")
        # a may be followed by b or directly by c.
        assert automaton.follow[0] == {1, 2}
        assert automaton.follow[1] == {2}
        assert automaton.last == {2}

    def test_plus_repetition(self):
        automaton = glushkov_for("(a+)")
        assert not automaton.nullable
        assert automaton.follow[0] == {0}

    def test_papers_c_content_model(self):
        # <!ELEMENT c (b, b?)> from Example 2: two b positions.
        automaton = glushkov_for("(b, b?)")
        assert automaton.positions == {0: "b", 1: "b"}
        assert automaton.first == {0}
        assert automaton.last == {0, 1}
        assert automaton.follow[0] == {1}

    def test_same_name_in_different_branches(self):
        automaton = glushkov_for("((a, b) | (b, a))")
        assert sorted(automaton.positions.values()) == ["a", "a", "b", "b"]
        assert automaton.first == {0, 2}


class TestDtdAutomatonForPaperExample:
    """The DTD of Example 2 yields the automaton of Figure 5 (11 states)."""

    @pytest.fixture()
    def automaton(self, paper_dtd) -> DtdAutomaton:
        return DtdAutomaton(paper_dtd)

    def test_state_count_matches_figure5(self, automaton):
        # q0 plus dual pairs for: a, b (child of a), c (child of a),
        # b (first child of c), b (second child of c) = 1 + 2 * 5 = 11.
        assert automaton.state_count() == 11

    def test_initial_transition_reads_root_tag(self, automaton):
        targets = automaton.transitions[automaton.initial_state][open_symbol("a")]
        assert len(targets) == 1
        root_open = next(iter(targets))
        assert automaton.state(root_open).tag == "a"
        assert automaton.state(root_open).is_opening

    def test_final_state_is_root_close(self, automaton):
        final = next(iter(automaton.final_states))
        state = automaton.state(final)
        assert state.tag == "a"
        assert not state.is_opening

    def test_a_can_be_empty(self, automaton):
        root_pair = automaton.pairs[automaton.root_pair]
        assert close_symbol("a") in automaton.transitions[root_pair.open_state]

    def test_branches_match_example9(self, automaton):
        # q0 has the empty branch, a-states have branch [a], the b-states
        # directly below a have branch [a, b].
        assert automaton.branch_names(automaton.initial_state) == []
        root_pair = automaton.pairs[automaton.root_pair]
        assert automaton.branch_names(root_pair.open_state) == ["a"]
        b_pairs = [
            pair for pair in automaton.pairs
            if pair.element == "b" and pair.parent_pair == automaton.root_pair
        ]
        assert len(b_pairs) == 1
        assert automaton.branch_names(b_pairs[0].open_state) == ["a", "b"]

    def test_parent_states_match_example8(self, automaton):
        root_pair = automaton.pairs[automaton.root_pair]
        assert automaton.parent_states(root_pair.open_state) == (automaton.initial_state,)
        child_pair = automaton.pairs[root_pair.children[0]]
        assert set(automaton.parent_states(child_pair.open_state)) == set(root_pair.states())

    def test_subtree_states_of_c(self, automaton):
        c_pair = next(pair for pair in automaton.pairs if pair.element == "c")
        interior = automaton.subtree_states(c_pair.pair_id)
        # The two b occurrences inside c contribute four states.
        assert len(interior) == 4
        assert all(automaton.state(state).tag == "b" for state in interior)

    def test_skip_weights_reproduce_example3(self, automaton):
        # Skipping one b child inside c costs len("<b") + 1 (open, no
        # required attributes) + 1 (close) = 4 = |"<b/>"|.
        c_pair = next(pair for pair in automaton.pairs if pair.element == "c")
        first_b = automaton.pairs[c_pair.children[0]]
        open_weight = automaton.skip_weight(first_b.open_state)
        close_weight = automaton.skip_weight(first_b.close_state)
        assert open_weight + close_weight == 4

    def test_homogeneity(self, automaton):
        # Every state is entered only by transitions carrying its own label.
        for source, symbol, target in automaton.iter_transitions():
            kind, tag = symbol
            state = automaton.state(target)
            assert state.tag == tag
            assert state.is_opening == (kind == "open")

    def test_dual_of_is_an_involution(self, automaton):
        for pair in automaton.pairs:
            assert automaton.dual_of(pair.open_state) == pair.close_state
            assert automaton.dual_of(pair.close_state) == pair.open_state
        assert automaton.dual_of(automaton.initial_state) is None


class TestDtdAutomatonOnWorkloads:
    def test_xmark_automaton_builds(self, xmark_dtd_fixture):
        automaton = DtdAutomaton(xmark_dtd_fixture)
        assert automaton.state_count() > 100
        # Six regional expansions of <item>.
        item_pairs = [pair for pair in automaton.pairs if pair.element == "item"]
        assert len(item_pairs) == 6

    def test_medline_automaton_builds(self, medline_dtd_fixture):
        automaton = DtdAutomaton(medline_dtd_fixture)
        assert automaton.state_count() > 50
        year_pairs = [pair for pair in automaton.pairs if pair.element == "Year"]
        # Year occurs under DateCreated, DateCompleted and PubDate.
        assert len(year_pairs) == 3

    def test_required_attributes_increase_skip_weight(self, xmark_dtd_fixture):
        automaton = DtdAutomaton(xmark_dtd_fixture)
        incategory = next(pair for pair in automaton.pairs if pair.element == "incategory")
        # "<incategory" is 11 characters + 1 + ' category=""' (12) = 24.
        assert automaton.skip_weight(incategory.open_state) == len("incategory") + 2 + len("category") + 4
