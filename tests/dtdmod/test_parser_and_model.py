"""Tests for DTD parsing, the content-model AST, and the Dtd model."""

from __future__ import annotations

import pytest

from repro.dtd import (
    AttributeDefault,
    ChoiceNode,
    ContentKind,
    Dtd,
    NameNode,
    RepeatKind,
    RepeatNode,
    SequenceNode,
    parse_content_model,
    parse_dtd_text,
)
from repro.errors import DtdRecursionError, DtdSyntaxError, DtdValidationError
from repro.workloads.medline import MEDLINE_DTD_TEXT
from repro.workloads.xmark import XMARK_DTD_TEXT


class TestContentModelParsing:
    def test_empty_and_any(self):
        assert parse_content_model("EMPTY")[0] is ContentKind.EMPTY
        assert parse_content_model("ANY")[0] is ContentKind.ANY

    def test_pcdata_variants(self):
        for text in ("(#PCDATA)", "#PCDATA", "(#PCDATA)*"):
            kind, _ = parse_content_model(text)
            assert kind is ContentKind.PCDATA

    def test_mixed_content(self):
        kind, node = parse_content_model("(#PCDATA | bold | keyword)*")
        assert kind is ContentKind.MIXED
        assert isinstance(node, RepeatNode)
        assert node.kind is RepeatKind.STAR
        assert node.child_names() == {"bold", "keyword"}

    def test_sequence_and_choice(self):
        kind, node = parse_content_model("(a, (b | c)*, d?)")
        assert kind is ContentKind.CHILDREN
        assert isinstance(node, SequenceNode)
        assert node.child_names() == {"a", "b", "c", "d"}
        assert not node.is_nullable()

    def test_nullability(self):
        _, star = parse_content_model("(a*, b?)")
        assert star.is_nullable()
        _, plus = parse_content_model("(a+)")
        assert not plus.is_nullable()
        _, choice = parse_content_model("(a | b*)")
        assert choice.is_nullable()

    def test_nested_groups(self):
        _, node = parse_content_model("((a, b) | (c, (d | e)+))")
        assert isinstance(node, ChoiceNode)
        assert node.child_names() == {"a", "b", "c", "d", "e"}

    def test_str_round_trip_is_reparsable(self):
        _, node = parse_content_model("(a,(b|c)*,d?)")
        _, reparsed = parse_content_model(str(node))
        assert reparsed.child_names() == node.child_names()
        assert reparsed.is_nullable() == node.is_nullable()

    @pytest.mark.parametrize("bad", [
        "(a,", "(a | b,c)", "(a))", "()", "(a b)", "(#PCDATA | a)",
    ])
    def test_malformed_content_models_raise(self, bad):
        with pytest.raises(DtdSyntaxError):
            parse_content_model(bad)


class TestDtdTextParsing:
    def test_doctype_wrapper_sets_root(self):
        parsed = parse_dtd_text("<!DOCTYPE root [ <!ELEMENT root (#PCDATA)> ]>")
        assert parsed.doctype_name == "root"
        assert "root" in parsed.elements

    def test_bare_internal_subset(self):
        parsed = parse_dtd_text("<!ELEMENT a (b)> <!ELEMENT b EMPTY>")
        assert set(parsed.elements) == {"a", "b"}
        assert parsed.doctype_name is None

    def test_attlist_parsing(self):
        parsed = parse_dtd_text(
            "<!ELEMENT item EMPTY>"
            "<!ATTLIST item id ID #REQUIRED "
            "  kind (new|used) \"new\" "
            "  note CDATA #IMPLIED "
            "  version CDATA #FIXED '1.0'>"
        )
        attributes = {attribute.name: attribute for attribute in parsed.elements["item"].attributes}
        assert attributes["id"].default is AttributeDefault.REQUIRED
        assert attributes["kind"].default is AttributeDefault.DEFAULT
        assert attributes["kind"].default_value == "new"
        assert attributes["note"].default is AttributeDefault.IMPLIED
        assert attributes["version"].default is AttributeDefault.FIXED
        assert attributes["version"].default_value == "1.0"

    def test_required_attribute_serialized_length(self):
        parsed = parse_dtd_text(
            "<!ELEMENT e EMPTY><!ATTLIST e category ID #REQUIRED opt CDATA #IMPLIED>"
        )
        declaration = parsed.elements["e"]
        # ' category=""' is 13 characters; optional attributes contribute 0.
        assert declaration.required_attribute_length() == len("category") + 4

    def test_comments_are_ignored(self):
        parsed = parse_dtd_text(
            "<!-- schema --> <!ELEMENT a EMPTY> <!-- trailing -->"
        )
        assert set(parsed.elements) == {"a"}

    def test_duplicate_element_declaration_raises(self):
        with pytest.raises(DtdSyntaxError):
            parse_dtd_text("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>")

    def test_attlist_for_undeclared_element_raises(self):
        with pytest.raises(DtdSyntaxError):
            parse_dtd_text("<!ATTLIST ghost id ID #REQUIRED>")


class TestDtdModel:
    def test_root_inference_from_references(self):
        dtd = Dtd.parse("<!ELEMENT a (b)> <!ELEMENT b EMPTY>")
        assert dtd.root_name == "a"

    def test_ambiguous_root_requires_explicit_choice(self):
        text = "<!ELEMENT a EMPTY> <!ELEMENT b EMPTY>"
        with pytest.raises(DtdValidationError):
            Dtd.parse(text)
        assert Dtd.parse(text, root="b").root_name == "b"

    def test_undeclared_child_raises(self):
        with pytest.raises(DtdValidationError):
            Dtd.parse("<!ELEMENT a (ghost)>")

    def test_recursive_dtd_rejected(self):
        with pytest.raises(DtdRecursionError) as excinfo:
            Dtd.parse("<!ELEMENT a (b)> <!ELEMENT b (a?)>")
        assert "a" in excinfo.value.cycle and "b" in excinfo.value.cycle

    def test_self_recursion_rejected(self):
        with pytest.raises(DtdRecursionError):
            Dtd.parse("<!ELEMENT a (a*)>", root="a")

    def test_prefix_pairs_found(self):
        dtd = Dtd.parse(MEDLINE_DTD_TEXT)
        pairs = dtd.prefix_pairs()
        assert ("Abstract", "AbstractText") in pairs
        assert ("Title", "TitleAssociatedWithName") in pairs

    def test_minimal_element_length_empty_element(self):
        dtd = Dtd.parse("<!ELEMENT a (b?)> <!ELEMENT b EMPTY>")
        # "<b/>" is 4 characters.
        assert dtd.minimal_element_length("b") == 4
        # "a" may be empty because its only child is optional: "<a/>".
        assert dtd.minimal_element_length("a") == 4

    def test_minimal_element_length_with_required_child_and_attribute(self):
        dtd = Dtd.parse(
            "<!DOCTYPE c [ <!ELEMENT c (b,b?)> <!ELEMENT b EMPTY> "
            "<!ATTLIST b id ID #REQUIRED> ]>"
        )
        # minimal b: '<b id=""/>' = 4 + len("id")+4 = 10;
        # minimal c: "<c>" + 10 + "</c>" = 3 + 10 + 4 = 17.
        assert dtd.minimal_element_length("b") == 10
        assert dtd.minimal_element_length("c") == 17

    def test_minimal_content_length_of_papers_example(self):
        # Example 3: node c has at least one b child, minimally "<b/>" = 4.
        dtd = Dtd.parse("<!DOCTYPE a [ <!ELEMENT a (b|c)*> <!ELEMENT b (#PCDATA)> "
                        "<!ELEMENT c (b,b?)> ]>")
        assert dtd.minimal_content_length("c") == 4
        assert dtd.minimal_content_length("a") == 0

    def test_figure1_initial_jump_string_length(self, site_dtd):
        # Example 1: "<regions><africa/><asia/>" (25 characters) is the
        # minimal string preceding <australia> inside <site>.
        regions_open = site_dtd.minimal_opening_tag_length("regions")
        africa = site_dtd.minimal_element_length("africa")
        asia = site_dtd.minimal_element_length("asia")
        assert regions_open + africa + asia == 25

    def test_to_doctype_round_trips(self):
        dtd = Dtd.parse(XMARK_DTD_TEXT)
        reparsed = Dtd.parse(dtd.to_doctype())
        assert reparsed.tag_names() == dtd.tag_names()
        assert reparsed.root_name == dtd.root_name

    def test_workload_dtds_are_nonrecursive(self):
        assert Dtd.parse(XMARK_DTD_TEXT).find_recursion() is None
        assert Dtd.parse(MEDLINE_DTD_TEXT).find_recursion() is None
