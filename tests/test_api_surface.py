"""The public API surface is a reviewed artifact, not an accident.

``repro.__all__`` must match the checked-in ``tests/api_surface.txt`` line
for line: adding (or dropping) a public name without updating the fixture
file fails CI, so surface growth is always a conscious, reviewed decision.
Every listed name must also resolve, so ``__all__`` cannot drift from the
actual module contents.
"""

from __future__ import annotations

import pathlib

import repro

SURFACE_FILE = pathlib.Path(__file__).parent / "api_surface.txt"


def test_public_surface_matches_the_checked_in_inventory():
    expected = SURFACE_FILE.read_text(encoding="utf-8").split()
    actual = sorted(repro.__all__)
    assert actual == expected, (
        "repro.__all__ changed; if intentional, update tests/api_surface.txt "
        "in the same commit"
    )


def test_all_is_sorted_and_duplicate_free():
    assert len(set(repro.__all__)) == len(repro.__all__)


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_dataflow_api_is_reexported_at_top_level():
    """The PR-4 dataflow classes are first-class citizens of ``repro``."""
    assert repro.Source is repro.api.Source
    assert repro.Query is repro.api.Query
    assert repro.Engine is repro.api.Engine
    assert repro.Sink is repro.api.Sink
