"""The unified dataflow API: Source → Query → Engine → Sink.

Covers the PR-4 redesign: source shapes over one engine, query hashing and
plan-cache sharing, engine/session parity with the pre-existing session
machinery, sink routing and lifecycle, and live attach/detach on a
shared-scan session.
"""

from __future__ import annotations

import io

import pytest

from repro import api
from repro.core.multi import MultiQueryEngine
from repro.core.stream import iter_chunks
from repro.errors import QueryError, ReproError, RuntimeFilterError
from repro.workloads import load_dataset
from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd
from repro.workloads.xmark import XMARK_QUERIES, xmark_dtd

#: Statistics fields that must replay exactly across execution paths
#: (matcher counters live once on the shared scan; timing is wall-clock).
STRUCTURAL_FIELDS = (
    "input_size",
    "output_size",
    "tokens_matched",
    "tokens_copied",
    "regions_copied",
    "initial_jumps",
    "initial_jump_chars",
    "local_scan_chars",
)


def assert_structurally_equal(stats, reference, *, fields=STRUCTURAL_FIELDS):
    for field in fields:
        assert getattr(stats, field) == getattr(reference, field), field


@pytest.fixture(scope="module")
def medline_document():
    return load_dataset("medline", size_bytes=120_000)


@pytest.fixture(scope="module")
def xmark_document():
    return load_dataset("xmark", size_bytes=120_000)


@pytest.fixture(scope="module")
def medline_query():
    return api.Query.from_spec(medline_dtd(), MEDLINE_QUERIES["M2"])


@pytest.fixture(scope="module")
def medline_file(tmp_path_factory, medline_document):
    path = tmp_path_factory.mktemp("api") / "medline.xml"
    path.write_text(medline_document, encoding="utf-8")
    return str(path)


@pytest.fixture(scope="module")
def reference_output(medline_query, medline_document):
    """The projection by the (non-deprecated) session machinery."""
    return (
        medline_query.plan()
        .session(binary=True)
        .run(iter_chunks(medline_document.encode("utf-8"), 4096))
        .output
    )


# ----------------------------------------------------------------------
# Source
# ----------------------------------------------------------------------
class TestSource:
    def test_every_source_shape_yields_the_same_projection(
        self, monkeypatch, medline_query, medline_document, medline_file,
        reference_output,
    ):
        data = medline_document.encode("utf-8")
        engine = api.Engine(medline_query)

        class FakeSocket:
            def __init__(self, payload):
                self._view, self._at = memoryview(payload), 0

            def recv(self, size):
                chunk = self._view[self._at:self._at + size]
                self._at += len(chunk)
                return bytes(chunk)

        fake_stdin = io.TextIOWrapper(io.BytesIO(data), encoding="utf-8")
        monkeypatch.setattr("sys.stdin", fake_stdin)
        sources = {
            "text": api.Source.from_text(medline_document),
            "text-chunked": api.Source.from_text(medline_document,
                                                 chunk_size=4096),
            "bytes": api.Source.from_bytes(data),
            "bytes-chunked": api.Source.from_bytes(data, chunk_size=1024),
            "file": api.Source.from_file(medline_file, chunk_size=4096),
            "mmap": api.Source.from_mmap(medline_file),
            "mmap-chunked": api.Source.from_mmap(medline_file,
                                                 chunk_size=4096),
            "iter": api.Source.from_iter(iter_chunks(data, 777)),
            "socket": api.Source.from_socket(FakeSocket(data),
                                             chunk_size=512),
            "stdin": api.Source.from_stdin(chunk_size=4096),
        }
        for kind, source in sources.items():
            run = engine.run(source, binary=True)
            assert run.single.output == reference_output, kind

    def test_repeatable_sources_reopen_and_one_shot_sources_do_not(
        self, medline_file
    ):
        source = api.Source.from_file(medline_file)
        assert b"".join(source.chunks()) == b"".join(source.chunks())
        once = api.Source.from_iter([b"<a></a>"])
        list(once.chunks())
        with pytest.raises(ReproError):
            list(once.chunks())

    def test_align_utf8_never_splits_a_code_point(self):
        payload = "café ☃ 日本語 \U0001f71a".encode("utf-8")
        source = api.Source.from_bytes(payload, chunk_size=1, align_utf8=True)
        rebuilt = []
        for chunk in source.chunks():
            chunk.decode("utf-8")  # must decode standalone
            rebuilt.append(chunk)
        assert b"".join(rebuilt) == payload

    def test_of_dispatches_on_raw_values(self, medline_document):
        assert api.Source.of(medline_document).kind == "text"
        assert api.Source.of(b"<a/>").kind == "bytes"
        assert api.Source.of([b"<a/>"]).kind == "iter"
        source = api.Source.from_bytes(b"<a/>")
        assert api.Source.of(source) is source


# ----------------------------------------------------------------------
# Query
# ----------------------------------------------------------------------
class TestQuery:
    def test_equal_queries_hash_equal_and_share_one_plan(self):
        dtd = medline_dtd()
        first = api.Query.from_spec(dtd, MEDLINE_QUERIES["M3"])
        second = api.Query.from_spec(dtd, MEDLINE_QUERIES["M3"])
        assert first == second
        assert hash(first) == hash(second)
        assert first.plan() is second.plan()  # the existing plan cache
        assert len({first: 1, second: 2}) == 1

    def test_label_and_backend_distinguish_queries(self):
        dtd = medline_dtd()
        base = api.Query.from_spec(dtd, MEDLINE_QUERIES["M3"])
        relabelled = api.Query.from_spec(dtd, MEDLINE_QUERIES["M3"],
                                         label="other")
        instrumented = api.Query.from_spec(dtd, MEDLINE_QUERIES["M3"],
                                           backend="instrumented")
        assert base != relabelled
        assert base != instrumented

    def test_xpath_query_extracts_projection_paths(self, xmark_document):
        dtd = xmark_dtd()
        spec = XMARK_QUERIES["XM1"]
        from_xpath = api.Query(spec.xpath, dtd)
        run = api.Engine(from_xpath).run(xmark_document)
        reference = api.Engine(api.Query.from_spec(dtd, spec)).run(
            xmark_document
        )
        assert run.single.output == reference.single.output

    def test_from_plan_wraps_without_recompiling(self, medline_query):
        plan = medline_query.plan()
        wrapped = api.Query.from_plan(plan, label="wrapped")
        assert wrapped.plan() is plan


# ----------------------------------------------------------------------
# Engine and Session
# ----------------------------------------------------------------------
class TestEngine:
    def test_single_query_matches_searching_session(
        self, medline_query, medline_document
    ):
        run = api.Engine(medline_query).run(
            api.Source.from_text(medline_document, chunk_size=4096)
        )
        reference = medline_query.plan().session().run(
            iter_chunks(medline_document, 4096)
        )
        assert run.single.output == reference.output
        assert_structurally_equal(run.single.stats, reference.stats)
        # The searching path also carries the matcher counters.
        assert run.single.stats.char_comparisons == \
            reference.stats.char_comparisons
        assert run.scan_stats is None

    def test_multi_query_matches_shared_scan_session(self, medline_document):
        dtd = medline_dtd()
        queries = [
            api.Query.from_spec(dtd, MEDLINE_QUERIES[name])
            for name in ("M2", "M4", "M5")
        ]
        run = api.Engine(queries).run(
            api.Source.from_text(medline_document, chunk_size=4096)
        )
        assert run.labels == ["M2", "M4", "M5"]
        assert run.scan_stats is not None
        engine = MultiQueryEngine(
            dtd, [MEDLINE_QUERIES[name] for name in ("M2", "M4", "M5")]
        )
        session = engine.session()
        pieces = [[] for _ in run.results]
        for chunk in iter_chunks(medline_document, 4096):
            for index, emitted in enumerate(session.feed(chunk)):
                pieces[index].append(emitted)
        for index, emitted in enumerate(session.finish()):
            pieces[index].append(emitted)
        for result, parts, stats in zip(run, pieces, session.stats):
            assert result.output == "".join(parts)
            assert_structurally_equal(result.stats, stats)

    def test_run_indexing_by_label_and_single_guard(self, medline_document):
        dtd = medline_dtd()
        run = api.Engine(
            [api.Query.from_spec(dtd, MEDLINE_QUERIES[name])
             for name in ("M2", "M5")]
        ).run(medline_document)
        assert run["M5"].label == "M5"
        with pytest.raises(KeyError):
            run["M9"]
        with pytest.raises(QueryError):
            run.single
        assert [result.label for result in run] == run.labels

    def test_mode_validation(self, medline_query):
        dtd = medline_dtd()
        other = api.Query.from_spec(dtd, MEDLINE_QUERIES["M4"])
        with pytest.raises(QueryError):
            api.Engine([medline_query, other], mode="search")
        with pytest.raises(QueryError):
            api.Engine([], mode="auto")
        with pytest.raises(QueryError):
            api.Engine(medline_query, mode="bogus")

    def test_shared_mode_for_single_query_matches_search_output(
        self, medline_query, medline_document, reference_output
    ):
        run = api.Engine(medline_query, mode="shared").run(
            api.Source.from_bytes(medline_document.encode("utf-8"),
                                  chunk_size=4096),
            binary=True,
        )
        assert run.single.output == reference_output
        assert run.scan_stats is not None

    def test_accepted_agrees_across_search_and_shared_paths(
        self, medline_query, medline_document
    ):
        for live in (False, True):
            session = api.Engine(medline_query).open(live=live)
            handle = session.handles[0]
            assert not handle.accepted
            session.feed(medline_document)
            session.finish()
            assert handle.accepted, f"live={live}"

    def test_measure_memory_lands_on_the_right_stats(
        self, medline_query, medline_document
    ):
        single = api.Engine(medline_query).run(
            medline_document, measure_memory=True
        )
        assert single.single.stats.peak_memory_bytes > 0
        shared = api.Engine(medline_query, mode="shared").run(
            medline_document, measure_memory=True
        )
        assert shared.scan_stats.peak_memory_bytes > 0


class TestSinks:
    def test_collect_and_callback_and_null_sinks(
        self, medline_query, medline_document, reference_output
    ):
        collect = api.CollectSink()
        fragments = []
        engine = api.Engine(medline_query)
        run = engine.run(
            api.Source.from_bytes(medline_document.encode("utf-8"),
                                  chunk_size=4096),
            sinks=[collect],
            binary=True,
        )
        assert run.single.output == b""  # routed to the sink
        assert collect.value() == reference_output
        engine.run(
            medline_document, sinks=[fragments.append], binary=True
        )
        assert b"".join(fragments) == reference_output
        null_run = engine.run(
            medline_document, sinks=[api.NullSink()], binary=True
        )
        assert null_run.single.stats.output_size == len(reference_output)

    def test_file_sink_streams_bytes_and_closes(
        self, tmp_path, medline_query, medline_document, reference_output
    ):
        target = tmp_path / "projection.xml"
        sink = api.FileSink(target)
        api.Engine(medline_query).run(medline_document, sinks=[sink])
        assert sink._stream.closed  # session.run closes its sinks
        assert target.read_bytes() == reference_output

    def test_binary_mode_inferred_from_sinks(
        self, tmp_path, medline_query, medline_document
    ):
        # FileSink prefers bytes; no explicit binary flag needed.
        target = tmp_path / "inferred.xml"
        api.Engine(medline_query).run(
            medline_document, sinks=[api.FileSink(target)]
        )
        assert target.read_bytes()

    def test_labelled_sink_mapping(self, medline_document):
        dtd = medline_dtd()
        engine = api.Engine(
            [api.Query.from_spec(dtd, MEDLINE_QUERIES[name])
             for name in ("M2", "M5")]
        )
        only_m5 = api.CollectSink()
        run = engine.run(medline_document, sinks={"M5": only_m5})
        assert run["M5"].output == ""
        assert only_m5.value() == engine.run(medline_document)["M5"].output
        assert run["M2"].output  # un-sinked query still accumulates
        with pytest.raises(QueryError):
            engine.run(medline_document, sinks={"M9": api.CollectSink()})

    def test_mismatched_sink_count_is_rejected(self, medline_query):
        engine = api.Engine(medline_query)
        with pytest.raises(QueryError):
            engine.run("<a/>", sinks=[api.NullSink(), api.NullSink()])

    def test_collect_sink_adopts_the_session_mode_when_empty(
        self, medline_document
    ):
        # A query that projects nothing must still yield the right empty
        # value from a mode-agnostic CollectSink.
        dtd = medline_dtd()
        # CollectionTitle is declared but never generated, so the
        # projection is legitimately empty.
        empty_query = api.Query.from_paths(
            dtd, ["//CollectionTitle#"], add_default_paths=False
        )
        sink = api.CollectSink()
        api.Engine(empty_query).run(
            medline_document.encode("utf-8"), sinks=[sink], binary=True
        )
        assert sink.value() == b""
        text_sink = api.CollectSink()
        api.Engine(empty_query).run(medline_document, sinks=[text_sink])
        assert text_sink.value() == ""


# ----------------------------------------------------------------------
# Live attach / detach
# ----------------------------------------------------------------------
class TestAttachDetach:
    CHUNK = 4096

    def _drive(self, session, data, pieces):
        for chunk in iter_chunks(data, self.CHUNK):
            for index, emitted in enumerate(session.feed(chunk)):
                while index >= len(pieces):
                    pieces.append([])
                if emitted:
                    pieces[index].append(emitted)

    def test_attach_before_first_byte_equals_fresh_full_run(
        self, xmark_document
    ):
        dtd = xmark_dtd()
        query_a = api.Query.from_spec(dtd, XMARK_QUERIES["XM1"])
        query_b = api.Query.from_spec(dtd, XMARK_QUERIES["XM6"])
        session = api.Engine(query_a).open(live=True, binary=True)
        handle = session.attach(query_b)
        assert handle.attached_at == 0
        pieces: list[list] = [[], []]
        data = xmark_document.encode("utf-8")
        self._drive(session, data, pieces)
        for index, emitted in enumerate(session.finish()):
            if emitted:
                pieces[index].append(emitted)
        fresh = api.Engine(query_b).run(
            api.Source.from_bytes(data, chunk_size=self.CHUNK), binary=True
        )
        assert b"".join(pieces[1]) == fresh.single.output
        assert handle.accepted

    def test_attach_mid_document_equals_fresh_session_on_remaining_bytes(
        self, xmark_document
    ):
        dtd = xmark_dtd()
        query_a = api.Query.from_spec(dtd, XMARK_QUERIES["XM1"])
        query_b = api.Query.from_spec(dtd, XMARK_QUERIES["XM6"])
        data = xmark_document.encode("utf-8")
        half = len(data) // 2

        session = api.Engine(query_a).open(live=True, binary=True)
        pieces: list[list] = [[]]
        self._drive(session, data[:half], pieces)
        handle = session.attach(query_b)
        offset = handle.attached_at
        assert half - self.CHUNK <= offset <= half
        self._drive(session, data[half:], pieces)
        finished = session.finish()
        attached_output = b"".join(pieces[1]) + finished[1]

        # The reference: a fresh shared-scan session fed only the bytes
        # from the attach offset on.
        fresh = MultiQueryEngine(dtd, [query_b.plan()]).session(binary=True)
        fresh_pieces: list[bytes] = []
        remaining = data[offset:]
        for chunk in iter_chunks(remaining, self.CHUNK):
            fresh_pieces.extend(fresh.feed(chunk))
        try:
            fresh_pieces.extend(fresh.finish())
            fresh_accepted = fresh.accepted(0)
        except RuntimeFilterError:
            # A mid-document suffix legitimately may never accept; the
            # attached query reports the same through its handle.
            fresh_accepted = False
        assert attached_output == b"".join(fresh_pieces)
        assert handle.accepted == fresh_accepted
        assert handle.stats.input_size == len(remaining)
        assert_structurally_equal(
            handle.stats,
            fresh.stats[0],
            fields=(
                "input_size",
                "tokens_matched",
                "tokens_copied",
                "regions_copied",
                "initial_jumps",
                "initial_jump_chars",
                "local_scan_chars",
            ),
        )
        # The original query is oblivious to the attach.
        original = api.Engine(query_a).run(
            api.Source.from_bytes(data, chunk_size=self.CHUNK), binary=True
        )
        assert b"".join(pieces[0]) + finished[0] == original.single.output

    def test_attach_with_new_keywords_rebuilds_the_union_scan(
        self, medline_document
    ):
        dtd = medline_dtd()
        query_a = api.Query.from_spec(dtd, MEDLINE_QUERIES["M2"])
        query_b = api.Query.from_spec(dtd, MEDLINE_QUERIES["M5"])
        engine = api.Engine(query_a)
        session = engine.open(live=True, binary=True)
        handle = session.attach(query_b)  # M5 keywords are new to the scan
        pieces: list[list] = [[], []]
        self._drive(session, medline_document.encode("utf-8"), pieces)
        for index, emitted in enumerate(session.finish()):
            if emitted:
                pieces[index].append(emitted)
        fresh = api.Engine(query_b).run(
            medline_document.encode("utf-8"), binary=True
        )
        assert b"".join(pieces[1]) == fresh.single.output
        assert handle.accepted

    def test_detach_freezes_output_and_statistics(self, medline_document):
        dtd = medline_dtd()
        queries = [
            api.Query.from_spec(dtd, MEDLINE_QUERIES["M2"]),
            api.Query.from_spec(dtd, MEDLINE_QUERIES["M5"]),
        ]
        engine = api.Engine(queries)
        data = medline_document.encode("utf-8")
        half = len(data) // 2

        session = engine.open(binary=True)
        pieces: list[list] = [[], []]
        self._drive(session, data[:half], pieces)
        handle = session.handles[1]
        pending = session.detach(handle)
        if pending:
            pieces[1].append(pending)
        # The frozen statistics are sealed complete: output_size reflects
        # everything emitted up to the detach.
        assert handle.stats.output_size == sum(len(p) for p in pieces[1])
        snapshot = vars(handle.stats).copy()
        self._drive(session, data[half:], pieces)
        finished = session.finish()
        assert finished[1] == b""
        assert vars(handle.stats) == snapshot
        assert handle.detached
        # Whatever it emitted before the detach is a prefix of the full
        # projection, and the surviving query is unaffected.
        full = engine.run(
            api.Source.from_bytes(data, chunk_size=self.CHUNK), binary=True
        )
        assert full["M5"].output.startswith(b"".join(pieces[1]))
        assert b"".join(pieces[0]) + finished[0] == full["M2"].output
        with pytest.raises(QueryError):
            session.detach(handle)  # double detach

    def test_attach_requires_a_shared_scan_session(self, medline_query):
        session = api.Engine(medline_query).open()
        with pytest.raises(QueryError):
            session.attach(medline_query)
        with pytest.raises(QueryError):
            session.detach(session.handles[0])

    def test_detach_rejects_foreign_handles(self, medline_query):
        first = api.Engine(medline_query, mode="shared").open()
        second = api.Engine(medline_query, mode="shared").open()
        with pytest.raises(QueryError):
            second.detach(first.handles[0])

    def test_attach_after_finish_is_rejected(self, medline_query):
        session = api.Engine(medline_query, mode="shared").open(binary=True)
        with pytest.raises(RuntimeFilterError):
            # Empty input is not a conforming document...
            session.finish()
        with pytest.raises(RuntimeFilterError):
            session.attach(medline_query)
