"""The byte-oriented input subsystem and its incremental UTF-8 handling."""

from __future__ import annotations

import random

import pytest

from repro.core.sources import (
    Utf8ChunkAligner,
    Utf8SlidingDecoder,
    align_utf8_chunks,
    decode_chunks,
    file_chunks,
    iter_byte_chunks,
    mmap_chunks,
    open_mmap,
    socket_chunks,
    utf8_boundary,
)
from repro.core.stream import ChunkCursor

#: Code points with 1-, 2-, 3- and 4-byte UTF-8 encodings, plus the BOM.
SAMPLE_TEXT = "a é ☃ \U0001d11e ﻿ z 日本語 €"


class TestUtf8Boundary:
    def test_empty_and_ascii(self):
        assert utf8_boundary(b"") == 0
        assert utf8_boundary(b"hello") == 5

    @pytest.mark.parametrize("text,tail", [
        ("é", 1),       # 2-byte sequence, cut after lead
        ("☃", 1),       # 3-byte sequence, cut after lead
        ("☃", 2),       # 3-byte sequence, cut mid-continuation
        ("\U0001d11e", 1),
        ("\U0001d11e", 2),
        ("\U0001d11e", 3),
        ("\ufeff", 1),  # the BOM is an ordinary 3-byte sequence
        ("\ufeff", 2),
    ])
    def test_partial_tail_is_excluded(self, text, tail):
        data = b"x" + text.encode("utf-8")
        truncated = data[:len(data) - tail]
        cut = utf8_boundary(truncated)
        assert cut == 1  # only the ASCII prefix is complete
        truncated[:cut].decode("utf-8")  # must decode cleanly

    def test_complete_sequences_pass_whole(self):
        data = SAMPLE_TEXT.encode("utf-8")
        assert utf8_boundary(data) == len(data)

    def test_every_prefix_decodes(self):
        data = SAMPLE_TEXT.encode("utf-8")
        for stop in range(len(data) + 1):
            prefix = data[:stop]
            prefix[:utf8_boundary(prefix)].decode("utf-8")


class TestUtf8ChunkAligner:
    def test_never_splits_a_character(self):
        data = SAMPLE_TEXT.encode("utf-8")
        rng = random.Random(7)
        for _ in range(50):
            aligner = Utf8ChunkAligner()
            out = []
            position = 0
            while position < len(data):
                size = rng.randint(1, 5)
                out.append(aligner.push(data[position:position + size]))
                position += size
            assert aligner.finish() == b""
            for piece in out:
                piece.decode("utf-8")  # each aligned piece is decodable
            assert b"".join(out) == data

    def test_finish_returns_dangling_tail(self):
        aligner = Utf8ChunkAligner()
        assert aligner.push("é".encode("utf-8")[:1]) == b""
        assert aligner.finish() == "é".encode("utf-8")[:1]

    def test_align_utf8_chunks_generator(self):
        data = SAMPLE_TEXT.encode("utf-8")
        pieces = list(align_utf8_chunks(data[i:i + 1] for i in range(len(data))))
        assert b"".join(pieces) == data
        for piece in pieces:
            piece.decode("utf-8")


class TestUtf8SlidingDecoder:
    def test_decodes_split_fragments(self):
        data = SAMPLE_TEXT.encode("utf-8")
        decoder = Utf8SlidingDecoder()
        text = "".join(decoder.decode(data[i:i + 1]) for i in range(len(data)))
        text += decoder.finish()
        assert text == SAMPLE_TEXT

    def test_finish_raises_on_dangling_sequence(self):
        decoder = Utf8SlidingDecoder()
        decoder.decode("é".encode("utf-8")[:1])
        with pytest.raises(UnicodeDecodeError):
            decoder.finish()

    def test_decode_chunks_round_trip(self):
        data = SAMPLE_TEXT.encode("utf-8")
        assert "".join(decode_chunks(iter_byte_chunks(data, 2))) == SAMPLE_TEXT


class _FakeSocket:
    def __init__(self, payload: bytes, piece: int) -> None:
        self._payload = payload
        self._piece = piece
        self._sent = 0

    def recv(self, size: int) -> bytes:
        take = min(self._piece, size, len(self._payload) - self._sent)
        chunk = self._payload[self._sent:self._sent + take]
        self._sent += take
        return chunk


class TestByteSources:
    def test_file_chunks(self, tmp_path):
        payload = b"0123456789" * 100
        path = tmp_path / "payload.bin"
        path.write_bytes(payload)
        chunks = list(file_chunks(str(path), 64))
        assert b"".join(chunks) == payload
        assert all(len(chunk) <= 64 for chunk in chunks)

    def test_mmap_chunks_sliced(self, tmp_path):
        payload = b"abcdef" * 50
        path = tmp_path / "payload.bin"
        path.write_bytes(payload)
        assert b"".join(mmap_chunks(str(path), 32)) == payload

    def test_mmap_whole_map_drives_a_cursor(self, tmp_path):
        payload = b"<root>" + b"x" * 500 + b"</root>"
        path = tmp_path / "doc.xml"
        path.write_bytes(payload)
        with open_mmap(str(path)) as mapping:
            cursor = ChunkCursor(binary=True)
            cursor.append(mapping)
            cursor.close()
            assert cursor.find(b"</root>", 0) == len(payload) - 7
            assert cursor.slice(0, 6) == b"<root>"
            assert cursor.char(0) == ord("<")
            text, base = cursor.view()
            assert base == 0 and len(text) == len(payload)
            cursor.discard_to(cursor.end)  # release before the map closes
        assert len(cursor) == 0

    def test_socket_chunks(self):
        payload = b"streamed bytes over a socket" * 10
        connection = _FakeSocket(payload, piece=7)
        assert b"".join(socket_chunks(connection, 64)) == payload

    def test_iter_byte_chunks_dispatch(self, tmp_path):
        payload = b"dispatch me please"
        # bytes-like
        assert b"".join(iter_byte_chunks(payload, 4)) == payload
        assert b"".join(iter_byte_chunks(bytearray(payload), 4)) == payload
        # file-like
        path = tmp_path / "p.bin"
        path.write_bytes(payload)
        with open(path, "rb") as handle:
            assert b"".join(iter_byte_chunks(handle, 4)) == payload
        # socket-like
        assert b"".join(iter_byte_chunks(_FakeSocket(payload, 3), 8)) == payload
        # iterable passthrough
        assert b"".join(iter_byte_chunks([payload[:5], payload[5:]], 4)) == payload

    def test_iter_byte_chunks_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_byte_chunks(b"x", 0))


class TestBinaryChunkCursor:
    def test_adopts_bytes_type_on_first_append(self):
        cursor = ChunkCursor()
        cursor.append(b"hello ")
        cursor.append(b"world")
        assert cursor.binary
        assert cursor.slice(0, 5) == b"hello"
        assert cursor.char(6) == ord("w")
        assert cursor.find(b"world", 0) == 6

    def test_explicit_binary_flag(self):
        cursor = ChunkCursor(binary=True)
        assert cursor.binary
        cursor.append(b"abc")
        assert cursor.text == b"abc"

    def test_discard_and_append_interleaved(self):
        cursor = ChunkCursor(binary=True)
        payload = bytes(range(256)) * 8
        position = 0
        for start in range(0, len(payload), 100):
            cursor.append(payload[start:start + 100])
            keep = max(0, cursor.end - 64)
            cursor.discard_to(keep)
            position = keep
            window, base = cursor.view()
            live = window[position - base:]
            assert bytes(live) == payload[position:start + 100]

    def test_memoryview_chunks_are_materialised(self):
        cursor = ChunkCursor(binary=True)
        cursor.append(memoryview(b"viewed"))
        assert cursor.find(b"wed", 0) == 3

    def test_chunk_type_never_flips_after_drain(self):
        """Once fixed, the chunk type is enforced -- even on an empty window."""
        binary = ChunkCursor(binary=True)
        binary.append(b"abc")
        binary.discard_to(binary.end)
        with pytest.raises(TypeError):
            binary.append("text")
        adopted = ChunkCursor()
        adopted.append("text")
        adopted.discard_to(adopted.end)
        with pytest.raises(TypeError):
            adopted.append(b"bytes")

    def test_str_cursor_still_works(self):
        cursor = ChunkCursor()
        cursor.append("hello ")
        cursor.append("world")
        assert not cursor.binary
        assert cursor.char(6) == "w"
        assert cursor.find("world", 0) == 6


# ----------------------------------------------------------------------
# Record-stream splitting (generated corpora)
# ----------------------------------------------------------------------
class TestSplitDocumentsGeneratedStreams:
    """The generator subsystem feeds split_documents adversarial streams:
    end tags landing exactly on chunk edges, records larger than the chunk
    size, and whitespace-joined record boundaries."""

    def test_end_tag_exactly_on_chunk_edges(self):
        from repro.core.sources import split_documents

        records = [b"<r><a>%d</a></r>" % index for index in range(5)]
        stream = b"".join(records)
        tag = b"</r>"
        # Chunk boundaries placed exactly at each end-tag end, each end-tag
        # start, and one byte into the tag.
        for offsets in (
            [stream.find(tag, start) + len(tag)
             for start in range(0, len(stream), len(records[0]))],
            [stream.find(tag, start)
             for start in range(0, len(stream), len(records[0]))],
            [stream.find(tag, start) + 1
             for start in range(0, len(stream), len(records[0]))],
        ):
            cuts = sorted({o for o in offsets if 0 < o < len(stream)})
            chunks, previous = [], 0
            for cut in cuts:
                chunks.append(stream[previous:cut])
                previous = cut
            chunks.append(stream[previous:])
            assert list(split_documents(chunks, tag)) == records

    def test_record_larger_than_chunk_size(self):
        from repro.core.sources import split_documents

        big = b"<r><x>" + b"y" * 10_000 + b"</x></r>"
        small = b"<r><x>z</x></r>"
        stream = big + b"\n" + small + b"\n" + big
        for chunk_size in (1, 7, 64, 512):
            chunks = [
                stream[start:start + chunk_size]
                for start in range(0, len(stream), chunk_size)
            ]
            assert list(split_documents(chunks, b"</r>")) == [big, small, big]

    def test_generated_stream_round_trips(self):
        from repro.core.sources import split_documents
        from repro.workloads.generate import DocumentSpec, generate_records
        from repro.workloads.schema import SchemaSpec, build_schema

        schema = build_schema(SchemaSpec(seed=5, depth=4, fanout=3))
        records = generate_records(
            schema, DocumentSpec(seed=2, records=6, record_bytes=700)
        )
        stream = b"\n".join(records) + b"\n"
        for chunk_size in (3, 41, 1024):
            chunks = [
                stream[start:start + chunk_size]
                for start in range(0, len(stream), chunk_size)
            ]
            assert list(split_documents(chunks, schema.end_tag)) == records


class TestSplitJsonl:
    def test_basic_lines_and_blank_skipping(self):
        from repro.core.sources import split_jsonl

        stream = b'{"a":1}\n\n{"b":2}\n{"c":3}'
        assert list(split_jsonl([stream])) == [
            b'{"a":1}', b'{"b":2}', b'{"c":3}',
        ]

    def test_any_chunking_round_trips(self):
        from repro.core.sources import split_jsonl
        from repro.workloads.json_records import JsonSpec, generate_jsonl

        stream = generate_jsonl(JsonSpec(seed=3, records=7, utf8=0.3))
        expected = [line for line in stream.split(b"\n") if line.strip()]
        for chunk_size in (1, 2, 13, 255, len(stream)):
            chunks = [
                stream[start:start + chunk_size]
                for start in range(0, len(stream), chunk_size)
            ]
            assert list(split_jsonl(chunks)) == expected

    def test_str_chunks_and_missing_trailing_newline(self):
        from repro.core.sources import split_jsonl

        assert list(split_jsonl(['{"a":1}\n{"b"', ":2}"])) == [
            b'{"a":1}', b'{"b":2}',
        ]
