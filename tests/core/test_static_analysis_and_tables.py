"""Unit tests for the static analysis (Figure 6) and the lookup tables."""

from __future__ import annotations

import pytest

from repro.core import Action, SmpPrefilter, StaticAnalyzer, build_tables, keyword_for
from repro.core.tables import summarize_states
from repro.dtd import Dtd
from repro.errors import CompilationError


class TestStateSelection:
    def test_relevant_states_selected(self, paper_dtd):
        analysis = StaticAnalyzer(paper_dtd, ["/a/b#"]).analyse()
        selected_tags = {
            (analysis.automaton.state(state).tag, analysis.automaton.state(state).is_opening)
            for state in analysis.selected
        }
        assert ("a", True) in selected_tags and ("a", False) in selected_tags
        assert ("b", True) in selected_tags and ("b", False) in selected_tags

    def test_step1c_adds_disambiguating_c_states(self, paper_dtd):
        # Example 11: the b-occurrence inside c forces the c states into S so
        # the runtime is not thrown off track.
        analysis = StaticAnalyzer(paper_dtd, ["/a/b#"]).analyse()
        c_states = {
            state for state in analysis.selected
            if analysis.automaton.state(state).tag == "c"
        }
        assert len(c_states) == 2

    def test_step1b_prunes_interiors_of_flagged_subtrees(self, paper_dtd):
        # Example 12: for //c# the b-occurrences below c are not selected.
        analysis = StaticAnalyzer(paper_dtd, ["//c#"]).analyse()
        b_inside_c = {
            state for state in analysis.selected
            if analysis.automaton.state(state).tag == "b"
        }
        assert not b_inside_c

    def test_dual_states_selected_together(self, xmark_dtd_fixture):
        analysis = StaticAnalyzer(
            xmark_dtd_fixture, ["/site/regions/australia/item/name#"],
        ).analyse()
        for state in analysis.selected:
            dual = analysis.automaton.dual_of(state)
            assert dual is None or dual in analysis.selected

    def test_empty_path_list_rejected(self, paper_dtd):
        with pytest.raises(CompilationError):
            StaticAnalyzer(paper_dtd, [], add_default_paths=False).analyse()

    def test_default_top_level_path_added(self, paper_dtd):
        analysis = StaticAnalyzer(paper_dtd, ["/a/b#"]).analyse()
        assert any(str(path) == "/*" for path in analysis.paths)


class TestRuntimeAutomatonProperties:
    def test_determinism(self, xmark_dtd_fixture):
        analysis = StaticAnalyzer(xmark_dtd_fixture, ["//item/name#"]).analyse()
        for state_id, transitions in analysis.runtime.transitions.items():
            assert len(set(transitions.values())) == len(transitions) or True
            # Determinism means: one target per symbol (dict keys are unique
            # by construction); additionally every target must be a valid id.
            for target in transitions.values():
                assert 0 <= target < analysis.runtime.state_count()

    def test_homogeneity_preserved(self, xmark_dtd_fixture):
        analysis = StaticAnalyzer(
            xmark_dtd_fixture, ["/site/people/person/name#"],
        ).analyse()
        automaton = analysis.runtime
        for state_id, transitions in automaton.transitions.items():
            for symbol, target in transitions.items():
                assert automaton.state(target).symbol == symbol

    def test_initial_state_has_root_keyword(self, medline_dtd_fixture):
        analysis = StaticAnalyzer(
            medline_dtd_fixture, ["/MedlineCitationSet//CollectionTitle#"],
        ).analyse()
        tables = build_tables(analysis)
        assert tables.V(tables.initial_state) == ("<MedlineCitationSet",)

    def test_final_state_reached_only_after_root_close(self, paper_dtd):
        analysis = StaticAnalyzer(paper_dtd, ["/a/b#"]).analyse()
        finals = analysis.runtime.final_states()
        assert len(finals) == 1
        final_state = analysis.runtime.state(next(iter(finals)))
        assert final_state.symbol == ("close", "a")


class TestTables:
    def test_keyword_for_symbols(self):
        assert keyword_for(("open", "item")) == "<item"
        assert keyword_for(("close", "item")) == "</item"

    def test_vocabulary_excludes_trailing_bracket(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        for state in prefilter.tables.automaton.states:
            for keyword in prefilter.tables.V(state.state_id):
                assert not keyword.endswith(">")

    def test_transition_lookup_and_missing_transition(self, paper_dtd):
        tables = SmpPrefilter.compile(paper_dtd, ["/a/b#"]).tables
        initial = tables.initial_state
        target = tables.A(initial, ("open", "a"))
        assert target is not None
        assert tables.A(initial, ("open", "zzz")) is None

    def test_actions_default_to_nop_for_unknown_states(self, paper_dtd):
        tables = SmpPrefilter.compile(paper_dtd, ["/a/b#"]).tables
        assert tables.T(9999) is Action.NOP
        assert tables.J(9999) == 0

    def test_summarize_states_consistent_with_vocabularies(self, site_dtd):
        tables = SmpPrefilter.compile(site_dtd, ["//australia//description#"]).tables
        summary = summarize_states(tables)
        assert summary["cw"] == len(tables.multi_keyword_states())
        assert summary["bm"] == len(tables.single_keyword_states())
        assert summary["states"] == tables.state_count()
        assert summary["cw"] + summary["bm"] <= summary["states"]

    def test_prefix_tags_exposed_for_medline(self, medline_dtd_fixture):
        tables = SmpPrefilter.compile(
            medline_dtd_fixture, ["/MedlineCitationSet//AbstractText#"],
        ).tables
        assert "Abstract" in tables.prefix_tags

    def test_describe_lists_every_state(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        description = prefilter.describe_tables()
        assert description.count("state ") == prefilter.tables.state_count()


class TestCompilationStatistics:
    def test_compilation_statistics_populated(self, site_dtd):
        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        stats = prefilter.compilation
        assert stats.dtd_states > 0
        assert stats.runtime_states == prefilter.tables.state_count()
        assert stats.compile_seconds >= 0.0
        assert stats.states_label().startswith(str(stats.runtime_states))

    def test_compiled_prefilter_is_reusable(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        first = prefilter.session().run("<a><b>1</b></a>")
        second = prefilter.session().run("<a><c><b>2</b></c></a>")
        assert first.output == "<a><b>1</b></a>"
        assert second.output == "<a></a>"
