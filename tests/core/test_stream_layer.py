"""Tests for the chunked-input substrate (repro.core.stream)."""

from __future__ import annotations

import io

import pytest

from repro.core.stream import DEFAULT_CHUNK_SIZE, ChunkCursor, iter_chunks, open_chunks


class TestChunkCursor:
    def test_append_and_absolute_addressing(self):
        cursor = ChunkCursor()
        cursor.append("hello ")
        cursor.append("world")
        assert cursor.base == 0
        assert cursor.end == 11
        assert cursor.char(6) == "w"
        assert cursor.slice(0, 5) == "hello"
        assert cursor.slice(6, 11) == "world"

    def test_discard_preserves_absolute_offsets(self):
        cursor = ChunkCursor()
        cursor.append("abcdefgh")
        cursor.discard_to(3)
        assert cursor.base == 3
        assert cursor.end == 8
        assert cursor.char(3) == "d"
        assert cursor.slice(4, 6) == "ef"
        assert len(cursor) == 5
        # Discarding backwards is a no-op.
        cursor.discard_to(1)
        assert cursor.base == 3

    def test_discard_beyond_end_clears_buffer(self):
        cursor = ChunkCursor()
        cursor.append("abc")
        cursor.discard_to(10)
        assert cursor.base == 3  # clamped to the received data
        assert len(cursor) == 0
        cursor.append("defg")
        assert cursor.char(4) == "e"

    def test_find_absolute(self):
        cursor = ChunkCursor()
        cursor.append("xxabyy")
        cursor.discard_to(2)
        assert cursor.find("ab", 0) == 2
        assert cursor.find("ab", 3) == -1
        assert cursor.find("yy", 2, 5) == -1
        assert cursor.find("yy", 2, 6) == 4

    def test_eof_flag(self):
        cursor = ChunkCursor()
        assert not cursor.eof
        cursor.close()
        assert cursor.eof

    def test_append_is_deferred_until_a_reader_needs_the_text(self):
        cursor = ChunkCursor()
        cursor.append("abc")
        cursor.append("def")
        # Appends only record segments (O(1)); the merged buffer appears on
        # demand and is then reused until the next append.
        assert cursor._segments == ["abc", "def"]
        text, base = cursor.view()
        assert (text, base) == ("abcdef", 0)
        assert cursor._segments == []
        assert cursor.view()[0] is text

    def test_view_exposes_the_dead_prefix_base(self):
        cursor = ChunkCursor()
        cursor.append("0123456789")
        cursor.view()
        cursor.discard_to(3)  # small dead prefix: kept, not compacted
        text, base = cursor.view()
        assert base <= cursor.base
        assert text[cursor.base - base:] == "3456789"
        assert cursor.text == "3456789"

    def test_discard_drops_whole_segments_without_merging(self):
        cursor = ChunkCursor()
        cursor.append("aaaa")
        cursor.append("bbbb")
        cursor.append("cccc")
        cursor.discard_to(8)  # both leading segments are fully dead
        assert cursor._segments == ["cccc"]
        assert cursor._buffer == ""
        assert cursor.base == 8
        assert cursor.text == "cccc"

    def test_compaction_is_amortised(self):
        # Many small discards over a large buffer must not copy the tail
        # every time: the dead prefix is only compacted once it reaches
        # half of the merged buffer.
        cursor = ChunkCursor()
        cursor.append("x" * 100_000)
        cursor.view()
        buffer_before = cursor._buffer
        cursor.discard_to(10_000)
        assert cursor._buffer is buffer_before  # no copy yet
        cursor.discard_to(60_000)
        assert len(cursor._buffer) == 40_000    # compacted once past half
        assert cursor.text == "x" * 40_000

    def test_char_and_slice_reach_into_unmerged_segments(self):
        cursor = ChunkCursor()
        cursor.append("abc")
        cursor.append("def")
        assert cursor.char(4) == "e"            # no merge needed
        assert cursor._segments == ["abc", "def"]
        assert cursor.slice(2, 5) == "cde"      # merge on demand

    def test_find_searches_a_single_chunk_directly(self):
        cursor = ChunkCursor()
        cursor.append("0123456789")
        cursor.discard_to(10)
        cursor.append("abcdef")
        # The window is one appended chunk: find must not materialise.
        assert cursor.find("cd", 10) == 12
        assert cursor._segments == ["abcdef"]
        assert cursor.find("zz", 10) == -1
        assert cursor._segments == ["abcdef"]

    def test_find_spanning_buffer_and_segment(self):
        cursor = ChunkCursor()
        cursor.append("abc")
        cursor.view()
        cursor.append("def")
        assert cursor.find("cd", 0) == 2

    def test_interleaved_append_discard_roundtrip(self):
        import random

        rng = random.Random(31)
        reference = ""
        reference_base = 0
        cursor = ChunkCursor()
        for _ in range(300):
            if rng.random() < 0.6:
                chunk = "".join(rng.choice("abcd") for _ in range(rng.randint(0, 9)))
                cursor.append(chunk)
                reference += chunk
            else:
                floor = reference_base + rng.randint(
                    0, len(reference) + 2
                )
                cursor.discard_to(floor)
                drop = min(max(floor - reference_base, 0), len(reference))
                reference = reference[drop:]
                reference_base += drop
            assert cursor.text == reference
            assert cursor.base == reference_base
            assert len(cursor) == len(reference)
            assert cursor.end == reference_base + len(reference)


class TestIterChunks:
    def test_string_is_sliced(self):
        assert list(iter_chunks("abcdefg", 3)) == ["abc", "def", "g"]

    def test_file_object_is_read_in_chunks(self):
        handle = io.StringIO("abcdefg")
        assert list(iter_chunks(handle, 2)) == ["ab", "cd", "ef", "g"]

    def test_iterable_passes_through(self):
        assert list(iter_chunks(iter(["ab", "", "cde"]), 2)) == ["ab", "cde"]

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks("abc", 0))

    def test_open_chunks_reads_files(self, tmp_path):
        path = tmp_path / "doc.txt"
        path.write_text("0123456789", encoding="utf-8")
        assert list(open_chunks(str(path), 4)) == ["0123", "4567", "89"]

    def test_default_chunk_size_is_64_kib(self):
        assert DEFAULT_CHUNK_SIZE == 64 * 1024
