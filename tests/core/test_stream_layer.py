"""Tests for the chunked-input substrate (repro.core.stream)."""

from __future__ import annotations

import io

import pytest

from repro.core.stream import DEFAULT_CHUNK_SIZE, ChunkCursor, iter_chunks, open_chunks


class TestChunkCursor:
    def test_append_and_absolute_addressing(self):
        cursor = ChunkCursor()
        cursor.append("hello ")
        cursor.append("world")
        assert cursor.base == 0
        assert cursor.end == 11
        assert cursor.char(6) == "w"
        assert cursor.slice(0, 5) == "hello"
        assert cursor.slice(6, 11) == "world"

    def test_discard_preserves_absolute_offsets(self):
        cursor = ChunkCursor()
        cursor.append("abcdefgh")
        cursor.discard_to(3)
        assert cursor.base == 3
        assert cursor.end == 8
        assert cursor.char(3) == "d"
        assert cursor.slice(4, 6) == "ef"
        assert len(cursor) == 5
        # Discarding backwards is a no-op.
        cursor.discard_to(1)
        assert cursor.base == 3

    def test_discard_beyond_end_clears_buffer(self):
        cursor = ChunkCursor()
        cursor.append("abc")
        cursor.discard_to(10)
        assert cursor.base == 3  # clamped to the received data
        assert len(cursor) == 0
        cursor.append("defg")
        assert cursor.char(4) == "e"

    def test_find_absolute(self):
        cursor = ChunkCursor()
        cursor.append("xxabyy")
        cursor.discard_to(2)
        assert cursor.find("ab", 0) == 2
        assert cursor.find("ab", 3) == -1
        assert cursor.find("yy", 2, 5) == -1
        assert cursor.find("yy", 2, 6) == 4

    def test_eof_flag(self):
        cursor = ChunkCursor()
        assert not cursor.eof
        cursor.close()
        assert cursor.eof


class TestIterChunks:
    def test_string_is_sliced(self):
        assert list(iter_chunks("abcdefg", 3)) == ["abc", "def", "g"]

    def test_file_object_is_read_in_chunks(self):
        handle = io.StringIO("abcdefg")
        assert list(iter_chunks(handle, 2)) == ["ab", "cd", "ef", "g"]

    def test_iterable_passes_through(self):
        assert list(iter_chunks(iter(["ab", "", "cde"]), 2)) == ["ab", "cde"]

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks("abc", 0))

    def test_open_chunks_reads_files(self, tmp_path):
        path = tmp_path / "doc.txt"
        path.write_text("0123456789", encoding="utf-8")
        assert list(open_chunks(str(path), 4)) == ["0123", "4567", "89"]

    def test_default_chunk_size_is_64_kib(self):
        assert DEFAULT_CHUNK_SIZE == 64 * 1024
