"""Fault-tolerant execution: chaos invariants, error policies, teardown.

The acceptance property of the fault-tolerance layer: under deterministic
injected chaos -- workers crashing hard, workers hanging while ignoring
``SIGTERM``, transient I/O errors mid-chunk -- a parallel corpus run with a
:class:`~repro.core.sources.RetryPolicy` completes **byte-identical** to a
fault-free sequential run.  Poisoned documents (malformed payloads that
fail deterministically) are quarantined per the ``on_error`` policy without
disturbing the healthy documents' output, pool teardown reclaims even
``SIGTERM``-ignoring workers via the terminate → kill escalation, and the
source layer wraps unrecoverable read failures in
:class:`~repro.errors.SourceError` with the byte offset reached.
"""

from __future__ import annotations

import socket
import time
import warnings

import pytest

from repro import api, faults, parallel
from repro.core.sources import RetryPolicy, file_chunks, socket_chunks
from repro.core.stats import RunStatistics
from repro.errors import ReproError, SourceError
from repro.faults import FaultPlan
from repro.workloads.medline import (
    MEDLINE_QUERIES,
    generate_medline_document,
    medline_dtd,
)
from repro.workloads.xmark import (
    XMARK_QUERIES,
    generate_xmark_document,
    xmark_dtd,
)

_TIMING_FIELDS = ("run_seconds", "throughput_mb_per_second")


def _stats_key(stats: RunStatistics) -> dict:
    payload = stats.as_dict()
    for fieldname in _TIMING_FIELDS:
        payload.pop(fieldname, None)
    return payload


@pytest.fixture(scope="module")
def medline_corpus(tmp_path_factory):
    """Eight small MEDLINE documents on disk, size-skewed."""
    directory = tmp_path_factory.mktemp("fault-medline")
    paths = []
    for index, citations in enumerate((24, 8, 10, 6, 12, 9, 7, 11)):
        path = directory / f"doc{index}.xml"
        path.write_text(
            generate_medline_document(citations=citations, seed=50 + index),
            encoding="utf-8",
        )
        paths.append(str(path))
    return paths


@pytest.fixture(scope="module")
def xmark_corpus(tmp_path_factory):
    directory = tmp_path_factory.mktemp("fault-xmark")
    paths = []
    for index, scale in enumerate((0.01, 0.004, 0.008)):
        path = directory / f"site{index}.xml"
        path.write_text(
            generate_xmark_document(scale=scale, seed=20 + index),
            encoding="utf-8",
        )
        paths.append(str(path))
    return paths


def _medline_engine(mode="auto", jobs=None, queries=("M2", "M5")):
    dtd = medline_dtd()
    return api.Engine(
        [
            api.Query.from_spec(dtd, MEDLINE_QUERIES[name], backend="native")
            for name in queries
        ],
        mode=mode,
        **({} if jobs is None else {"jobs": jobs}),
    )


def _xmark_engine(mode="auto", jobs=None, queries=("XM1", "XM2")):
    dtd = xmark_dtd()
    return api.Engine(
        [
            api.Query.from_spec(dtd, XMARK_QUERIES[name], backend="native")
            for name in queries
        ],
        mode=mode,
        **({} if jobs is None else {"jobs": jobs}),
    )


# ----------------------------------------------------------------------
# The chaos invariant: injected faults + retry == fault-free sequential
# ----------------------------------------------------------------------
class TestChaosInvariant:
    def test_medline_crashes_and_io_errors_byte_identical(self, medline_corpus):
        reference = _medline_engine().run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        plan = FaultPlan(seed=1234, worker_crash=0.3, io_error=0.1)
        with faults.injected(plan):
            chaotic = _medline_engine(mode="parallel", jobs=3).run(
                api.Source.from_paths(medline_corpus),
                binary=True,
                retry=RetryPolicy(retries=8, backoff=0.01),
            )
        assert chaotic.ok
        assert chaotic.outputs == reference.outputs
        for ref_result, chaos_result in zip(reference, chaotic):
            assert _stats_key(ref_result.stats) == _stats_key(chaos_result.stats)

    def test_xmark_crashes_byte_identical(self, xmark_corpus):
        reference = _xmark_engine().run(
            api.Source.from_paths(xmark_corpus), binary=True
        )
        plan = FaultPlan(seed=99, worker_crash=0.4, io_error=0.15)
        with faults.injected(plan):
            chaotic = _xmark_engine(mode="parallel", jobs=2).run(
                api.Source.from_paths(xmark_corpus),
                binary=True,
                retry=RetryPolicy(retries=8, backoff=0.01),
            )
        assert chaotic.outputs == reference.outputs

    def test_workers_actually_die_and_respawn(self, medline_corpus):
        """The chaos is real: at least 20% of the fleet gets killed."""
        engine = _medline_engine()
        plan = FaultPlan(seed=1234, worker_crash=0.3)
        documents = list(api.Source.from_paths(medline_corpus).documents())
        with faults.injected(plan):
            pool = parallel.WorkerPool(engine, 3)
            try:
                outcomes = list(
                    parallel.execute_corpus(
                        engine,
                        documents,
                        jobs=3,
                        pool=pool,
                        retry=RetryPolicy(retries=8, backoff=0.01),
                    )
                )
                # uids are handed out sequentially; any uid >= jobs proves a
                # respawn happened (= a worker died and was replaced).
                spawned = max(w.uid for w in pool._workers) + 1
            finally:
                pool.close()
        assert len(outcomes) == len(medline_corpus)
        assert spawned - 3 >= 1, "no worker was ever killed -- chaos inert"

    def test_fault_free_run_with_plan_disarmed_is_plain(self, medline_corpus):
        """Disarmed fault sites are no-ops (the zero-overhead contract)."""
        assert faults.active() is None
        run = _medline_engine(mode="parallel", jobs=2).run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        assert run.ok and run.failures == []


# ----------------------------------------------------------------------
# on_error policies: quarantining poisoned documents
# ----------------------------------------------------------------------
class TestErrorPolicies:
    @pytest.fixture(scope="class")
    def poisoned_corpus(self, tmp_path_factory, medline_corpus):
        directory = tmp_path_factory.mktemp("poisoned")
        bad = directory / "bad.xml"
        bad.write_bytes(b"<MedlineCitationSet><Medline")
        paths = list(medline_corpus[:3])
        paths.insert(1, str(bad))
        return paths, str(bad)

    def test_collect_quarantines_and_keeps_healthy_output(
        self, medline_corpus, poisoned_corpus
    ):
        paths, bad = poisoned_corpus
        healthy = [p for p in paths if p != bad]
        reference = _medline_engine().run(
            api.Source.from_paths(healthy), binary=True
        )
        run = _medline_engine(mode="parallel", jobs=2).run(
            api.Source.from_paths(paths),
            binary=True,
            on_error="collect",
        )
        assert not run.ok
        assert run.outputs == reference.outputs
        assert len(run.failures) == 1
        failure = run.failures[0]
        assert failure.name == bad
        assert failure.attempts == 1  # not transient: no retry spent
        assert isinstance(failure.cause, ReproError)

    def test_collect_with_retry_does_not_burn_retries_on_poison(
        self, poisoned_corpus
    ):
        paths, bad = poisoned_corpus
        started = time.monotonic()
        run = _medline_engine(mode="parallel", jobs=2).run(
            api.Source.from_paths(paths),
            binary=True,
            on_error="collect",
            retry=RetryPolicy(retries=4, backoff=0.5),
        )
        elapsed = time.monotonic() - started
        assert [f.name for f in run.failures] == [bad]
        assert run.failures[0].attempts == 1
        # A deterministic failure must not sleep through the backoff ladder.
        assert elapsed < 0.5 * (1 + 2 + 4 + 8)

    def test_skip_drops_poisoned_documents(self, poisoned_corpus):
        paths, bad = poisoned_corpus
        healthy = [p for p in paths if p != bad]
        reference = _medline_engine().run(
            api.Source.from_paths(healthy), binary=True
        )
        run = _medline_engine(mode="parallel", jobs=2).run(
            api.Source.from_paths(paths), binary=True, on_error="skip"
        )
        assert run.ok  # skip records nothing
        assert run.outputs == reference.outputs
        assert [d.name for d in run.documents] == healthy

    def test_raise_names_the_poisoned_document(self, poisoned_corpus):
        paths, bad = poisoned_corpus
        with pytest.raises(ReproError) as excinfo:
            _medline_engine(mode="parallel", jobs=2).run(
                api.Source.from_paths(paths), binary=True
            )
        assert bad in str(excinfo.value)

    def test_policies_apply_in_process_too(self, poisoned_corpus):
        """jobs=1 (no pool) honours the same on_error semantics."""
        paths, bad = poisoned_corpus
        healthy = [p for p in paths if p != bad]
        reference = _medline_engine().run(
            api.Source.from_paths(healthy), binary=True
        )
        run = _medline_engine().run(
            api.Source.from_paths(paths), binary=True, on_error="collect"
        )
        assert run.outputs == reference.outputs
        assert [f.name for f in run.failures] == [bad]
        skipped = _medline_engine().run(
            api.Source.from_paths(paths), binary=True, on_error="skip"
        )
        assert skipped.outputs == reference.outputs

    def test_unknown_policy_rejected(self, medline_corpus):
        with pytest.raises(ReproError):
            _medline_engine(mode="parallel", jobs=2).run(
                api.Source.from_paths(medline_corpus),
                binary=True,
                on_error="explode",
            )

    def test_single_document_run_rejects_corpus_policies(self, medline_corpus):
        with pytest.raises(ReproError):
            _medline_engine().run(
                api.Source.from_file(medline_corpus[0]),
                binary=True,
                on_error="collect",
            )


# ----------------------------------------------------------------------
# Deadlines: hung workers are killed, documents resubmitted
# ----------------------------------------------------------------------
class TestDeadline:
    def test_hung_worker_killed_and_document_recovered(self, medline_corpus):
        # A *probabilistic* hang rate: a respawned worker draws a fresh RNG
        # stream, so rate 1.0 would hang every replacement too and make the
        # corpus unrecoverable by construction.  At 0.4 the resubmissions
        # eventually land on a non-hanging draw.
        paths = medline_corpus[:4]
        reference = _medline_engine().run(
            api.Source.from_paths(paths), binary=True
        )
        plan = FaultPlan(
            seed=7, worker_hang=0.4, hang_seconds=60.0, max_triggers=1
        )
        with faults.injected(plan):
            run = _medline_engine(mode="parallel", jobs=2).run(
                api.Source.from_paths(paths),
                binary=True,
                retry=RetryPolicy(retries=6, backoff=0.01),
                deadline=1.5,
            )
        assert run.outputs == reference.outputs

    def test_deadline_exhaustion_raises_transient_error(self, medline_corpus):
        paths = medline_corpus[:2]
        plan = FaultPlan(seed=7, worker_hang=1.0, hang_seconds=60.0)
        with faults.injected(plan):
            with pytest.raises(parallel.ParallelExecutionError) as excinfo:
                _medline_engine(mode="parallel", jobs=2).run(
                    api.Source.from_paths(paths),
                    binary=True,
                    retry=RetryPolicy(retries=1, backoff=0.01),
                    deadline=0.5,
                )
        assert "deadline" in str(excinfo.value)


# ----------------------------------------------------------------------
# Teardown escalation: join -> terminate -> kill
# ----------------------------------------------------------------------
class TestTeardownEscalation:
    def test_close_reclaims_sigterm_ignoring_workers(self, medline_corpus):
        engine = _medline_engine()
        plan = FaultPlan(seed=0, worker_hang=1.0, hang_seconds=3600.0)
        with faults.injected(plan):
            pool = parallel.WorkerPool(engine, 2, shutdown_timeout=0.5)
        try:
            # Both workers pick up a document and hang with SIGTERM ignored.
            for path in medline_corpus[:2]:
                pool.submit_document(path, ("path", path, None))
            deadline = time.monotonic() + 5.0
            processes = [w.process for w in pool._workers]
            while time.monotonic() < deadline and not all(
                p.is_alive() for p in processes
            ):
                time.sleep(0.05)
            started = time.monotonic()
        finally:
            pool.close()
        elapsed = time.monotonic() - started
        assert elapsed < 15.0, "teardown escalation took too long"
        assert all(not p.is_alive() for p in processes)

    def test_terminate_is_idempotent_after_close(self):
        pool = parallel.WorkerPool(_medline_engine(), 1)
        pool.close()
        pool.terminate()  # must not raise
        pool.close()


# ----------------------------------------------------------------------
# RetryPolicy semantics
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(retries=5, backoff=0.05, multiplier=2.0,
                             max_backoff=0.15)
        assert policy.delay(1) == pytest.approx(0.05)
        assert policy.delay(2) == pytest.approx(0.10)
        assert policy.delay(3) == pytest.approx(0.15)  # capped
        assert policy.delay(4) == pytest.approx(0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_zero_retries_fail_fast(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_bytes(b"<a>" + b"x" * 256 + b"</a>")
        plan = FaultPlan(seed=1, io_error=1.0)
        with faults.injected(plan):
            with pytest.raises(SourceError) as excinfo:
                list(file_chunks(str(path), 64,
                                 retry=RetryPolicy(retries=0)))
        assert excinfo.value.attempts == 1


# ----------------------------------------------------------------------
# SourceError wrapping: offsets, transience, recovery
# ----------------------------------------------------------------------
class TestSourceFaults:
    @pytest.fixture()
    def document(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_bytes(b"<a>" + b"x" * 500 + b"</a>")
        return str(path)

    def test_unrecoverable_read_raises_source_error_at_offset_zero(
        self, document
    ):
        plan = FaultPlan(seed=3, io_error=1.0)
        with faults.injected(plan):
            with pytest.raises(SourceError) as excinfo:
                list(file_chunks(document, 64))
        error = excinfo.value
        assert error.offset == 0
        assert error.transient is True
        assert isinstance(error.__cause__, OSError)
        assert "at byte 0" in str(error)

    def test_offset_tracks_bytes_already_delivered(self, document):
        chunks = file_chunks(document, 64)
        assert len(next(chunks)) == 64
        assert len(next(chunks)) == 64
        with faults.injected(FaultPlan(seed=3, io_error=1.0)):
            with pytest.raises(SourceError) as excinfo:
                next(chunks)
        assert excinfo.value.offset == 128

    def test_retry_recovers_bounded_injection(self, document):
        with open(document, "rb") as handle:
            expected = handle.read()
        plan = FaultPlan(seed=3, io_error=1.0, max_triggers=2)
        with faults.injected(plan):
            data = b"".join(
                file_chunks(document, 64,
                            retry=RetryPolicy(retries=3, backoff=0.0))
            )
        assert data == expected

    def test_retry_exhaustion_counts_attempts(self, document):
        plan = FaultPlan(seed=3, io_error=1.0)
        with faults.injected(plan):
            with pytest.raises(SourceError) as excinfo:
                list(file_chunks(document, 64,
                                 retry=RetryPolicy(retries=2, backoff=0.0)))
        assert excinfo.value.attempts == 3  # 1 try + 2 retries

    def test_socket_reset_wrapped_and_recovered(self):
        left, right = socket.socketpair()
        try:
            payload = b"<a>" + b"y" * 300 + b"</a>"
            left.sendall(payload)
            left.close()
            plan = FaultPlan(seed=11, socket_reset=1.0, max_triggers=1)
            with faults.injected(plan):
                data = b"".join(
                    socket_chunks(right, 64,
                                  retry=RetryPolicy(retries=2, backoff=0.0))
                )
            assert data == payload
        finally:
            right.close()

    def test_socket_reset_without_retry_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"<a></a>")
            left.close()
            with faults.injected(FaultPlan(seed=11, socket_reset=1.0)):
                with pytest.raises(SourceError) as excinfo:
                    list(socket_chunks(right, 64))
            assert excinfo.value.transient is True
            assert isinstance(excinfo.value.__cause__, ConnectionResetError)
        finally:
            right.close()

    def test_engine_run_survives_io_faults_with_source_retry(self, document):
        engine = _medline_engine(queries=("M2",))
        dtd_doc = generate_medline_document(citations=4, seed=9)
        medline_path = document + ".medline.xml"
        with open(medline_path, "w", encoding="utf-8") as handle:
            handle.write(dtd_doc)
        reference = engine.run(
            api.Source.from_file(medline_path), binary=True
        )
        plan = FaultPlan(seed=5, io_error=0.5, max_triggers=4)
        with faults.injected(plan):
            run = engine.run(
                api.Source.from_file(
                    medline_path, chunk_size=256,
                    retry=RetryPolicy(retries=6, backoff=0.0),
                ),
                binary=True,
            )
        assert run.outputs == reference.outputs


# ----------------------------------------------------------------------
# Deterministic corruption helpers
# ----------------------------------------------------------------------
class TestCorruptionHelpers:
    DATA = b"<record>the quick brown fox</record>"

    def test_flip_bits_deterministic_same_length(self):
        damaged = faults.flip_bits(self.DATA, seed=4, flips=3)
        assert damaged == faults.flip_bits(self.DATA, seed=4, flips=3)
        assert damaged != self.DATA
        assert len(damaged) == len(self.DATA)

    def test_truncate_strict_prefix(self):
        shorter = faults.truncate(self.DATA, seed=4)
        assert shorter == faults.truncate(self.DATA, seed=4)
        assert len(shorter) < len(self.DATA)
        assert self.DATA.startswith(shorter)

    def test_inject_garbage_grows_by_length(self):
        grown = faults.inject_garbage(self.DATA, seed=4, length=8)
        assert grown == faults.inject_garbage(self.DATA, seed=4, length=8)
        assert len(grown) == len(self.DATA) + 8

    def test_delay_chunks_passthrough(self):
        chunks = [b"a", b"b", b"c"]
        assert list(faults.delay_chunks(chunks, seconds=0.0)) == chunks


# ----------------------------------------------------------------------
# Accel degrade: warn once, record in statistics
# ----------------------------------------------------------------------
class TestAccelDegrade:
    @pytest.fixture()
    def no_accel(self, monkeypatch):
        from repro.core import multi, runtime

        monkeypatch.setattr(runtime, "load_accel", lambda: None)
        monkeypatch.setattr(multi, "load_accel", lambda: None)
        runtime.reset_accel_degrade_warning()
        yield
        runtime.reset_accel_degrade_warning()

    def test_explicit_accel_warns_once_and_flags_stats(self, no_accel):
        from repro import SmpPrefilter

        plan = SmpPrefilter.compile_for_query(
            medline_dtd(), MEDLINE_QUERIES["M2"], backend="native"
        )
        document = generate_medline_document(citations=2, seed=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = plan.session(delivery="accel")
            first.feed(document)
            first.finish()
            second = plan.session(delivery="accel")
            second.feed(document)
            second.finish()
        degrade_warnings = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "accel" in str(w.message)
        ]
        assert len(degrade_warnings) == 1
        assert first.stats.accel_degraded == 1
        assert second.stats.accel_degraded == 1
        assert "accel_degraded" not in first.stats.as_dict()

    def test_default_delivery_never_warns_or_flags(self, no_accel):
        from repro import SmpPrefilter

        plan = SmpPrefilter.compile_for_query(
            medline_dtd(), MEDLINE_QUERIES["M2"], backend="native"
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = plan.session()
            session.feed("<MedlineCitationSet></MedlineCitationSet>")
            session.finish()
        assert not [w for w in caught if "accel" in str(w.message)]
        assert session.stats.accel_degraded == 0

    def test_degrade_count_survives_merge(self):
        total = RunStatistics()
        degraded = RunStatistics(accel_degraded=1)
        total.merge(degraded)
        total.merge(degraded)
        assert total.accel_degraded == 2
