"""Parallel sharded execution and zero-copy buffer-reuse ingestion.

Covers the correctness contract of ``Engine(mode="parallel")``: output and
aggregated statistics byte-identical to sequential execution whatever the
completion order, error propagation naming the failing document, the
``jobs=1`` in-process fallback, corpus sources (paths, directory globs,
record-boundary splitting) and the ``BufferPool``/``readinto`` ingestion
path (pooled chunks == fresh chunks, mutation-after-feed safety).
"""

from __future__ import annotations

import os

import pytest

from repro import api, parallel
from repro.core.sources import BufferPool, file_chunks, split_documents
from repro.core.stats import RunStatistics
from repro.errors import QueryError, ReproError, RuntimeFilterError
from repro.workloads.medline import (
    MEDLINE_QUERIES,
    generate_medline_document,
    medline_dtd,
)
from repro.workloads.xmark import (
    XMARK_QUERIES,
    generate_xmark_document,
    xmark_dtd,
)

#: Statistics fields excluded from equality checks (timing is not
#: deterministic; everything else must match exactly).
_TIMING_FIELDS = ("run_seconds", "throughput_mb_per_second")


def _stats_key(stats: RunStatistics) -> dict:
    payload = stats.as_dict()
    for fieldname in _TIMING_FIELDS:
        payload.pop(fieldname, None)
    return payload


@pytest.fixture(scope="module")
def medline_corpus(tmp_path_factory):
    """Five small MEDLINE documents on disk, deliberately size-skewed."""
    directory = tmp_path_factory.mktemp("medline-corpus")
    paths = []
    # First document much larger than the rest: with jobs=2 the small
    # documents finish while the first is still running, so the merge has
    # to hold them back -- the latency-skew ordering case.
    for index, citations in enumerate((240, 8, 10, 6, 12)):
        document = generate_medline_document(
            citations=citations, seed=50 + index
        )
        path = directory / f"doc{index}.xml"
        path.write_text(document, encoding="utf-8")
        paths.append(str(path))
    return paths


@pytest.fixture(scope="module")
def xmark_corpus(tmp_path_factory):
    directory = tmp_path_factory.mktemp("xmark-corpus")
    paths = []
    for index, scale in enumerate((0.02, 0.005, 0.01)):
        path = directory / f"site{index}.xml"
        path.write_text(
            generate_xmark_document(scale=scale, seed=20 + index),
            encoding="utf-8",
        )
        paths.append(str(path))
    return paths


def _medline_engine(mode="auto", jobs=None, queries=("M2", "M5")):
    dtd = medline_dtd()
    return api.Engine(
        [
            api.Query.from_spec(dtd, MEDLINE_QUERIES[name], backend="native")
            for name in queries
        ],
        mode=mode,
        **({} if jobs is None else {"jobs": jobs}),
    )


# ----------------------------------------------------------------------
# Byte-identical parallel execution
# ----------------------------------------------------------------------
class TestParallelCorpus:
    def test_medline_byte_identical_and_summed_stats(self, medline_corpus):
        sequential = _medline_engine().run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        parallel_run = _medline_engine(mode="parallel", jobs=2).run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        assert parallel_run.jobs == 2
        assert sequential.jobs == 1
        assert parallel_run.outputs == sequential.outputs
        for seq_result, par_result in zip(sequential, parallel_run):
            assert _stats_key(seq_result.stats) == _stats_key(par_result.stats)
        # The aggregate equals the sum of independent per-document runs.
        for query_index, result in enumerate(parallel_run):
            summed = RunStatistics()
            per_doc_outputs = []
            for path in medline_corpus:
                run = _medline_engine().run(
                    api.Source.from_file(path), binary=True
                )
                summed.merge(run.results[query_index].stats)
                per_doc_outputs.append(run.results[query_index].output)
            assert result.output == b"".join(per_doc_outputs)
            assert _stats_key(result.stats) == _stats_key(summed)

    def test_xmark_byte_identical(self, xmark_corpus):
        dtd = xmark_dtd()
        queries = [
            api.Query.from_spec(dtd, XMARK_QUERIES[name], backend="native")
            for name in ("XM2", "XM3")
        ]
        sequential = api.Engine(queries).run(
            api.Source.from_paths(xmark_corpus), binary=True
        )
        sharded = api.Engine(queries, mode="parallel", jobs=3).run(
            api.Source.from_paths(xmark_corpus), binary=True
        )
        assert sharded.outputs == sequential.outputs
        for seq_result, par_result in zip(sequential, sharded):
            assert _stats_key(seq_result.stats) == _stats_key(par_result.stats)

    def test_document_order_is_corpus_order_under_skew(self, medline_corpus):
        """The huge first document must not be overtaken by the small ones."""
        run = _medline_engine(mode="parallel", jobs=2).run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        assert [document.name for document in run.documents] == medline_corpus
        assert [document.index for document in run.documents] == list(
            range(len(medline_corpus))
        )
        # Per-document slices concatenate (in corpus order) to the aggregate.
        for query_index, result in enumerate(run):
            assert b"".join(
                document.results[query_index].output
                for document in run.documents
            ) == result.output

    def test_single_query_search_mode_corpus(self, medline_corpus):
        sequential = _medline_engine(queries=("M2",)).run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        sharded = _medline_engine(
            mode="parallel", jobs=2, queries=("M2",)
        ).run(api.Source.from_paths(medline_corpus), binary=True)
        assert sharded.single.output == sequential.single.output
        assert _stats_key(sharded.single.stats) == _stats_key(
            sequential.single.stats
        )

    def test_text_mode_output(self, medline_corpus):
        binary_run = _medline_engine(mode="parallel", jobs=2).run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        text_run = _medline_engine(mode="parallel", jobs=2).run(
            api.Source.from_paths(medline_corpus)
        )
        assert [output.encode("utf-8") for output in text_run.outputs] == \
            binary_run.outputs

    def test_sinks_receive_corpus_order(self, medline_corpus):
        collected: list[bytes] = []
        run = _medline_engine(mode="parallel", jobs=2, queries=("M2",)).run(
            api.Source.from_paths(medline_corpus),
            sinks=[api.CallbackSink(collected.append, binary=True)],
        )
        reference = _medline_engine(queries=("M2",)).run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        assert b"".join(collected) == reference.single.output
        # Sink-routed queries do not accumulate output on the aggregate.
        assert run.single.output == b""


# ----------------------------------------------------------------------
# jobs=1 fallback and validation
# ----------------------------------------------------------------------
class TestParallelModeContract:
    def test_jobs1_runs_in_process(self, medline_corpus, monkeypatch):
        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("jobs=1 must not start worker processes")

        monkeypatch.setattr(parallel, "WorkerPool", forbidden)
        run = _medline_engine(mode="parallel", jobs=1).run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        assert run.jobs == 1
        assert len(run.documents) == len(medline_corpus)

    def test_parallel_mode_requires_corpus_source(self):
        engine = _medline_engine(mode="parallel", jobs=2)
        with pytest.raises(QueryError, match="corpus"):
            engine.run(api.Source.from_text("<x/>"))

    def test_parallel_mode_has_no_session(self):
        engine = _medline_engine(mode="parallel", jobs=2)
        with pytest.raises(QueryError, match="corpus"):
            engine.open()

    def test_jobs_requires_parallel_mode(self):
        with pytest.raises(QueryError, match="mode='parallel'"):
            _medline_engine(mode="auto", jobs=2)
        with pytest.raises(QueryError, match="jobs"):
            _medline_engine(mode="parallel", jobs=0)

    def test_corpus_rejects_measure_memory_and_live(self, medline_corpus):
        engine = _medline_engine(mode="parallel", jobs=1)
        with pytest.raises(QueryError, match="measure_memory"):
            engine.run(api.Source.from_paths(medline_corpus),
                       measure_memory=True)
        with pytest.raises(QueryError, match="live"):
            engine.run(api.Source.from_paths(medline_corpus), live=True)

    def test_corpus_source_is_not_a_chunk_stream(self, medline_corpus):
        source = api.Source.from_paths(medline_corpus)
        with pytest.raises(ReproError, match="corpus"):
            with source.open():
                pass
        with pytest.raises(ReproError, match="not a corpus"):
            api.Source.from_text("<x/>").documents()


# ----------------------------------------------------------------------
# Error propagation
# ----------------------------------------------------------------------
class TestErrorPropagation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_poisoned_document_names_the_path(self, medline_corpus, tmp_path,
                                              jobs):
        poisoned = tmp_path / "poisoned.xml"
        poisoned.write_text("<NotMedline></NotMedline>", encoding="utf-8")
        corpus = medline_corpus[:2] + [str(poisoned)] + medline_corpus[2:]
        engine = _medline_engine(mode="parallel", jobs=jobs)
        with pytest.raises(parallel.ParallelExecutionError) as excinfo:
            engine.run(api.Source.from_paths(corpus), binary=True)
        error = excinfo.value
        assert str(poisoned) in str(error)
        assert error.document == str(poisoned)
        assert isinstance(error.original, RuntimeFilterError)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_missing_document(self, medline_corpus, jobs):
        corpus = [medline_corpus[0], "/no/such/document.xml"]
        engine = _medline_engine(mode="parallel", jobs=jobs)
        with pytest.raises(parallel.ParallelExecutionError) as excinfo:
            engine.run(api.Source.from_paths(corpus), binary=True)
        assert "/no/such/document.xml" in str(excinfo.value)
        assert isinstance(excinfo.value.original, FileNotFoundError)


# ----------------------------------------------------------------------
# Corpus sources
# ----------------------------------------------------------------------
class TestCorpusSources:
    def test_from_dir_sorted_and_deterministic(self, medline_corpus):
        directory = os.path.dirname(medline_corpus[0])
        source = api.Source.from_dir(directory, pattern="*.xml")
        names = [name for name, _payload in source.documents()]
        assert names == sorted(medline_corpus)
        with pytest.raises(QueryError, match="no documents"):
            api.Source.from_dir(directory, pattern="*.nothing")

    def test_from_paths_needs_documents(self):
        with pytest.raises(QueryError, match="at least one"):
            api.Source.from_paths([])

    def test_split_documents_across_chunk_boundaries(self):
        records = [b"<d><x>%d</x></d>" % index for index in range(7)]
        stream = b"\n".join(records)
        # Every chunk size, including ones splitting the end tag itself.
        for chunk_size in (1, 2, 3, 5, 8, 64, len(stream)):
            chunks = [
                stream[start:start + chunk_size]
                for start in range(0, len(stream), chunk_size)
            ]
            assert list(split_documents(chunks, b"</d>")) == records

    def test_split_documents_trailing_garbage_surfaces(self):
        blobs = list(split_documents([b"<d/>X</d>junk"], b"</d>"))
        assert blobs == [b"<d/>X</d>", b"junk"]

    def test_from_records_matches_per_file_corpus(self, medline_corpus):
        concatenated = b"".join(
            open(path, "rb").read() for path in medline_corpus
        )
        reference = _medline_engine().run(
            api.Source.from_paths(medline_corpus), binary=True
        )
        run = _medline_engine(mode="parallel", jobs=2).run(
            api.Source.from_records(
                concatenated, end_tag=b"</MedlineCitationSet>",
                chunk_size=32 * 1024,
            ),
            binary=True,
        )
        assert run.outputs == reference.outputs
        assert [document.name for document in run.documents] == [
            f"record[{index}]" for index in range(len(medline_corpus))
        ]


# ----------------------------------------------------------------------
# The worker pool itself
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_remote_session_matches_in_process(self, medline_corpus):
        engine = _medline_engine()
        data = open(medline_corpus[1], "rb").read()
        reference = engine.run(api.Source.from_bytes(data), binary=True)
        with parallel.WorkerPool(engine, jobs=2) as pool:
            session = pool.open_session(binary=True)
            assert session.labels == engine.labels
            pieces = [[] for _ in engine.labels]
            for start in range(0, len(data), 8192):
                for index, piece in enumerate(
                    session.feed(data[start:start + 8192])
                ):
                    pieces[index].append(piece)
            for index, piece in enumerate(session.finish()):
                pieces[index].append(piece)
            outputs = [b"".join(parts) for parts in pieces]
            assert outputs == reference.outputs
            assert [
                _stats_key(stats) for stats in session.stats
            ] == [_stats_key(result.stats) for result in reference]

    def test_pool_rejects_use_after_close(self, medline_corpus):
        engine = _medline_engine()
        pool = parallel.WorkerPool(engine, jobs=1)
        pool.close()
        with pytest.raises(ReproError, match="closed"):
            pool.submit_document("x", ("path", medline_corpus[0], 65536))

    def test_engine_spec_round_trip(self):
        import pickle

        engine = _medline_engine(mode="parallel", jobs=2)
        spec = parallel.EngineSpec.from_engine(engine)
        rebuilt = pickle.loads(pickle.dumps(spec)).build()
        assert rebuilt.labels == engine.labels
        assert rebuilt.mode == "auto"


# ----------------------------------------------------------------------
# Buffer-reuse ingestion
# ----------------------------------------------------------------------
class TestBufferReuse:
    @pytest.mark.parametrize("chunk_size", [1024, 65536, 1 << 20])
    def test_pooled_file_chunks_byte_identical(self, medline_corpus,
                                               chunk_size):
        path = medline_corpus[0]
        fresh = b"".join(file_chunks(path, chunk_size))
        pool = BufferPool(chunk_size, capacity=2)
        pooled = b"".join(
            bytes(chunk) for chunk in file_chunks(path, chunk_size, pool=pool)
        )
        assert pooled == fresh
        assert pool.allocated == 1  # one recycled buffer serves the stream

    @pytest.mark.parametrize("chunk_size", [4096, 65536])
    def test_pooled_run_matches_fresh_run(self, medline_corpus, chunk_size):
        engine = _medline_engine(queries=("M2",))
        path = medline_corpus[0]
        fresh = engine.run(
            api.Source.from_file(path, chunk_size=chunk_size), binary=True
        )
        pooled = engine.run(
            api.Source.from_file(path, chunk_size=chunk_size, pool=True),
            binary=True,
        )
        assert pooled.single.output == fresh.single.output
        assert _stats_key(pooled.single.stats) == _stats_key(fresh.single.stats)

    def test_shared_scan_accepts_pooled_chunks(self, medline_corpus):
        engine = _medline_engine()  # two queries -> shared scan
        path = medline_corpus[2]
        fresh = engine.run(
            api.Source.from_file(path, chunk_size=8192), binary=True
        )
        pooled = engine.run(
            api.Source.from_file(path, chunk_size=8192, pool=True),
            binary=True,
        )
        assert pooled.outputs == fresh.outputs

    def test_mutation_after_feed_is_safe(self, medline_document_small,
                                         medline_dtd_fixture):
        """The runtime owns its carry window before the buffer is reused."""
        data = medline_document_small.encode("utf-8")
        engine = api.Engine(api.Query.from_spec(
            medline_dtd_fixture, MEDLINE_QUERIES["M2"], backend="native"
        ))
        reference = engine.run(api.Source.from_bytes(data), binary=True)
        session = engine.open(binary=True)
        pieces = []
        chunk_size = 4096
        for start in range(0, len(data), chunk_size):
            buffer = bytearray(data[start:start + chunk_size])
            pieces.append(session.feed(buffer)[0])
            buffer[:] = b"\xff" * len(buffer)  # clobber the recycled buffer
        pieces.append(session.finish()[0])
        assert b"".join(pieces) == reference.single.output

    def test_socket_chunks_recv_into_pool(self):
        class FakeConnection:
            def __init__(self, data: bytes, step: int) -> None:
                self._data = data
                self._step = step
                self._offset = 0

            def recv_into(self, buffer) -> int:
                piece = self._data[self._offset:self._offset + self._step]
                self._offset += len(piece)
                buffer[: len(piece)] = piece
                return len(piece)

        from repro.core.sources import socket_chunks

        payload = bytes(range(256)) * 33
        pool = BufferPool(64, capacity=2)
        received = b"".join(
            bytes(chunk)
            for chunk in socket_chunks(
                FakeConnection(payload, 64), 64, pool=pool
            )
        )
        assert received == payload
        assert pool.allocated == 1

    def test_cursor_seal_owns_borrowed_tail(self):
        from repro.core.stream import ChunkCursor

        cursor = ChunkCursor(binary=True)
        buffer = bytearray(b"abcdefgh")
        cursor.append(buffer)
        cursor.discard_to(4)
        cursor.seal()
        buffer[:] = b"\x00" * len(buffer)
        assert cursor.slice(4, 8) == b"efgh"
        assert isinstance(cursor.slice(4, 8), bytes)

    def test_buffer_pool_recycles(self):
        pool = BufferPool(1024, capacity=2)
        first = pool.acquire()
        pool.release(first)
        second = pool.acquire()
        assert second is first
        assert pool.allocated == 1
        assert pool.reused == 1
        # Foreign-sized buffers are never pooled.
        pool.release(bytearray(10))
        assert pool.acquire() is not None
        with pytest.raises(ValueError):
            BufferPool(0)


# ----------------------------------------------------------------------
# Statistics aggregation
# ----------------------------------------------------------------------
def test_run_statistics_merge_sums_counters():
    first = RunStatistics(input_size=10, output_size=4, tokens_matched=3,
                          run_seconds=0.5, peak_memory_bytes=100)
    second = RunStatistics(input_size=5, output_size=1, tokens_matched=2,
                           run_seconds=0.25, peak_memory_bytes=300)
    first.merge(second)
    assert first.input_size == 15
    assert first.output_size == 5
    assert first.tokens_matched == 5
    assert first.run_seconds == 0.75
    assert first.peak_memory_bytes == 300  # peaks take the max, not the sum


def test_corpus_chunk_size_reaches_document_reads(medline_corpus, monkeypatch):
    """from_paths(chunk_size=...) governs how workers read each document."""
    seen: list[int] = []
    original = api.Source.from_file.__func__

    def spying_from_file(cls, path, **kwargs):
        seen.append(kwargs.get("chunk_size"))
        return original(cls, path, **kwargs)

    monkeypatch.setattr(api.Source, "from_file", classmethod(spying_from_file))
    engine = _medline_engine(mode="parallel", jobs=1, queries=("M2",))
    engine.run(
        api.Source.from_paths(medline_corpus[:2], chunk_size=12_288),
        binary=True,
    )
    assert seen == [12_288, 12_288]


def test_pool_must_match_chunk_size():
    with pytest.raises(ValueError, match="chunk size"):
        list(file_chunks(__file__, 4096, pool=BufferPool(8192)))
