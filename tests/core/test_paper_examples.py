"""End-to-end checks against the worked examples of the paper.

These tests pin the reproduction to the paper's own numbers: the runtime
automaton and tables of Figure 3, the jump offsets of Example 1 and
Example 3, and the prefiltering results of Example 1 (Figure 2) and
Example 2.
"""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.core.tables import Action
from repro.projection import ReferenceProjector


class TestFigure3Tables:
    """P = {/*, /a/b#} over the DTD of Example 2 yields Figure 3."""

    @pytest.fixture()
    def prefilter(self, paper_dtd) -> SmpPrefilter:
        return SmpPrefilter.compile(paper_dtd, ["/a/b#"])

    def test_state_count_matches_figure3(self, prefilter):
        # Figure 3 shows seven states: q0, q1, q^1, q2, q^2, q3, q^3.
        assert prefilter.tables.state_count() == 7

    def test_frontier_vocabularies_match_table_v(self, prefilter):
        vocabularies = {
            frozenset(prefilter.tables.V(state.state_id))
            for state in prefilter.tables.automaton.states
        }
        assert frozenset({"<a"}) in vocabularies                       # q0
        assert frozenset({"</a", "<b", "<c"}) in vocabularies          # q1, q^2, q^3
        assert frozenset({"</b"}) in vocabularies                      # q2
        assert frozenset({"</c"}) in vocabularies                      # q3
        assert frozenset() in vocabularies                             # q^1 (final)

    def test_actions_match_table_t(self, prefilter):
        tables = prefilter.tables
        by_symbol = {}
        for state in tables.automaton.states:
            if state.symbol is not None:
                by_symbol.setdefault(state.symbol, set()).add(tables.T(state.state_id))
        assert by_symbol[("open", "a")] == {Action.COPY_TAG}
        assert by_symbol[("close", "a")] == {Action.COPY_TAG}
        assert by_symbol[("open", "b")] == {Action.COPY_ON}
        assert by_symbol[("close", "b")] == {Action.COPY_OFF}
        assert by_symbol[("open", "c")] == {Action.NOP}
        assert by_symbol[("close", "c")] == {Action.NOP}

    def test_jump_offsets_match_table_j(self, prefilter):
        tables = prefilter.tables
        for state in tables.automaton.states:
            expected = 4 if state.symbol == ("open", "c") else 0
            assert tables.J(state.state_id) == expected

    def test_states_summary_counts_cw_and_bm_states(self, prefilter):
        summary = prefilter.states_summary()
        assert summary == "7 (3 + 3)"

    def test_example12_prunes_the_c_subtree(self, paper_dtd):
        # P = {/*, //c#}: the b-occurrences inside c are pruned (step 1(b)),
        # so no runtime state scans for <b> inside c.
        prefilter = SmpPrefilter.compile(paper_dtd, ["//c#"])
        for state in prefilter.tables.automaton.states:
            if state.symbol == ("open", "c"):
                assert prefilter.tables.V(state.state_id) == ("</c",)


class TestExample2Prefiltering:
    def test_only_b_children_of_a_survive(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        document = "<a><b>one</b><c><b>two</b><b>three</b></c><b>four</b></a>"
        run = prefilter.session().run(document)
        assert run.output == "<a><b>one</b><b>four</b></a>"

    def test_bachelor_and_attribute_forms(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        document = '<a><b/><c><b>x</b></c><b kind="last">y</b></a>'
        run = prefilter.session().run(document)
        assert run.output == '<a><b/><b kind="last">y</b></a>'

    def test_empty_a_element(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        assert prefilter.session().run("<a></a>").output == "<a></a>"

    def test_agrees_with_reference_projector(self, paper_dtd):
        paths = ["/a/b#"]
        prefilter = SmpPrefilter.compile(paper_dtd, paths)
        reference = ReferenceProjector(paths, alphabet=paper_dtd.tag_names())
        document = "<a><c><b>i</b><b>j</b></c><b>k</b><c><b>l</b></c></a>"
        assert prefilter.session().run(document).output == \
            reference.project_text(document).output


class TestExample1Figure2:
    """Prefiltering //australia//description# over the Figure 2 document."""

    def test_projected_document_matches_the_paper(self, site_dtd, figure2_document):
        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        run = prefilter.session().run(figure2_document)
        assert run.output == (
            "<site><australia><description>Palm Zire 71</description>"
            "</australia></site>"
        )

    def test_only_a_fraction_of_characters_is_inspected(self, site_dtd, figure2_document):
        # The paper reports about 22% for this toy example; allow a margin
        # because our keyword set also includes the top-level site tags.
        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        run = prefilter.session().run(figure2_document)
        assert run.stats.char_comparison_ratio < 60.0
        assert run.stats.tokens_matched >= 5

    def test_initial_jump_after_site_reaches_25_characters(self, site_dtd):
        # Example 1: "<regions><africa/><asia/>" (25 characters) may be
        # skipped before searching for <australia>.
        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        tables = prefilter.tables
        jumps = {
            state.symbol: tables.J(state.state_id)
            for state in tables.automaton.states
            if state.symbol is not None
        }
        assert jumps[("open", "site")] == 25

    def test_reference_projector_agrees(self, site_dtd, figure2_document):
        paths = ["//australia//description#"]
        prefilter = SmpPrefilter.compile(site_dtd, paths)
        reference = ReferenceProjector(paths, alphabet=site_dtd.tag_names())
        assert prefilter.session().run(figure2_document).output == \
            reference.project_text(figure2_document).output
