"""Byte-identity of the token-event delivery modes.

The acceptance property of the below-the-interpreter hot path: for every
delivery mode (``pertoken`` generator reference, ``batched`` flat loop,
``accel`` C kernel), every backend, and any chunking -- including
adversarial chunk sizes that split multi-byte UTF-8 sequences, keywords and
tags -- the projected output and **all** statistics are identical.  The
same holds for the multi-query shared scan (pure loop vs ``scan_events``
kernel) and for the flat-array ``collect_chunk_ids`` matcher contract
against the tuple-based ``collect_chunk`` reference.
"""

from __future__ import annotations

import random

import pytest

from repro import SmpPrefilter
from repro.accel import accel_available
from repro.core.multi import MultiQueryEngine
from repro.core.runtime import DELIVERIES, resolve_delivery
from repro.matching.factory import available_backends, make_matcher
from repro.projection.extraction import QuerySpec
from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd
from repro.workloads.medline.generator import generate_medline_document_of_size
from repro.workloads.xmark import XMARK_QUERIES, xmark_dtd
from repro.workloads.xmark.generator import generate_xmark_document_of_size

BACKENDS = tuple(available_backends())

#: Chunkings stressing different suspension behaviour: sequence-splitting
#: tiny chunks, odd mid-keyword sizes, and the large streaming sizes.
CHUNKINGS = ([1, 2, 3], [17, 63], [4096], [65536])

accel_only = pytest.mark.skipif(
    not accel_available(), reason="repro._accel extension not built"
)


def stats_tuple(stats):
    return (
        stats.input_size,
        stats.output_size,
        stats.char_comparisons,
        stats.local_scan_chars,
        stats.shifts,
        stats.shift_total,
        stats.initial_jumps,
        stats.initial_jump_chars,
        stats.tokens_matched,
        stats.tokens_copied,
        stats.regions_copied,
    )


def feed_all(session, data: bytes, sizes, rng) -> bytes:
    out = []
    position = 0
    while position < len(data):
        size = rng.choice(sizes)
        out.append(session.feed(data[position:position + size]))
        position += size
    out.append(session.finish())
    return b"".join(out)


@pytest.fixture(scope="module")
def medline_corpus():
    dtd = medline_dtd()
    # Non-ASCII text content makes chunk splits fall inside UTF-8 sequences.
    document = generate_medline_document_of_size(20_000)
    document = document.replace("the", "thé").replace("of", "øf")
    return dtd, document.encode("utf-8")


@pytest.fixture(scope="module")
def xmark_corpus():
    dtd = xmark_dtd()
    return dtd, generate_xmark_document_of_size(20_000).encode("utf-8")


class TestSingleQueryDeliveries:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batched_matches_pertoken_all_backends(self, medline_corpus, backend):
        dtd, data = medline_corpus
        plan = SmpPrefilter.compile_for_query(
            dtd, MEDLINE_QUERIES["M2"], backend=backend
        )
        for sizes in CHUNKINGS:
            reference = plan.session(binary=True, delivery="pertoken")
            expected = feed_all(reference, data, sizes, random.Random(3))
            batched = plan.session(binary=True, delivery="batched")
            assert feed_all(batched, data, sizes, random.Random(3)) == expected
            assert stats_tuple(batched.stats) == stats_tuple(reference.stats)

    @accel_only
    @pytest.mark.parametrize("chunking", CHUNKINGS, ids=str)
    def test_accel_matches_pertoken(self, medline_corpus, chunking):
        dtd, data = medline_corpus
        plan = SmpPrefilter.compile_for_query(
            dtd, MEDLINE_QUERIES["M2"], backend="native"
        )
        reference = plan.session(binary=True, delivery="pertoken")
        expected = feed_all(reference, data, chunking, random.Random(5))
        accel = plan.session(binary=True, delivery="accel")
        assert accel.delivery == "accel"
        assert feed_all(accel, data, chunking, random.Random(5)) == expected
        assert stats_tuple(accel.stats) == stats_tuple(reference.stats)

    @accel_only
    def test_accel_across_queries_and_workloads(self, medline_corpus, xmark_corpus):
        for (dtd, data), queries in (
            (medline_corpus, MEDLINE_QUERIES),
            (xmark_corpus, XMARK_QUERIES),
        ):
            for spec in queries.values():
                plan = SmpPrefilter.compile_for_query(dtd, spec, backend="native")
                reference = plan.session(binary=True, delivery="pertoken")
                expected = feed_all(reference, data, [17, 63], random.Random(7))
                accel = plan.session(binary=True, delivery="accel")
                assert feed_all(accel, data, [17, 63], random.Random(7)) == expected
                assert stats_tuple(accel.stats) == stats_tuple(reference.stats)

    def test_non_native_backend_degrades_accel_to_batched(self, medline_corpus):
        dtd, data = medline_corpus
        plan = SmpPrefilter.compile_for_query(
            dtd, MEDLINE_QUERIES["M1"], backend="instrumented"
        )
        session = plan.session(binary=True, delivery="accel")
        # The C kernel replays native-backend statistics only; other
        # backends run the pure batched loop (same output, same stats).
        assert session.delivery in ("batched", "accel")
        if accel_available():
            assert session.delivery == "batched"

    def test_resolve_delivery_contract(self):
        assert resolve_delivery("pertoken") == "pertoken"
        assert resolve_delivery("batched") == "batched"
        assert resolve_delivery(None) in ("accel", "batched")
        assert resolve_delivery("accel") in ("accel", "batched")
        with pytest.raises(ValueError):
            resolve_delivery("bogus")
        assert set(DELIVERIES) == {"batched", "accel", "pertoken"}

    def test_repro_delivery_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DELIVERY", "pertoken")
        assert resolve_delivery(None) == "pertoken"
        monkeypatch.setenv("REPRO_DELIVERY", "batched")
        assert resolve_delivery(None) == "batched"
        monkeypatch.setenv("REPRO_DELIVERY", "accel")
        assert resolve_delivery(None) in ("accel", "batched")
        # An explicit delivery argument always wins over the environment.
        monkeypatch.setenv("REPRO_DELIVERY", "pertoken")
        assert resolve_delivery("batched") == "batched"
        # The empty string means "unset", matching REPRO_PURE's convention.
        monkeypatch.setenv("REPRO_DELIVERY", "")
        assert resolve_delivery(None) in ("accel", "batched")
        monkeypatch.setenv("REPRO_DELIVERY", "bogus")
        with pytest.raises(ValueError, match="REPRO_DELIVERY"):
            resolve_delivery(None)

    def test_repro_delivery_reaches_sessions(self, medline_corpus, monkeypatch):
        dtd, data = medline_corpus
        plan = SmpPrefilter.compile_for_query(
            dtd, MEDLINE_QUERIES["M2"], backend="native"
        )
        monkeypatch.setenv("REPRO_DELIVERY", "pertoken")
        assert plan.session(binary=True).delivery == "pertoken"
        engine = MultiQueryEngine(dtd, [MEDLINE_QUERIES["M2"]], backend="native")
        assert engine.session(binary=True).delivery == "pertoken"


class TestMultiQueryDeliveries:
    def multi_outputs(self, engine, data, sizes, rng, delivery):
        session = engine.session(binary=True, delivery=delivery)
        outputs = [[] for _ in engine.prefilters]
        position = 0
        while position < len(data):
            size = rng.choice(sizes)
            for index, piece in enumerate(session.feed(data[position:position + size])):
                outputs[index].append(piece)
            position += size
        for index, piece in enumerate(session.finish()):
            outputs[index].append(piece)
        return (
            [b"".join(chunks) for chunks in outputs],
            [stats_tuple(stats) for stats in session.stats],
            stats_tuple(session.scan_stats),
            session.delivery,
        )

    @accel_only
    @pytest.mark.parametrize("chunking", CHUNKINGS, ids=str)
    def test_accel_union_scan_matches_pure(self, medline_corpus, chunking):
        dtd, data = medline_corpus
        engine = MultiQueryEngine(
            dtd, list(MEDLINE_QUERIES.values()), backend="native"
        )
        reference = self.multi_outputs(
            engine, data, chunking, random.Random(9), "batched"
        )
        accelerated = self.multi_outputs(
            engine, data, chunking, random.Random(9), "accel"
        )
        assert accelerated[3] == "accel" and reference[3] == "batched"
        assert accelerated[:3] == reference[:3]

    @accel_only
    @pytest.mark.parametrize("delivery", ("batched", "accel"))
    @pytest.mark.parametrize("chunking", CHUNKINGS, ids=str)
    def test_multi_deliveries_match_pertoken(self, medline_corpus, chunking, delivery):
        """Every shared-scan tier reproduces the per-token reference exactly:
        outputs, all eleven per-stream statistics, and the union scan stats."""
        dtd, data = medline_corpus
        engine = MultiQueryEngine(
            dtd, list(MEDLINE_QUERIES.values()), backend="native"
        )
        reference = self.multi_outputs(
            engine, data, chunking, random.Random(11), "pertoken"
        )
        subject = self.multi_outputs(
            engine, data, chunking, random.Random(11), delivery
        )
        assert reference[3] == "pertoken" and subject[3] == delivery
        assert subject[:3] == reference[:3]

    @accel_only
    def test_accel_union_scan_with_attach_detach(self, medline_corpus):
        dtd, data = medline_corpus
        specs = list(MEDLINE_QUERIES.values())
        third = len(data) // 3

        def run(delivery):
            engine = MultiQueryEngine(dtd, specs[:2], backend="native")
            session = engine.session(binary=True, delivery=delivery)
            session.feed(data[:third])
            # Attaching mid-document extends the union vocabulary, which
            # rebuilds the dispatcher (and recompiles the C keyword set).
            session.attach(
                SmpPrefilter.compile_for_query(dtd, specs[2], backend="native")
            )
            session.feed(data[third:2 * third])
            session.detach(0)
            session.feed(data[2 * third:])
            outputs = session.finish()
            return (
                outputs,
                [stats_tuple(stats) for stats in session.stats],
                stats_tuple(session.scan_stats),
            )

        assert run("accel") == run("batched") == run("pertoken")

    @accel_only
    def test_generated_64_query_stress(self, medline_corpus):
        """64 generated queries through one native step program.

        Every declared MEDLINE element yields two descendant-path variants;
        the first 64 that compile run as one shared session, stressing the
        widest step tables and span batches the suite produces (the span
        buffer can overflow mid-token-event, exercising the SPANS_FULL
        resume).  Output and statistics must match the per-token loop.
        """
        dtd, data = medline_corpus
        specs = []
        for element in sorted(dtd.elements):
            for variant, path in (
                ("a", f"/MedlineCitationSet//{element}"),
                ("b", f"//{element}"),
            ):
                spec = QuerySpec(
                    name=f"G-{variant}-{element}",
                    query=path,
                    projection_paths=(path + "#", "/*"),
                )
                try:
                    SmpPrefilter.compile_for_query(dtd, spec, backend="native")
                except Exception:
                    continue  # unprojectable declarations are not the point
                specs.append(spec)
                if len(specs) == 64:
                    break
            if len(specs) == 64:
                break
        assert len(specs) == 64, "the MEDLINE DTD no longer yields 64 queries"
        engine = MultiQueryEngine(dtd, specs, backend="native")
        for chunking in ([17, 63], [65536]):
            reference = self.multi_outputs(
                engine, data, chunking, random.Random(13), "pertoken"
            )
            for delivery in ("batched", "accel"):
                subject = self.multi_outputs(
                    engine, data, chunking, random.Random(13), delivery
                )
                assert subject[3] == delivery
                assert subject[:3] == reference[:3], (delivery, chunking)

    @accel_only
    def test_native_attach_detach_mid_span_batch(self, medline_corpus):
        """Attach/detach at awkward offsets while the native stepper runs.

        Unlike the three-phase test above, membership here changes at
        *every* feed boundary with tiny chunks, so export/import of the
        per-stream state blocks happens while jumps are pending and copy
        regions are open.
        """
        dtd, data = medline_corpus
        specs = list(MEDLINE_QUERIES.values())

        def run(delivery):
            engine = MultiQueryEngine(dtd, specs[:1], backend="native")
            session = engine.session(binary=True, delivery=delivery)
            rng = random.Random(17)
            attached = [0]
            position = 0
            step = max(1, len(data) // 23)
            while position < len(data):
                session.feed(data[position:position + step])
                position += step
                roll = rng.random()
                if roll < 0.3 and len(attached) < len(specs):
                    index = session.attach(SmpPrefilter.compile_for_query(
                        dtd, specs[len(attached)], backend="native"
                    ))
                    attached.append(index)
                elif roll < 0.4 and len(attached) > 1:
                    session.detach(attached.pop(rng.randrange(len(attached))))
            outputs = session.finish()
            return (
                outputs,
                [stats_tuple(stats) for stats in session.stats],
                stats_tuple(session.scan_stats),
            )

        assert run("accel") == run("batched") == run("pertoken")


class TestCollectChunkIds:
    KEYWORD_SETS = (
        ("<MedlineCitation",),
        ("<Abstract", "<AbstractText", "</Abstract"),
        ("<a", "<ab", "<abc", "</a"),
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("keywords", KEYWORD_SETS, ids=lambda kws: str(len(kws)))
    def test_ids_stream_matches_tuple_stream(self, backend, keywords):
        byte_keywords = tuple(keyword.encode() for keyword in keywords)
        text = (
            b'<ab x="1"><abc><a></a><Abstract><AbstractText a="v>w"/>'
            b"</Abstract><MedlineCitation>t</MedlineCitation>" * 40
        )
        for chunk in (256, 4096):
            reference = make_matcher(byte_keywords, backend=backend)
            subject = make_matcher(byte_keywords, backend=backend)
            position = 0
            out = None
            while position < len(text):
                end = min(len(text), position + chunk)
                at_eof = end == len(text)
                window = text[:end]
                hits, resume = reference.collect_chunk(
                    window, 0, position, end, at_eof=at_eof
                )
                events, count, id_resume = subject.collect_chunk_ids(
                    window, 0, position, end, at_eof=at_eof, out=out
                )
                out = events  # exercise the reuse contract
                assert id_resume == resume
                decoded = [
                    (events[2 * i], byte_keywords[events[2 * i + 1]])
                    for i in range(count)
                ]
                assert decoded == hits
                position = resume
            assert (
                subject.stats.snapshot() if hasattr(subject.stats, "snapshot")
                else vars(subject.stats)
            ) == (
                reference.stats.snapshot() if hasattr(reference.stats, "snapshot")
                else vars(reference.stats)
            )
