"""Tests for the ``python -m repro`` command line interface."""

from __future__ import annotations

import json

import pytest

from repro import SmpPrefilter
from repro.cli import main


SITE_DTD_TEXT = """<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT item (location, name, payment, description, shipping, incategory+)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category ID #REQUIRED>
]>"""


@pytest.fixture()
def dtd_file(tmp_path):
    path = tmp_path / "site.dtd"
    path.write_text(SITE_DTD_TEXT, encoding="utf-8")
    return str(path)


@pytest.fixture()
def document_file(tmp_path, figure2_document):
    path = tmp_path / "site.xml"
    path.write_text(figure2_document, encoding="utf-8")
    return str(path)


def expected_output(site_dtd, figure2_document):
    prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
    return prefilter.session().run(figure2_document).output


class TestCli:
    def test_filters_file_to_file(self, tmp_path, dtd_file, document_file,
                                  site_dtd, figure2_document):
        out_path = tmp_path / "out.xml"
        code = main([
            dtd_file, "//australia//description#",
            "--input", document_file,
            "--output", str(out_path),
            "--chunk-size", "16",
        ])
        assert code == 0
        assert out_path.read_text(encoding="utf-8") == expected_output(
            site_dtd, figure2_document
        )

    def test_stdin_to_stdout(self, monkeypatch, capsys, dtd_file, site_dtd,
                             figure2_document):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(figure2_document))
        code = main([dtd_file, "//australia//description#", "--chunk-size", "5"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == expected_output(site_dtd, figure2_document)

    def test_stats_json_on_stderr(self, capsys, dtd_file, document_file):
        code = main([
            dtd_file, "//australia//description#",
            "--input", document_file,
            "--output", "/dev/null",
            "--backend", "native",
            "--stats-json", "--measure-memory",
        ])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.err.strip().splitlines()[-1])
        assert payload["backend"] == "native"
        assert payload["input_size"] > 0
        assert payload["output_size"] > 0
        assert payload["peak_memory_bytes"] > 0

    def test_nonconforming_document_exits_1(self, tmp_path, capsys, dtd_file):
        bad = tmp_path / "bad.xml"
        bad.write_text("<site><regions>", encoding="utf-8")
        code = main([
            dtd_file, "//australia//description#",
            "--input", str(bad), "--output", "/dev/null",
        ])
        assert code == 1
        assert "repro:" in capsys.readouterr().err

    def test_missing_dtd_exits_2(self, tmp_path, capsys, document_file):
        code = main([
            str(tmp_path / "absent.dtd"), "/site#",
            "--input", document_file, "--output", "/dev/null",
        ])
        assert code == 2


class TestMultiQueryCli:
    @pytest.fixture()
    def medline_file(self, tmp_path):
        from repro.workloads import load_dataset

        path = tmp_path / "medline.xml"
        path.write_text(load_dataset("medline", size_bytes=60_000),
                        encoding="utf-8")
        return str(path)

    def test_workload_names_imply_the_dtd(self, capsys, medline_file):
        code = main([
            "--query", "M2", "--query", "M5", medline_file,
            "--backend", "native", "--stats-json",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "==> M2 <==" in captured.out
        assert "==> M5 <==" in captured.out
        payload = json.loads(captured.err.strip().splitlines()[-1])
        assert set(payload["queries"]) == {"M2", "M5"}
        assert payload["scan"]["input_size"] > 0

    def test_sections_match_independent_runs(self, capsys, medline_file):
        from repro.core.prefilter import SmpPrefilter
        from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd

        code = main(["--query", "M2", "--input", medline_file,
                     "--backend", "native"])
        captured = capsys.readouterr()
        assert code == 0
        body = captured.out.split("==> M2 <==\n", 1)[1].rstrip("\n")
        plan = SmpPrefilter.cached_for_query(
            medline_dtd(), MEDLINE_QUERIES["M2"], backend="native"
        )
        with open(medline_file, encoding="utf-8") as handle:
            expected = plan.session().run(handle.read()).output
        assert body == expected

    def test_output_base_writes_one_file_per_query(self, tmp_path, medline_file):
        base = tmp_path / "projected"
        code = main([
            "--query", "M2", "--query", "M4",
            "--input", medline_file, "--output", str(base),
            "--backend", "native",
        ])
        assert code == 0
        assert (tmp_path / "projected.M2.xml").exists()
        assert (tmp_path / "projected.M4.xml").exists()

    def test_raw_xpath_requires_dtd(self, capsys, medline_file):
        code = main(["--query", "/a/b", medline_file])
        assert code == 1
        assert "need --dtd" in capsys.readouterr().err

    def test_output_files_are_binary_and_byte_identical(
        self, tmp_path, medline_file
    ):
        from repro.core.prefilter import SmpPrefilter
        from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd

        base = tmp_path / "projected"
        code = main([
            "--query", "M2",
            "--input", medline_file, "--output", str(base),
            "--backend", "native",
        ])
        assert code == 0
        plan = SmpPrefilter.cached_for_query(
            medline_dtd(), MEDLINE_QUERIES["M2"], backend="native"
        )
        with open(medline_file, "rb") as handle:
            expected = plan.session(binary=True).run(handle.read()).output
        assert (tmp_path / "projected.M2.xml").read_bytes() == expected

    def test_output_files_closed_on_error_path(
        self, tmp_path, capsys, monkeypatch
    ):
        """Per-query sinks must be closed even when filtering fails."""
        import builtins

        bad = tmp_path / "bad.xml"
        bad.write_text("<MedlineCitationSet><MedlineCitation>",
                       encoding="utf-8")
        opened = []
        real_open = builtins.open

        def tracking_open(*args, **kwargs):
            handle = real_open(*args, **kwargs)
            opened.append(handle)
            return handle

        monkeypatch.setattr(builtins, "open", tracking_open)
        code = main([
            "--query", "M2", "--query", "M5",
            "--input", str(bad), "--output", str(tmp_path / "out"),
            "--backend", "native",
        ])
        assert code == 1
        assert "repro:" in capsys.readouterr().err
        sinks = [h for h in opened if getattr(h, "name", "").endswith(".xml")
                 and "out." in getattr(h, "name", "")]
        assert sinks, "expected per-query output files to have been opened"
        assert all(handle.closed for handle in opened)


class TestTextOnlyStdout:
    def test_multi_query_sections_decode_split_utf8(self, tmp_path,
                                                    monkeypatch):
        """Buffered fragments may end mid-UTF-8-sequence; a text-only
        stdout (no ``.buffer``) must still decode the sections cleanly."""
        import io

        dtd_path = tmp_path / "utf8.dtd"
        dtd_path.write_text(
            "<!DOCTYPE site [<!ELEMENT site (item+)>"
            "<!ELEMENT item (description)>"
            "<!ELEMENT description (#PCDATA)>]>",
            encoding="utf-8",
        )
        document = tmp_path / "utf8.xml"
        document.write_text(
            "<site>" + "<item><description>café ☃ 日本語 \U0001f71a"
            "</description></item>" * 4 + "</site>",
            encoding="utf-8",
        )
        fake_stdout = io.StringIO()  # deliberately has no .buffer
        monkeypatch.setattr("sys.stdout", fake_stdout)
        code = main([
            "--dtd", str(dtd_path), "--query", "/site/item/description",
            "--input", str(document), "--chunk-size", "1",
            "--backend", "native",
        ])
        assert code == 0
        assert "café ☃ 日本語 \U0001f71a" in fake_stdout.getvalue()


class TestMmapCli:
    def test_mmap_requires_input(self, capsys, dtd_file):
        with pytest.raises(SystemExit):
            main([dtd_file, "/site#", "--mmap"])

    def test_mmap_empty_file_exits_cleanly(self, tmp_path, capsys, dtd_file):
        empty = tmp_path / "empty.xml"
        empty.write_bytes(b"")
        code = main([dtd_file, "/site#", "--input", str(empty), "--mmap"])
        assert code == 1
        assert "repro:" in capsys.readouterr().err

    def test_mmap_matches_chunked_run(self, tmp_path, dtd_file, document_file,
                                      site_dtd, figure2_document):
        chunked_path = tmp_path / "chunked.xml"
        mapped_path = tmp_path / "mapped.xml"
        assert main([
            dtd_file, "//australia//description#",
            "--input", document_file, "--output", str(chunked_path),
            "--chunk-size", "16",
        ]) == 0
        assert main([
            dtd_file, "//australia//description#",
            "--input", document_file, "--output", str(mapped_path),
            "--mmap",
        ]) == 0
        assert mapped_path.read_bytes() == chunked_path.read_bytes()
        assert mapped_path.read_text(encoding="utf-8") == expected_output(
            site_dtd, figure2_document
        )

    def test_mmap_multi_query(self, tmp_path, capsys):
        from repro.workloads import load_dataset

        path = tmp_path / "medline.xml"
        path.write_text(load_dataset("medline", size_bytes=60_000),
                        encoding="utf-8")
        code = main(["--query", "M2", "--input", str(path), "--mmap",
                     "--backend", "native"])
        plain = capsys.readouterr()
        assert code == 0
        code = main(["--query", "M2", "--input", str(path),
                     "--backend", "native"])
        chunked = capsys.readouterr()
        assert code == 0
        assert plain.out == chunked.out


class TestCorpusCli:
    """--jobs and multi-file corpus runs."""

    @pytest.fixture()
    def corpus_files(self, tmp_path):
        from repro.workloads.medline import generate_medline_document

        paths = []
        for index, citations in enumerate((30, 6, 12)):
            path = tmp_path / f"doc{index}.xml"
            path.write_text(
                generate_medline_document(citations=citations,
                                          seed=70 + index),
                encoding="utf-8",
            )
            paths.append(str(path))
        return paths

    def test_sectioned_output_deterministic_across_jobs(self, capsys,
                                                        corpus_files):
        argv = ["--query", "M2", "--query", "M5", "--backend", "native"]
        assert main(argv + ["--jobs", "1"] + corpus_files) == 0
        sequential = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"] + corpus_files) == 0
        sharded = capsys.readouterr().out
        assert sharded == sequential
        for path in corpus_files:
            for label in ("M2", "M5"):
                assert f"==> {path} :: {label} <==" in sharded

    def test_sections_match_independent_single_runs(self, capsys,
                                                    corpus_files):
        from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd

        assert main([
            "--query", "M2", "--backend", "native", "--jobs", "2",
        ] + corpus_files) == 0
        out = capsys.readouterr().out
        plan = SmpPrefilter.cached_for_query(
            medline_dtd(), MEDLINE_QUERIES["M2"], backend="native"
        )
        for path in corpus_files:
            document = open(path, "r", encoding="utf-8").read()
            expected = plan.session().run([document]).output
            assert expected in out

    def test_output_base_writes_per_input_per_query_files(self, tmp_path,
                                                          corpus_files):
        base = str(tmp_path / "proj")
        assert main([
            "--query", "M2", "--query", "M5", "--backend", "native",
            "--jobs", "2", "--output", base,
        ] + corpus_files) == 0
        import os as _os

        for path in corpus_files:
            stem = _os.path.basename(path)
            for label in ("M2", "M5"):
                assert _os.path.exists(f"{base}.{stem}.{label}.xml")

    def test_stats_json_reports_corpus(self, capsys, corpus_files):
        assert main([
            "--query", "M2", "--backend", "native", "--jobs", "2",
            "--stats-json",
        ] + corpus_files) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.err.strip().splitlines()[-1])
        assert payload["jobs"] == 2.0
        assert payload["documents"] == corpus_files
        assert "M2" in payload["queries"]

    def test_jobs_requires_query_mode(self, capsys, tmp_path):
        dtd = tmp_path / "x.dtd"
        dtd.write_text(SITE_DTD_TEXT, encoding="utf-8")
        with pytest.raises(SystemExit):
            main([str(dtd), "//australia//description#", "--jobs", "2"])
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_rejects_stdin(self, capsys):
        with pytest.raises(SystemExit):
            main(["--query", "M2", "--jobs", "2"])
        assert "stdin" in capsys.readouterr().err

    def test_failing_document_reports_clean_error(self, capsys, tmp_path,
                                                  corpus_files):
        poisoned = tmp_path / "poisoned.xml"
        poisoned.write_text("<wrong/>", encoding="utf-8")
        code = main([
            "--query", "M2", "--backend", "native", "--jobs", "2",
        ] + corpus_files + [str(poisoned)])
        assert code == 1
        err = capsys.readouterr().err
        assert "repro:" in err
        assert str(poisoned) in err

    def test_single_input_output_shape_is_jobs_invariant(self, capsys,
                                                         corpus_files):
        """--jobs must never change the output framing of one input file."""
        argv = ["--query", "M2", "--backend", "native", corpus_files[0]]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == plain
        assert "==> M2 <==" in plain  # single-document framing, no path prefix


class TestFaultToleranceCli:
    @pytest.fixture()
    def corpus(self, tmp_path):
        from repro.workloads.medline import generate_medline_document

        paths = []
        for index in range(3):
            path = tmp_path / f"doc{index}.xml"
            path.write_text(
                generate_medline_document(citations=4 + index,
                                          seed=30 + index),
                encoding="utf-8",
            )
            paths.append(str(path))
        return paths

    @pytest.fixture()
    def poisoned(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_bytes(b"<MedlineCitationSet><broken")
        return str(path)

    def test_collect_reports_and_exits_3(self, capsys, corpus, poisoned):
        healthy_code = main(["--query", "M2", *corpus])
        assert healthy_code == 0
        healthy = capsys.readouterr().out

        code = main([
            "--query", "M2", "--on-error", "collect",
            corpus[0], poisoned, corpus[1], corpus[2],
        ])
        captured = capsys.readouterr()
        assert code == 3
        assert "bad.xml" in captured.err
        assert "failed" in captured.err
        assert captured.out == healthy  # healthy output unchanged

    def test_skip_drops_poisoned_and_exits_0(self, capsys, corpus, poisoned):
        main(["--query", "M2", *corpus])
        healthy = capsys.readouterr().out
        code = main([
            "--query", "M2", "--on-error", "skip",
            corpus[0], poisoned, corpus[1], corpus[2],
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == healthy

    def test_default_raise_exits_1(self, capsys, corpus, poisoned):
        code = main(["--query", "M2", corpus[0], poisoned])
        assert code == 1
        assert "bad.xml" in capsys.readouterr().err

    def test_retries_accepted_for_corpus_and_single_doc(
        self, capsys, corpus
    ):
        assert main([
            "--query", "M2", "--retries", "2", "--retry-backoff", "0.01",
            *corpus,
        ]) == 0
        capsys.readouterr()
        assert main([
            "--query", "M2", "--retries", "2", "--input", corpus[0],
        ]) == 0
        capsys.readouterr()

    def test_on_error_rejected_outside_corpus_mode(self, capsys, corpus):
        with pytest.raises(SystemExit):
            main(["--query", "M2", "--on-error", "skip", corpus[0]])
        assert "corpus" in capsys.readouterr().err

    def test_negative_retries_rejected(self, capsys, corpus):
        with pytest.raises(SystemExit):
            main(["--query", "M2", "--retries", "-1", *corpus])
