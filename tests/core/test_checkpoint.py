"""Durable checkpoint/resume: format hardening and kill-and-resume chaos.

Three layers of proof, matching the recovery subsystem's guarantees:

- **Format**: a checkpoint torn at any byte boundary or bit-flipped on
  disk raises :class:`~repro.errors.CheckpointError` — whole-or-nothing,
  never a half-restored session.  A checkpoint captured under a different
  query set or output mode is refused the same way.
- **Session resume**: for every delivery tier, a session checkpointed at
  an arbitrary feed boundary and restored into a fresh engine produces
  output and statistics byte-identical to an uninterrupted run — single
  query, shared multi-query scan, and mid-document attach all covered.
- **Chaos**: a SIGKILLed corpus run resumes from its journal with
  exactly-once, byte-identical merged output, and the fuzz harness's
  kill-and-resume matrix (child SIGKILLs itself at a seeded offset)
  passes for every workload × delivery × adversarial chunking cell.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import pytest

from repro import api
from repro.checkpoint import (
    Checkpoint,
    CorpusJournal,
    read_checkpoint,
    resume_chunks,
    write_checkpoint,
)
from repro.core.prefilter import SmpPrefilter
from repro.core.runtime import DELIVERIES
from repro.errors import CheckpointError
from repro.faults import corrupt_file, truncate_file
from repro.workloads.fuzz import STATS_FIELDS, adversarial_chunks
from repro.workloads.medline import MEDLINE_QUERIES

DELIVERY_TIERS = [
    pytest.param(name) for name in DELIVERIES
]


def _stats_tuple(stats):
    return tuple(getattr(stats, name) for name in STATS_FIELDS)


def _medline_query(name: str, dtd, label: str | None = None) -> api.Query:
    return api.Query.from_spec(
        dtd, MEDLINE_QUERIES[name], backend="native", label=label,
    )


@pytest.fixture()
def medline_engine(medline_dtd_fixture):
    return api.Engine(_medline_query("M2", medline_dtd_fixture))


# ----------------------------------------------------------------------
# Format hardening: torn writes, bit flips, wrong shapes
# ----------------------------------------------------------------------
class TestCheckpointFormat:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "basic.ckpt")
        payload = {"kind": "probe", "blob": b"\x00\xffbytes", "n": 3}
        write_checkpoint(path, payload)
        assert read_checkpoint(path) == payload

    def test_truncation_at_every_quarter_boundary(self, tmp_path):
        """A checkpoint torn at 1/4, 1/2, 3/4 (and 0) is always refused."""
        path = str(tmp_path / "torn.ckpt")
        write_checkpoint(path, {"kind": "probe", "blob": b"x" * 512})
        size = os.path.getsize(path)
        for quarter in range(4):
            write_checkpoint(path, {"kind": "probe", "blob": b"x" * 512})
            remaining = truncate_file(path, length=size * quarter // 4)
            assert len(remaining) == size * quarter // 4
            with pytest.raises(CheckpointError):
                read_checkpoint(path)

    def test_truncation_at_every_byte_of_a_small_checkpoint(self, tmp_path):
        path = str(tmp_path / "tiny.ckpt")
        write_checkpoint(path, {"kind": "probe"})
        size = os.path.getsize(path)
        for length in range(size):
            write_checkpoint(path, {"kind": "probe"})
            truncate_file(path, length=length)
            with pytest.raises(CheckpointError):
                read_checkpoint(path)

    @pytest.mark.parametrize("seed", [1, 2, 3, 11, 12, 13, 99])
    def test_bit_flip_anywhere_is_rejected(self, tmp_path, seed):
        """Seeded single-bit corruption anywhere in the file is detected.

        Bit flips inside the payload break the checksum; flips inside the
        header break the header parse — both must raise, never return
        damaged data.
        """
        path = str(tmp_path / "flip.ckpt")
        write_checkpoint(path, {"kind": "probe", "blob": b"y" * 256})
        corrupt_file(path, seed=seed, flips=1)
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_trailing_garbage_is_rejected(self, tmp_path):
        path = str(tmp_path / "trail.ckpt")
        write_checkpoint(path, {"kind": "probe"})
        with open(path, "ab") as handle:
            handle.write(b"garbage after the payload")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(str(tmp_path / "never-written.ckpt"))


# ----------------------------------------------------------------------
# Session-level resume equality
# ----------------------------------------------------------------------
class TestSessionResume:
    @pytest.mark.parametrize("delivery", DELIVERY_TIERS)
    def test_filter_session_resume_matches_uninterrupted(
        self, tmp_path, medline_dtd_fixture, medline_document_small, delivery,
    ):
        """Every delivery tier: checkpoint mid-stream, restore, identical."""
        plan = SmpPrefilter.cached_for_query(
            medline_dtd_fixture, MEDLINE_QUERIES["M2"], backend="native",
        )
        data = medline_document_small.encode("utf-8")
        chunks = adversarial_chunks(data, "midtag")
        reference = plan.session(binary=True, delivery=delivery).run(chunks)

        cut = len(chunks) // 3
        path = str(tmp_path / f"{delivery}.ckpt")
        first = plan.session(binary=True, delivery=delivery)
        head, consumed = [], 0
        for chunk in chunks[:cut]:
            head.append(first.feed(chunk))
            consumed += len(chunk)
        write_checkpoint(path, {
            "input_offset": consumed, "state": first.export_state(),
        })

        snapshot = read_checkpoint(path)
        second = plan.session(binary=True, delivery=delivery)
        second.import_state(snapshot["state"])
        tail = [
            second.feed(chunk)
            for chunk in resume_chunks(chunks, snapshot["input_offset"])
        ]
        tail.append(second.finish())
        assert b"".join(head + tail) == reference.output
        assert _stats_tuple(second.stats) == _stats_tuple(reference.stats)

    def test_api_session_checkpoint_and_engine_resume(
        self, tmp_path, medline_engine, medline_document_small,
    ):
        """`Session.checkpoint()` → `Engine.open(resume=...)` round trip."""
        data = medline_document_small.encode("utf-8")
        reference = medline_engine.run(
            api.Source.from_bytes(data), binary=True
        ).single

        path = str(tmp_path / "session.ckpt")
        pieces = []
        session = medline_engine.open(
            sinks=[api.CallbackSink(pieces.append)], binary=True
        )
        step = max(1, len(data) // 7)
        session.feed(data[:3 * step])
        checkpoint = session.checkpoint(path)
        session.close()  # the "crash": this session never finishes

        assert checkpoint.input_offset == 3 * step
        flushed = checkpoint.output_sizes[0]
        recovered = b"".join(pieces)[:flushed]

        resumed_pieces = []
        resumed = medline_engine.open(
            sinks=[api.CallbackSink(resumed_pieces.append)],
            resume=Checkpoint.load(path),
        )
        resumed.feed(data[3 * step:])
        resumed.finish()
        assert recovered + b"".join(resumed_pieces) == reference.output
        assert (_stats_tuple(resumed.stats[0])
                == _stats_tuple(reference.stats))

    def test_shared_session_resume_with_mid_stream_attach(
        self, tmp_path, medline_dtd_fixture, medline_document_small,
    ):
        """A live shared session with an attached query survives resume."""
        data = medline_document_small.encode("utf-8")
        base = [
            _medline_query("M2", medline_dtd_fixture),
            _medline_query("M4", medline_dtd_fixture),
        ]
        extra = _medline_query("M5", medline_dtd_fixture, label="late")
        engine = api.Engine(base)
        cut = len(data) // 2

        # Reference: uninterrupted live run with the same attach point.
        reference = engine.open(binary=True, live=True)
        ref_pieces = [[] for _ in range(3)]
        for index, piece in enumerate(reference.feed(data[:cut])):
            ref_pieces[index].append(piece)
        reference.attach(extra, label="late")
        for index, piece in enumerate(reference.feed(data[cut:])):
            ref_pieces[index].append(piece)
        for index, piece in enumerate(reference.finish()):
            ref_pieces[index].append(piece)

        # Crashed run: attach, feed a little further, checkpoint, abandon.
        path = str(tmp_path / "shared.ckpt")
        crashed = engine.open(binary=True, live=True)
        crash_pieces = [[] for _ in range(3)]
        for index, piece in enumerate(crashed.feed(data[:cut])):
            crash_pieces[index].append(piece)
        crashed.attach(extra, label="late")
        step = (len(data) - cut) // 3
        for index, piece in enumerate(crashed.feed(data[cut:cut + step])):
            crash_pieces[index].append(piece)
        checkpoint = crashed.checkpoint(path)
        crashed.close()

        resumed = engine.open(live=True, resume=path)
        assert [handle.label for handle in resumed.handles][-1] == "late"
        for index, piece in enumerate(resumed.feed(data[cut + step:])):
            crash_pieces[index].append(piece)
        for index, piece in enumerate(resumed.finish()):
            crash_pieces[index].append(piece)
        assert len(checkpoint.output_sizes) == 3
        for index in range(3):
            joined = b"".join(crash_pieces[index])
            assert joined == b"".join(ref_pieces[index]), f"stream {index}"

    def test_resume_under_different_query_set_is_refused(
        self, tmp_path, medline_engine, medline_dtd_fixture,
        medline_document_small,
    ):
        path = str(tmp_path / "other.ckpt")
        session = medline_engine.open(binary=True)
        session.feed(medline_document_small[:500].encode("utf-8"))
        session.checkpoint(path)
        session.close()
        other = api.Engine(_medline_query("M4", medline_dtd_fixture))
        with pytest.raises(CheckpointError):
            other.open(resume=path)

    def test_resume_with_conflicting_binary_mode_is_refused(
        self, tmp_path, medline_engine, medline_document_small,
    ):
        path = str(tmp_path / "binary.ckpt")
        session = medline_engine.open(binary=True)
        session.feed(medline_document_small[:500].encode("utf-8"))
        session.checkpoint(path)
        session.close()
        with pytest.raises(CheckpointError):
            medline_engine.open(resume=path, binary=False)

    def test_checkpoint_after_finish_is_refused(
        self, medline_engine, medline_document_small,
    ):
        session = medline_engine.open(binary=True)
        session.feed(medline_document_small.encode("utf-8"))
        session.finish()
        with pytest.raises(CheckpointError):
            session.checkpoint()


# ----------------------------------------------------------------------
# Corpus journal chaos: SIGKILL mid-corpus, resume, exactly-once
# ----------------------------------------------------------------------
def _corpus_documents(tmp_path, medline_document_small) -> list[str]:
    paths = []
    for index in range(6):
        path = tmp_path / f"doc{index}.xml"
        # Distinct documents: repeat the base document a varying number of
        # times records-style so each has its own size and output.
        path.write_text(medline_document_small, encoding="utf-8")
        paths.append(str(path))
    return paths


class TestCorpusJournalChaos:
    def test_sigkill_mid_corpus_then_journal_resume_is_byte_identical(
        self, tmp_path, medline_dtd_fixture, medline_document_small,
    ):
        queries = [
            _medline_query("M2", medline_dtd_fixture),
            _medline_query("M4", medline_dtd_fixture),
        ]
        documents = _corpus_documents(tmp_path, medline_document_small)
        journal = str(tmp_path / "corpus.journal")

        def clean_run():
            return api.Engine(queries).run(
                api.Source.from_paths(documents, chunk_size=4096),
                binary=True,
            )

        reference = clean_run()

        def victim():
            # Kill the process from inside the journal: after the third
            # document commits, die as hard as a power cut.
            real_record = CorpusJournal.record
            state = {"committed": 0}

            def record(self, *args, **kwargs):
                real_record(self, *args, **kwargs)
                state["committed"] += 1
                if state["committed"] >= 3:
                    os.kill(os.getpid(), signal.SIGKILL)

            CorpusJournal.record = record
            api.Engine(queries).run(
                api.Source.from_paths(documents, chunk_size=4096),
                binary=True,
                journal=journal,
            )

        context = multiprocessing.get_context("fork")
        child = context.Process(target=victim)
        child.start()
        child.join(timeout=120)
        assert child.exitcode == -signal.SIGKILL

        # The journal survived the kill with >= 3 committed documents.
        resumed_journal = CorpusJournal.resume(
            journal,
            api.Engine(queries)._query_fingerprints(),
            True,
        )
        committed = set(resumed_journal.completed)
        resumed_journal.close()
        assert len(committed) >= 3

        resumed = api.Engine(queries).run(
            api.Source.from_paths(documents, chunk_size=4096),
            binary=True,
            journal=journal,
        )
        for mine, reference_result in zip(resumed.results, reference.results):
            assert mine.output == reference_result.output
            assert (_stats_tuple(mine.stats)
                    == _stats_tuple(reference_result.stats))

    def test_journal_with_torn_tail_resumes_cleanly(
        self, tmp_path, medline_dtd_fixture, medline_document_small,
    ):
        queries = [_medline_query("M2", medline_dtd_fixture)]
        documents = _corpus_documents(tmp_path, medline_document_small)
        journal = str(tmp_path / "torn.journal")
        reference = api.Engine(queries).run(
            api.Source.from_paths(documents, chunk_size=4096), binary=True,
        )
        api.Engine(queries).run(
            api.Source.from_paths(documents, chunk_size=4096),
            binary=True, journal=journal,
        )
        # Tear the last journal line mid-write, then append pure garbage.
        with open(journal, "rb") as handle:
            content = handle.read()
        with open(journal, "wb") as handle:
            handle.write(content[:len(content) - 17])
            handle.write(b'{"broken json...')
        resumed = api.Engine(queries).run(
            api.Source.from_paths(documents, chunk_size=4096),
            binary=True, journal=journal,
        )
        assert resumed.results[0].output == reference.results[0].output

    def test_journal_under_different_query_set_is_refused(
        self, tmp_path, medline_dtd_fixture, medline_document_small,
    ):
        documents = _corpus_documents(tmp_path, medline_document_small)
        journal = str(tmp_path / "wrong.journal")
        api.Engine([_medline_query("M2", medline_dtd_fixture)]).run(
            api.Source.from_paths(documents, chunk_size=4096),
            binary=True, journal=journal,
        )
        with pytest.raises(CheckpointError):
            api.Engine([_medline_query("M4", medline_dtd_fixture)]).run(
                api.Source.from_paths(documents, chunk_size=4096),
                binary=True, journal=journal,
            )


# ----------------------------------------------------------------------
# The fuzz harness's kill-and-resume matrix (one seeded round)
# ----------------------------------------------------------------------
def test_kill_and_resume_matrix_is_byte_identical():
    """Child SIGKILLs itself at a seeded offset; resume must be identical.

    One full round of the chaos matrix: 3 workloads (MEDLINE, generated
    XML, JSONL grammar) × every available delivery × 2 adversarial
    chunkings, alternating native/instrumented backends.  Every cell must
    recover to byte-identical output and an equal 11-field statistics
    tuple.
    """
    from repro.workloads.fuzz import run_kill_resume

    cases = run_kill_resume(seed=20260807, rounds=1)
    divergences = [d for case in cases for d in case.divergences]
    assert not divergences, "\n".join(
        f"{d.comparison}: {d.detail}" for d in divergences
    )
    assert sum(case.pairs for case in cases) >= 12
