"""Unit tests for the runtime algorithm (Figure 4)."""

from __future__ import annotations

import pytest

from repro import Dtd, SmpPrefilter
from repro.errors import RuntimeFilterError
from repro.matching import available_backends
from repro.projection import ReferenceProjector


class TestTagLocation:
    def test_tags_with_whitespace_and_attributes(self, site_dtd):
        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        document = (
            "<site ><regions><africa></africa><asia/>"
            '<australia  ><item id="i1"><location>x</location><name>n</name>'
            "<payment>p</payment><description >d</description>"
            '<shipping>s</shipping><incategory category="c1"/></item>'
            "</australia></regions></site>"
        )
        run = prefilter.session().run(document)
        assert "<description >d</description>" in run.output
        assert run.output.startswith("<site >")

    def test_attribute_value_containing_gt(self, site_dtd):
        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        document = (
            "<site><regions><africa></africa><asia/>"
            '<australia><item id="a &gt; b"><location>x</location><name>n</name>'
            "<payment>p</payment><description>d</description>"
            '<shipping>s</shipping><incategory category="c>1"/></item>'
            "</australia></regions></site>"
        )
        run = prefilter.session().run(document)
        assert "<description>d</description>" in run.output

    def test_prefix_tag_disambiguation(self):
        # Scanning for <Abstract must not stop at <AbstractText (Section II).
        dtd = Dtd.parse(
            "<!DOCTYPE doc [ <!ELEMENT doc (AbstractText*, Abstract?)>"
            "<!ELEMENT AbstractText (#PCDATA)> <!ELEMENT Abstract (#PCDATA)> ]>"
        )
        prefilter = SmpPrefilter.compile(dtd, ["/doc/Abstract#"])
        document = (
            "<doc><AbstractText>first</AbstractText>"
            "<AbstractText>second</AbstractText>"
            "<Abstract>the real one</Abstract></doc>"
        )
        run = prefilter.session().run(document)
        assert run.output == "<doc><Abstract>the real one</Abstract></doc>"

    def test_keyword_occurrence_inside_text_is_impossible_but_escaped_forms_are_safe(
        self, site_dtd,
    ):
        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        document = (
            "<site><regions><africa></africa><asia/>"
            "<australia><item id='1'><location>&lt;australia&gt; fake</location>"
            "<name>n</name><payment>p</payment><description>real</description>"
            "<shipping>s</shipping><incategory category='c'/></item>"
            "</australia></regions></site>"
        )
        run = prefilter.session().run(document)
        assert run.output.count("<australia>") == 1
        assert "real" in run.output


class TestBachelorTags:
    def test_bachelor_form_of_copied_nodes(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        run = prefilter.session().run("<a><b/><c><b/></c></a>")
        assert run.output == "<a><b/></a>"

    def test_bachelor_form_of_skipped_nodes(self, site_dtd):
        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        document = "<site><regions><africa/><asia/><australia/></regions></site>"
        run = prefilter.session().run(document)
        assert "<australia/>" in run.output
        assert "africa" not in run.output


class TestCopyRegions:
    def test_copy_region_includes_nested_markup_verbatim(self, site_dtd):
        prefilter = SmpPrefilter.compile(site_dtd, ["//item#"])
        document = (
            "<site><regions><africa>"
            '<item id="i9"><location>L</location><name>N</name><payment>P</payment>'
            "<description>D</description><shipping>S</shipping>"
            '<incategory category="c"/></item>'
            "</africa><asia/><australia/></regions></site>"
        )
        run = prefilter.session().run(document)
        assert '<item id="i9">' in run.output
        assert run.output.index("<location>L</location>") > run.output.index('<item id="i9">')
        assert run.output.endswith("</site>")

    def test_multiple_copy_regions_in_sequence(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        document = "<a>" + "".join(f"<b>{i}</b>" for i in range(20)) + "</a>"
        run = prefilter.session().run(document)
        assert run.output == document
        assert run.stats.regions_copied == 20


class TestInvalidInput:
    def test_document_not_matching_dtd_raises(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        with pytest.raises(RuntimeFilterError):
            prefilter.session().run("<wrong><b>x</b></wrong>")

    def test_truncated_document_raises(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        with pytest.raises(RuntimeFilterError):
            prefilter.session().run("<a><b>never closed")

    def test_empty_document_raises(self, paper_dtd):
        prefilter = SmpPrefilter.compile(paper_dtd, ["/a/b#"])
        with pytest.raises(RuntimeFilterError):
            prefilter.session().run("")


class TestBackends:
    @pytest.mark.parametrize("backend", available_backends())
    def test_all_backends_produce_identical_output(self, site_dtd, figure2_document, backend):
        prefilter = SmpPrefilter.compile(
            site_dtd, ["//australia//description#"], backend=backend,
        )
        run = prefilter.session().run(figure2_document)
        reference = ReferenceProjector(
            ["//australia//description#"], alphabet=site_dtd.tag_names(),
        ).project_text(figure2_document)
        assert run.output == reference.output

    def test_instrumented_backend_reports_fewer_comparisons_than_naive(
        self, site_dtd, figure2_document,
    ):
        paths = ["//australia//description#"]
        instrumented = SmpPrefilter.compile(site_dtd, paths, backend="instrumented")
        naive = SmpPrefilter.compile(site_dtd, paths, backend="naive")
        smart = instrumented.session().run(figure2_document)
        brute = naive.session().run(figure2_document)
        assert smart.output == brute.output
        assert smart.stats.total_comparisons < brute.stats.total_comparisons


class TestRunStatistics:
    def test_statistics_fields_are_populated(self, site_dtd, figure2_document):
        from repro import api

        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        engine = api.Engine(api.Query.from_plan(prefilter))
        run = engine.run(
            api.Source.from_text(figure2_document), measure_memory=True
        ).single
        stats = run.stats
        assert stats.input_size == len(figure2_document)
        assert stats.output_size == len(run.output)
        assert stats.char_comparisons > 0
        assert stats.shifts > 0
        assert stats.run_seconds >= 0.0
        assert stats.peak_memory_bytes > 0
        assert 0.0 < stats.projection_ratio < 1.0
        assert stats.as_dict()["char_comparison_ratio"] == stats.char_comparison_ratio

    def test_filter_file_and_stream(self, tmp_path, site_dtd, figure2_document):
        prefilter = SmpPrefilter.compile(site_dtd, ["//australia//description#"])
        path = tmp_path / "figure2.xml"
        path.write_text(figure2_document, encoding="utf-8")
        from_file = prefilter.session().run(open(str(path), "rb"))
        chunks = [figure2_document[i:i + 37] for i in range(0, len(figure2_document), 37)]
        from_chunks = prefilter.session().run(chunks)
        with open(path, "r", encoding="utf-8") as handle:
            from_handle = prefilter.session().run(handle)
        assert from_file.output == from_chunks.output == from_handle.output
