"""Chunk-boundary equivalence and session semantics of the streaming core.

The acceptance property of the streaming refactor: for any document and any
chunking -- including pathological 1-3 character chunks that split tags and
keywords -- the streamed output and *all* character-based statistics are
identical to a whole-document ``filter_text`` run.
"""

from __future__ import annotations

import random

import pytest

from repro import SmpPrefilter
from repro.core.prefilter import FilterSession
from repro.errors import RuntimeFilterError
from repro.workloads.medline import MEDLINE_QUERIES, generate_medline_document
from repro.workloads.xmark import XMARK_QUERIES, generate_xmark_document

BACKENDS = ("instrumented", "native", "naive", "aho-corasick", "horspool")


def stats_tuple(stats):
    return (
        stats.input_size,
        stats.output_size,
        stats.char_comparisons,
        stats.local_scan_chars,
        stats.shifts,
        stats.shift_total,
        stats.initial_jumps,
        stats.initial_jump_chars,
        stats.tokens_matched,
        stats.tokens_copied,
        stats.regions_copied,
    )


def chunks_of(text, sizes, rng):
    """Split ``text`` into chunks drawn from ``sizes``."""
    position = 0
    while position < len(text):
        size = rng.choice(sizes)
        yield text[position:position + size]
        position += size


@pytest.fixture(scope="module")
def site_prefilter(site_dtd):
    return SmpPrefilter.compile(site_dtd, ["//australia//description#"])


class TestChunkEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 17, 4096])
    def test_figure2_document_all_chunk_sizes(
        self, site_prefilter, figure2_document, chunk_size
    ):
        reference = site_prefilter.session().run(figure2_document)
        streamed = site_prefilter.session().run(figure2_document, chunk_size=chunk_size)
        assert streamed.output == reference.output
        assert stats_tuple(streamed.stats) == stats_tuple(reference.stats)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_pathological_chunks(
        self, site_dtd, figure2_document, backend
    ):
        prefilter = SmpPrefilter.compile(
            site_dtd, ["//australia//description#"], backend=backend
        )
        reference = prefilter.session().run(figure2_document)
        for chunk_size in (1, 2, 3):
            streamed = prefilter.session().run(figure2_document, chunk_size=chunk_size)
            assert streamed.output == reference.output
            assert stats_tuple(streamed.stats) == stats_tuple(reference.stats)

    def test_random_xmark_documents_random_chunkings(self, xmark_dtd_fixture):
        rng = random.Random(2024)
        queries = list(XMARK_QUERIES.values())
        for trial in range(6):
            document = generate_xmark_document(
                scale=rng.uniform(0.005, 0.02), seed=rng.randint(0, 10_000)
            )
            spec = rng.choice(queries)
            prefilter = SmpPrefilter.compile_for_query(xmark_dtd_fixture, spec)
            reference = prefilter.session().run(document)
            sizes = rng.choice([[1, 2, 3], [1, 7, 30], [64, 1024]])
            streamed = prefilter.session().run(chunks_of(document, sizes, rng), chunk_size=1 << 20)
            assert streamed.output == reference.output
            assert stats_tuple(streamed.stats) == stats_tuple(reference.stats)

    def test_random_medline_documents_random_chunkings(self, medline_dtd_fixture):
        rng = random.Random(77)
        queries = list(MEDLINE_QUERIES.values())
        for trial in range(4):
            document = generate_medline_document(
                citations=rng.randint(3, 12), seed=rng.randint(0, 10_000)
            )
            spec = rng.choice(queries)
            prefilter = SmpPrefilter.compile_for_query(medline_dtd_fixture, spec)
            reference = prefilter.session().run(document)
            sizes = rng.choice([[1, 2, 3], [5, 11, 64]])
            streamed = prefilter.session().run(chunks_of(document, sizes, rng), chunk_size=1 << 20)
            assert streamed.output == reference.output
            assert stats_tuple(streamed.stats) == stats_tuple(reference.stats)


class TestFilterSession:
    def test_incremental_output_concatenates_to_reference(
        self, site_prefilter, figure2_document
    ):
        reference = site_prefilter.session().run(figure2_document)
        session = site_prefilter.session()
        pieces = [session.feed(chunk) for chunk in
                  (figure2_document[i:i + 13] for i in range(0, len(figure2_document), 13))]
        pieces.append(session.finish())
        assert "".join(pieces) == reference.output
        assert session.finished

    def test_sink_receives_fragments_in_order(self, site_prefilter, figure2_document):
        reference = site_prefilter.session().run(figure2_document)
        received = []
        session = site_prefilter.session(sink=received.append)
        assert session.feed(figure2_document) == ""
        assert session.finish() == ""
        assert "".join(received) == reference.output
        assert session.stats.output_size == len(reference.output)

    def test_sessions_are_isolated(self, site_prefilter, figure2_document):
        reference = site_prefilter.session().run(figure2_document)
        first = site_prefilter.session()
        second = site_prefilter.session()
        half = len(figure2_document) // 2
        out_first = first.feed(figure2_document[:half])
        out_second = second.feed(figure2_document)
        out_second += second.finish()
        out_first += first.feed(figure2_document[half:])
        out_first += first.finish()
        assert out_first == reference.output
        assert out_second == reference.output
        assert stats_tuple(first.stats) == stats_tuple(reference.stats)
        assert stats_tuple(second.stats) == stats_tuple(reference.stats)

    def test_feed_after_finish_is_rejected(self, site_prefilter, figure2_document):
        session = site_prefilter.session()
        session.feed(figure2_document)
        session.finish()
        with pytest.raises(RuntimeFilterError):
            session.feed("<site>")

    def test_nonconforming_document_raises_on_finish(self, site_prefilter):
        session = site_prefilter.session()
        session.feed("<site><regions><africa>")
        with pytest.raises(RuntimeFilterError):
            session.finish()

    def test_run_helper_matches_chunked_session(self, site_prefilter, figure2_document):
        reference = site_prefilter.session().run(figure2_document)
        run = site_prefilter.session().run(figure2_document, chunk_size=9)
        assert run.output == reference.output
        assert stats_tuple(run.stats) == stats_tuple(reference.stats)

    def test_trailing_input_after_accept_is_not_retained(
        self, site_prefilter, figure2_document
    ):
        # Once the automaton accepts, epilog input must not accumulate.
        session = site_prefilter.session(sink=lambda fragment: None)
        session.feed(figure2_document)
        for _ in range(50):
            session.feed("\n" * 100)
        assert session.buffered_bytes < 100
        session.finish()

    def test_bounded_buffer_during_streaming(self, site_prefilter, figure2_document):
        session = site_prefilter.session(sink=lambda fragment: None)
        high_water = 0
        for index in range(0, len(figure2_document), 8):
            session.feed(figure2_document[index:index + 8])
            high_water = max(high_water, session.buffered_bytes)
        session.finish()
        # The carry-over window stays near the chunk size, never the document.
        assert high_water < len(figure2_document) // 2
        assert isinstance(session, FilterSession)


class TestFileAndCache:
    def test_filter_file_uses_chunked_path(self, tmp_path, site_prefilter,
                                           figure2_document):
        reference = site_prefilter.session().run(figure2_document)
        path = tmp_path / "figure2.xml"
        path.write_text(figure2_document, encoding="utf-8")
        run = site_prefilter.session().run(open(str(path), "rb"), chunk_size=11)
        assert run.output == reference.output
        assert stats_tuple(run.stats) == stats_tuple(reference.stats)

    def test_plan_cache_shares_compilations(self, site_dtd):
        first = SmpPrefilter.cached(site_dtd, ["//australia//description#"])
        second = SmpPrefilter.cached(site_dtd, ["//australia//description#"])
        assert first is second
        different = SmpPrefilter.cached(site_dtd, ["//africa//name#"])
        assert different is not first
        native = SmpPrefilter.cached(
            site_dtd, ["//australia//description#"], backend="native"
        )
        assert native is not first

    def test_filter_text_is_one_chunk_wrapper(self, site_prefilter, figure2_document):
        output, stats = site_prefilter.runtime.filter_text(figure2_document)
        reference = site_prefilter.session().run(figure2_document)
        assert output == reference.output
        assert stats_tuple(stats) == stats_tuple(reference.stats)
