"""The asyncio serving bridge: async_run backpressure and the frame server.

``repro.aio`` must deliver byte-identical projections through ``await``-based
sinks, and ``serve`` must round-trip one socket in / N labelled streams out.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import aio, api
from repro.errors import ReproError
from repro.workloads import load_dataset
from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd


@pytest.fixture(scope="module")
def medline_document():
    return load_dataset("medline", size_bytes=100_000)


@pytest.fixture(scope="module")
def engine():
    dtd = medline_dtd()
    return api.Engine(
        [
            api.Query.from_spec(dtd, MEDLINE_QUERIES[name])
            for name in ("M2", "M4", "M5")
        ]
    )


@pytest.fixture(scope="module")
def expected(engine, medline_document):
    run = engine.run(
        api.Source.from_bytes(medline_document.encode("utf-8")), binary=True
    )
    return {result.label: result.output for result in run}


class TestAsyncRun:
    def test_matches_the_sync_engine(self, engine, medline_document, expected):
        async def main():
            return await aio.async_run(
                api.Source.from_bytes(medline_document.encode("utf-8"),
                                      chunk_size=4096),
                engine,
                binary=True,
            )

        run = asyncio.run(main())
        assert {result.label: result.output for result in run} == expected
        assert run.scan_stats is not None

    def test_async_sinks_receive_every_fragment(
        self, engine, medline_document, expected
    ):
        async def main():
            sinks = {label: aio.AsyncCollectSink() for label in engine.labels}
            run = await aio.async_run(
                medline_document.encode("utf-8"), engine, sinks, binary=True
            )
            return sinks, run

        sinks, run = asyncio.run(main())
        assert {label: sink.value() for label, sink in sinks.items()} == expected
        assert all(result.output == b"" for result in run)  # routed away

    def test_async_iterable_source_with_backpressure(
        self, engine, medline_document, expected
    ):
        """Chunks arrive asynchronously; a deliberately slow sink must see
        every fragment in order (the write is awaited before more input)."""

        async def produce(data, size):
            for start in range(0, len(data), size):
                await asyncio.sleep(0)
                yield data[start:start + size]

        class SlowSink(aio.AsyncSink):
            binary = True

            def __init__(self):
                self.fragments = []

            async def write(self, fragment):
                await asyncio.sleep(0)
                self.fragments.append(fragment)

        async def main():
            sinks = [SlowSink() for _ in engine.labels]
            await aio.async_run(
                produce(medline_document.encode("utf-8"), 2048),
                engine,
                sinks,
                binary=True,
            )
            return sinks

        sinks = asyncio.run(main())
        assert {
            label: b"".join(sink.fragments)
            for label, sink in zip(engine.labels, sinks)
        } == expected


class TestServe:
    def test_round_trips_n_labelled_streams_over_one_socket(
        self, engine, medline_document, expected
    ):
        async def main():
            server = await aio.serve(engine, host="127.0.0.1", port=0,
                                     chunk_size=4096)
            port = server.sockets[0].getsockname()[1]
            async with server:
                return await aio.request(
                    "127.0.0.1",
                    port,
                    api.Source.from_bytes(medline_document.encode("utf-8"),
                                          chunk_size=2048),
                )

        outputs = asyncio.run(main())
        assert outputs == expected

    def test_two_sequential_connections_are_independent(
        self, engine, medline_document, expected
    ):
        async def main():
            server = await aio.serve(engine, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                first = await aio.request(
                    "127.0.0.1", port, medline_document.encode("utf-8")
                )
                second = await aio.request(
                    "127.0.0.1", port, medline_document.encode("utf-8")
                )
            return first, second

        first, second = asyncio.run(main())
        assert first == expected
        assert second == expected

    def test_request_returns_every_label_even_without_output(
        self, medline_document
    ):
        """Labels whose only frame is their END must not be dropped."""
        dtd = medline_dtd()
        # CollectionTitle is declared but never generated: both queries
        # project nothing, so the response is END frames only.
        empty = api.Engine([
            api.Query.from_paths(dtd, ["//CollectionTitle#"],
                                 add_default_paths=False, label="e1"),
            api.Query.from_paths(dtd, ["//CollectionTitle#"],
                                 add_default_paths=False, label="e2"),
        ])

        async def main():
            server = await aio.serve(empty, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                return await aio.request(
                    "127.0.0.1", port, medline_document.encode("utf-8")
                )

        outputs = asyncio.run(main())
        assert outputs == {"e1": b"", "e2": b""}

    def test_non_conforming_document_yields_an_error_frame(self, engine):
        async def main():
            server = await aio.serve(engine, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            async with server:
                return await aio.request(
                    "127.0.0.1", port,
                    b"<MedlineCitationSet><MedlineCitation>",
                )

        with pytest.raises(ReproError, match="server error"):
            asyncio.run(main())

    def test_frame_round_trip(self):
        async def main():
            reader = asyncio.StreamReader()
            payloads = []

            class Collector:
                def write(self, data):
                    reader.feed_data(data)

            writer = Collector()
            aio.write_frame(writer, aio.FRAME_DATA, b"M2", b"<x/>")
            aio.write_frame(writer, aio.FRAME_END, b"M2", b"")
            reader.feed_eof()
            while True:
                frame = await aio.read_frame(reader)
                if frame is None:
                    break
                payloads.append(frame)
            return payloads

        frames = asyncio.run(main())
        assert frames == [
            (aio.FRAME_DATA, b"M2", b"<x/>"),
            (aio.FRAME_END, b"M2", b""),
        ]


class TestServeWorkers:
    """serve(workers=N): sessions live in worker processes."""

    def test_worker_pool_serving_matches_in_loop(self, engine,
                                                 medline_document, expected):
        async def main():
            server = await aio.serve(engine, port=0, workers=2)
            port = server.sockets[0].getsockname()[1]
            try:
                first, second = await asyncio.gather(
                    aio.request("127.0.0.1", port, api.Source.from_text(
                        medline_document, chunk_size=64 * 1024
                    )),
                    aio.request("127.0.0.1", port, api.Source.from_text(
                        medline_document, chunk_size=8 * 1024
                    )),
                )
            finally:
                server.close()
                await server.wait_closed()
                server.worker_pool.close()
            return first, second

        first, second = asyncio.run(main())
        assert first == expected
        assert second == expected

    def test_worker_pool_error_frame(self, engine):
        async def main():
            server = await aio.serve(engine, port=0, workers=1)
            port = server.sockets[0].getsockname()[1]
            try:
                await aio.request(
                    "127.0.0.1", port, api.Source.from_text("<wrong/>")
                )
            finally:
                server.close()
                await server.wait_closed()
                server.worker_pool.close()

        with pytest.raises(ReproError, match="server error"):
            asyncio.run(main())

    def test_explicit_pool_is_reused_and_left_open(self, engine,
                                                   medline_document,
                                                   expected):
        from repro.parallel import WorkerPool

        with WorkerPool(engine, jobs=1) as pool:
            async def main():
                server = await aio.serve(engine, port=0, worker_pool=pool)
                port = server.sockets[0].getsockname()[1]
                try:
                    return await aio.request(
                        "127.0.0.1", port,
                        api.Source.from_text(medline_document),
                    )
                finally:
                    server.close()
                    await server.wait_closed()

            assert asyncio.run(main()) == expected
            assert asyncio.run(main()) == expected


class TestServeHardening:
    """Per-connection failure containment and graceful shutdown."""

    @staticmethod
    async def _start(engine, **kwargs):
        server = await aio.serve(engine, host="127.0.0.1", port=0, **kwargs)
        return server, server.sockets[0].getsockname()[1]

    def test_mid_stream_reset_does_not_disturb_other_connections(
        self, engine, medline_document, expected
    ):
        import socket as socketmod
        import struct

        async def main():
            server, port = await self._start(engine)
            try:
                # A client that aborts hard mid-document (RST, via
                # SO_LINGER zero) while another streams normally.
                raw = socketmod.socket()
                raw.connect(("127.0.0.1", port))
                raw.sendall(medline_document.encode("utf-8")[:1000])
                raw.setsockopt(socketmod.SOL_SOCKET, socketmod.SO_LINGER,
                               struct.pack("ii", 1, 0))
                raw.close()
                await asyncio.sleep(0.05)
                return await aio.request(
                    "127.0.0.1", port,
                    api.Source.from_text(medline_document),
                )
            finally:
                await aio.shutdown(server, timeout=5.0)

        assert asyncio.run(main()) == expected

    def test_malformed_document_leaves_connection_reusable(self, engine):
        async def main():
            server, port = await self._start(engine)
            try:
                with pytest.raises(ReproError, match="server error"):
                    await aio.request(
                        "127.0.0.1", port,
                        api.Source.from_bytes(b"\x00garbage not xml\xff"),
                    )
                # The server survived; a healthy request still works.
                return await aio.request(
                    "127.0.0.1", port, api.Source.from_text(
                        "<MedlineCitationSet></MedlineCitationSet>"
                    )
                )
            finally:
                await aio.shutdown(server, timeout=5.0)

        outputs = asyncio.run(main())
        assert set(outputs) == set(engine.labels)

    def test_idle_timeout_sends_error_frame(self, engine, medline_document):
        async def main():
            server, port = await self._start(engine, idle_timeout=0.3)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(medline_document.encode("utf-8")[:100])
                await writer.drain()
                # ... and then never sends the rest.
                kinds = []
                while True:
                    frame = await asyncio.wait_for(
                        aio.read_frame(reader), 5.0
                    )
                    if frame is None:
                        break
                    kinds.append(frame[0])
                    if frame[0] == aio.FRAME_ERROR:
                        assert b"idle timeout" in frame[2]
                        break
                writer.close()
                return kinds
            finally:
                await aio.shutdown(server, timeout=5.0)

        assert aio.FRAME_ERROR in asyncio.run(main())

    def test_graceful_shutdown_drains_inflight_then_refuses(
        self, engine, medline_document, expected
    ):
        async def main():
            server, port = await self._start(engine)
            data = medline_document.encode("utf-8")
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def slow_client():
                for start in range(0, len(data), 8192):
                    writer.write(data[start:start + 8192])
                    await writer.drain()
                    await asyncio.sleep(0.01)
                writer.write_eof()
                outputs = {}
                while True:
                    frame = await aio.read_frame(reader)
                    if frame is None:
                        break
                    kind, label, payload = frame
                    if kind == aio.FRAME_DATA:
                        outputs.setdefault(
                            label.decode("utf-8"), []
                        ).append(payload)
                    elif kind == aio.FRAME_END:
                        outputs.setdefault(label.decode("utf-8"), [])
                writer.close()
                return {
                    label: b"".join(parts)
                    for label, parts in outputs.items()
                }

            task = asyncio.create_task(slow_client())
            await asyncio.sleep(0.03)  # the document is mid-flight
            await aio.shutdown(server, timeout=30.0)
            outputs = await task  # the in-flight document completed
            refused = False
            try:
                _, probe = await asyncio.wait_for(
                    asyncio.open_connection("127.0.0.1", port), 1.0
                )
                probe.close()
            except (ConnectionError, OSError, asyncio.TimeoutError):
                refused = True
            return outputs, refused

        outputs, refused = asyncio.run(main())
        assert outputs == expected
        assert refused

    def test_shutdown_cancels_stragglers_after_timeout(self, engine):
        async def main():
            server, port = await self._start(engine)
            # A connection that sends nothing and never closes: with no
            # idle timeout it would pin the handler forever.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await asyncio.sleep(0.05)
            started = asyncio.get_running_loop().time()
            await aio.shutdown(server, timeout=0.2)
            elapsed = asyncio.get_running_loop().time() - started
            writer.close()
            assert not server.connections
            return elapsed

        assert asyncio.run(main()) < 5.0

    def test_write_limit_accepted(self, engine, medline_document, expected):
        async def main():
            server, port = await self._start(
                engine, write_limit=4096, feed_timeout=30.0
            )
            try:
                return await aio.request(
                    "127.0.0.1", port,
                    api.Source.from_text(medline_document),
                )
            finally:
                await aio.shutdown(server, timeout=5.0)

        assert asyncio.run(main()) == expected


class TestServeRecords:
    """Resumable record streams: commit-at-boundary, exactly-once resume."""

    END_TAG = b"</MedlineCitationSet>"

    @pytest.fixture(scope="class")
    def record_stream(self):
        from repro.workloads.medline import generate_medline_document

        records = [
            generate_medline_document(citations=3, seed=100 + index)
            .encode("utf-8")
            for index in range(6)
        ]
        return records, b"".join(records)

    @pytest.fixture(scope="class")
    def per_record_reference(self, engine, record_stream):
        records, _ = record_stream
        reference = []
        for record in records:
            run = engine.run(api.Source.from_bytes(record), binary=True)
            reference.append({
                result.label: result.output for result in run if result.output
            })
        return reference

    def _union(self, maps):
        merged: dict[int, dict[str, bytes]] = {}
        for collected in maps:
            for index, outputs in collected.items():
                assert index not in merged, f"record {index} emitted twice"
                merged[index] = outputs
        return merged

    def test_round_trip_commits_every_record(
        self, tmp_path, engine, record_stream, per_record_reference
    ):
        from repro.checkpoint import read_checkpoint

        records, stream = record_stream
        checkpoint = str(tmp_path / "records.ckpt")

        async def main():
            server = await aio.serve_records(
                engine, end_tag=self.END_TAG, checkpoint=checkpoint
            )
            port = server.sockets[0].getsockname()[1]
            try:
                return await aio.request_records("127.0.0.1", port, stream)
            finally:
                server.close()
                await server.wait_closed()

        resume_offset, collected = asyncio.run(main())
        assert resume_offset == 0
        assert collected == {
            index: outputs
            for index, outputs in enumerate(per_record_reference)
        }
        snapshot = read_checkpoint(checkpoint)
        assert snapshot["input_offset"] == len(stream)
        assert snapshot["record_index"] == len(records)

    def test_reconnect_resumes_at_committed_record_boundary(
        self, tmp_path, engine, record_stream, per_record_reference
    ):
        """Producers die mid-record twice; the union is still exactly-once."""
        records, stream = record_stream
        boundaries = []
        position = 0
        for record in records:
            position += len(record)
            boundaries.append(position)
        checkpoint = str(tmp_path / "records.ckpt")
        # Two crash points, each severing a record in half.
        cuts = [boundaries[1] + len(records[2]) // 2,
                boundaries[3] + len(records[4]) // 2]

        async def main():
            server = await aio.serve_records(
                engine, end_tag=self.END_TAG, checkpoint=checkpoint
            )
            port = server.sockets[0].getsockname()[1]
            try:
                results = []
                for cut in cuts:
                    results.append(await aio.request_records(
                        "127.0.0.1", port, stream[:cut]
                    ))
                results.append(await aio.request_records(
                    "127.0.0.1", port, stream
                ))
                return results
            finally:
                server.close()
                await server.wait_closed()

        results = asyncio.run(main())
        offsets = [offset for offset, _ in results]
        assert offsets[0] == 0
        # Every resume offset is exactly the last committed record boundary
        # before the previous connection's truncation point.
        assert offsets[1] == boundaries[1]
        assert offsets[2] == boundaries[3]
        merged = self._union(collected for _, collected in results)
        assert merged == {
            index: outputs
            for index, outputs in enumerate(per_record_reference)
        }

    def test_corrupt_checkpoint_is_refused(
        self, tmp_path, engine, record_stream
    ):
        from repro.faults import corrupt_file

        _, stream = record_stream
        checkpoint = str(tmp_path / "records.ckpt")

        async def main():
            server = await aio.serve_records(
                engine, end_tag=self.END_TAG, checkpoint=checkpoint
            )
            port = server.sockets[0].getsockname()[1]
            try:
                await aio.request_records("127.0.0.1", port, stream)
                corrupt_file(checkpoint, seed=3, flips=1)
                with pytest.raises(ReproError, match="checksum"):
                    await aio.request_records("127.0.0.1", port, stream)
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(main())
