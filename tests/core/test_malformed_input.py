"""Malformed-input properties: corrupted documents fail safely everywhere.

The robustness property behind the fault-injection harness's corruption
helpers (:func:`repro.faults.flip_bits` / :func:`~repro.faults.truncate` /
:func:`~repro.faults.inject_garbage`): whatever deterministic damage is
done to a document, the filter must never hang, never emit bytes a clean
run would not emit, and must fail with a :class:`~repro.errors.ReproError`
whose position (when it carries one) lies inside the input.  The outcome
-- projected bytes on success, error class on failure -- must further be
*identical* across every token-event delivery mode, every matcher backend
and every chunking, from 1-byte feeds to 64 KiB streaming chunks.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import SmpPrefilter, faults
from repro.accel import accel_available
from repro.core.runtime import DELIVERIES
from repro.errors import ReproError, XmlSyntaxError
from repro.matching.factory import available_backends
from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd
from repro.workloads.medline.generator import generate_medline_document

BACKENDS = tuple(available_backends())

#: 1-byte feeds (worst-case suspension), odd mid-keyword sizes, and the
#: large streaming sizes up to 64 KiB.
CHUNKINGS = ([1], [17, 63], [4096], [65536])


def _deliveries() -> tuple[str, ...]:
    if accel_available():
        return DELIVERIES
    return tuple(d for d in DELIVERIES if d != "accel")


def _corrupt(data: bytes, corruption: str, seed: int) -> bytes:
    if corruption == "flip":
        return faults.flip_bits(data, seed=seed, flips=1 + seed % 4)
    if corruption == "truncate":
        return faults.truncate(data, seed=seed)
    return faults.inject_garbage(data, seed=seed, length=1 + seed % 16)


def _feed_all(session, data: bytes, sizes, rng):
    """Feed ``data`` in random ``sizes`` pieces; ('ok', bytes) or ('err', type)."""
    out = []
    position = 0
    try:
        while position < len(data):
            size = rng.choice(sizes)
            out.append(session.feed(data[position:position + size]))
            position += size
        out.append(session.finish())
    except ReproError as error:
        return ("err", type(error))
    return ("ok", b"".join(out))


@pytest.fixture(scope="module")
def plans():
    """One compiled prefilter per backend (compilation dominates runtime)."""
    dtd = medline_dtd()
    return {
        backend: SmpPrefilter.compile_for_query(
            dtd, MEDLINE_QUERIES["M2"], backend=backend
        )
        for backend in BACKENDS
    }


@pytest.fixture(scope="module")
def base_document() -> bytes:
    return generate_medline_document(citations=6, seed=77).encode("utf-8")


class TestCorruptedDocumentsAcrossDeliveries:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        corruption=st.sampled_from(("flip", "truncate", "garbage")),
    )
    def test_outcome_identical_across_deliveries_and_chunkings(
        self, plans, base_document, seed, corruption
    ):
        damaged = _corrupt(base_document, corruption, seed)
        plan = plans["native"]
        outcomes = []
        for delivery in _deliveries():
            for sizes in CHUNKINGS:
                session = plan.session(binary=True, delivery=delivery)
                outcomes.append(
                    _feed_all(session, damaged, sizes, random.Random(seed))
                )
        first = outcomes[0]
        assert all(outcome == first for outcome in outcomes), (
            corruption, seed, {o[0] for o in outcomes}
        )

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        corruption=st.sampled_from(("flip", "truncate", "garbage")),
    )
    def test_outcome_identical_across_backends(
        self, plans, base_document, seed, corruption
    ):
        damaged = _corrupt(base_document, corruption, seed)
        outcomes = {}
        for backend, plan in plans.items():
            session = plan.session(binary=True, delivery="batched")
            outcomes[backend] = _feed_all(
                session, damaged, [4096], random.Random(seed)
            )
        values = list(outcomes.values())
        assert all(value == values[0] for value in values), outcomes

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_truncated_document_never_emits_beyond_clean_prefix(
        self, plans, base_document, seed
    ):
        """Whatever a truncated run emits, a clean run emitted it too."""
        plan = plans["native"]
        full = plan.session(binary=True)
        reference = full.feed(base_document) + full.finish()

        damaged = faults.truncate(base_document, seed=seed)
        session = plan.session(binary=True)
        outcome = _feed_all(session, damaged, [257], random.Random(seed))
        if outcome[0] == "ok":
            assert reference.startswith(outcome[1]) or outcome[1] == b""


class TestTokenizerPositions:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        corruption=st.sampled_from(("flip", "truncate", "garbage")),
    )
    def test_syntax_error_position_inside_input(
        self, base_document, seed, corruption
    ):
        from repro.xml.tokenizer import tokenize

        damaged = _corrupt(base_document, corruption, seed)
        text = damaged.decode("utf-8", "replace")
        try:
            tokenize(text)
        except XmlSyntaxError as error:
            if error.position is not None:
                assert 0 <= error.position <= len(text)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        corruption=st.sampled_from(("flip", "truncate", "garbage")),
    )
    def test_streaming_tokenizer_agrees_with_one_shot(
        self, base_document, seed, corruption
    ):
        from repro.xml.tokenizer import TokenizerSession, tokenize

        damaged = _corrupt(base_document, corruption, seed)
        text = damaged.decode("utf-8", "replace")

        def one_shot():
            try:
                tokenize(text)
                return "ok"
            except XmlSyntaxError:
                return "err"

        def streamed(size):
            session = TokenizerSession()
            try:
                for start in range(0, len(text), size):
                    session.feed(text[start:start + size])
                session.finish()
                return "ok"
            except XmlSyntaxError:
                return "err"

        expected = one_shot()
        for size in (1, 63, 4096):
            assert streamed(size) == expected, (corruption, seed, size)
