"""Byte-native ingestion: bytes/str equivalence and UTF-8 edge cases.

The defining property of the byte-native refactor: filtering the UTF-8
encoding of a document through any byte entry point (binary sessions over
bytes, file handles or memory maps) produces *byte-identical* output and
*identical* statistics to the ``str`` path -- for every workload, every
chunking, and in particular for inputs whose multi-byte UTF-8 sequences
are split across arbitrary chunk boundaries.
"""

from __future__ import annotations

import random

import pytest

from repro import MultiQueryEngine, SmpPrefilter
from repro.core.sources import open_mmap
from repro.core.stream import iter_chunks
from repro.workloads import load_dataset
from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd
from repro.workloads.xmark import XMARK_QUERIES, xmark_dtd

BACKENDS = ("instrumented", "native")


def stats_tuple(stats):
    return (
        stats.input_size,
        stats.output_size,
        stats.char_comparisons,
        stats.local_scan_chars,
        stats.shifts,
        stats.shift_total,
        stats.initial_jumps,
        stats.initial_jump_chars,
        stats.tokens_matched,
        stats.tokens_copied,
        stats.regions_copied,
        stats.searches if hasattr(stats, "searches") else 0,
    )


@pytest.fixture(scope="module")
def medline_document():
    return load_dataset("medline", size_bytes=120_000)


@pytest.fixture(scope="module")
def xmark_document():
    return load_dataset("xmark", size_bytes=120_000)


# ----------------------------------------------------------------------
# Workload equivalence: bytes path vs str shim
# ----------------------------------------------------------------------
class TestBytesVsStrEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("query", sorted(MEDLINE_QUERIES))
    def test_medline_whole_document(self, medline_document, backend, query):
        plan = SmpPrefilter.cached_for_query(
            medline_dtd(), MEDLINE_QUERIES[query], backend=backend
        )
        reference = plan.session().run(medline_document)
        byte_run = plan.session(binary=True).run(medline_document.encode("utf-8"))
        assert byte_run.output == reference.output.encode("utf-8")
        assert stats_tuple(byte_run.stats) == stats_tuple(reference.stats)

    @pytest.mark.parametrize("query", ("XM1", "XM6", "XM14", "XM20"))
    def test_xmark_whole_document(self, xmark_document, query):
        plan = SmpPrefilter.cached_for_query(
            xmark_dtd(), XMARK_QUERIES[query], backend="native"
        )
        reference = plan.session().run(xmark_document)
        byte_run = plan.session(binary=True).run(xmark_document.encode("utf-8"))
        assert byte_run.output == reference.output.encode("utf-8")
        assert stats_tuple(byte_run.stats) == stats_tuple(reference.stats)

    @pytest.mark.parametrize("chunk_size", (1, 7, 4096, 65536))
    def test_medline_chunked_bytes(self, medline_document, chunk_size):
        plan = SmpPrefilter.cached_for_query(
            medline_dtd(), MEDLINE_QUERIES["M2"], backend="native"
        )
        reference = plan.session().run(medline_document)
        data = medline_document.encode("utf-8")
        streamed = plan.session(binary=True).run(iter_chunks(data, chunk_size))
        assert streamed.output == reference.output.encode("utf-8")
        assert stats_tuple(streamed.stats) == stats_tuple(reference.stats)

    def test_text_mode_session_accepts_byte_chunks(self, medline_document):
        plan = SmpPrefilter.cached_for_query(
            medline_dtd(), MEDLINE_QUERIES["M4"], backend="native"
        )
        reference = plan.session().run(medline_document)
        run = plan.session().run(iter_chunks(medline_document.encode(), 4096))
        assert run.output == reference.output
        assert stats_tuple(run.stats) == stats_tuple(reference.stats)

    def test_binary_sink_receives_projected_bytes(self, medline_document):
        plan = SmpPrefilter.cached_for_query(
            medline_dtd(), MEDLINE_QUERIES["M2"], backend="native"
        )
        fragments: list[bytes] = []
        session = plan.session(sink=fragments.append, binary=True)
        session.feed(medline_document.encode("utf-8"))
        session.finish()
        expected = plan.session().run(medline_document).output.encode("utf-8")
        assert b"".join(fragments) == expected
        assert all(isinstance(fragment, bytes) for fragment in fragments)

    def test_file_session_reads_binary(self, tmp_path, medline_document):
        path = tmp_path / "medline.xml"
        path.write_text(medline_document, encoding="utf-8")
        plan = SmpPrefilter.cached_for_query(
            medline_dtd(), MEDLINE_QUERIES["M2"], backend="native"
        )
        reference = plan.session().run(medline_document)
        from_file = plan.session().run(open(str(path), "rb"), chunk_size=4096)
        assert from_file.output == reference.output
        assert stats_tuple(from_file.stats) == stats_tuple(reference.stats)
        binary = plan.session(binary=True).run(open(str(path), "rb"), chunk_size=4096)
        assert binary.output == reference.output.encode("utf-8")

    def test_mmap_zero_copy_window(self, tmp_path, medline_document):
        path = tmp_path / "medline.xml"
        path.write_text(medline_document, encoding="utf-8")
        plan = SmpPrefilter.cached_for_query(
            medline_dtd(), MEDLINE_QUERIES["M2"], backend="native"
        )
        reference = plan.session().run(medline_document)
        mapped = plan.session().run([open_mmap(str(path))])
        assert mapped.output == reference.output
        assert stats_tuple(mapped.stats) == stats_tuple(reference.stats)
        mapped_binary = plan.session(binary=True).run([open_mmap(str(path))])
        assert mapped_binary.output == reference.output.encode("utf-8")


class TestMultiQueryBytePath:
    @pytest.mark.parametrize("names", (("M2", "M5"), ("M1", "M3", "M4")))
    def test_byte_session_matches_str_engine(self, medline_document, names):
        engine = MultiQueryEngine(
            medline_dtd(), [MEDLINE_QUERIES[name] for name in names],
            backend="native",
        )
        reference = engine.session().run(medline_document)
        byte_run = engine.session(binary=True).run(medline_document.encode("utf-8"))
        for text_out, byte_out, text_stats, byte_stats in zip(
            reference.outputs, byte_run.outputs, reference.stats, byte_run.stats
        ):
            assert byte_out == text_out.encode("utf-8")
            assert stats_tuple(byte_stats) == stats_tuple(text_stats)

    def test_mmap_session_matches_file_session(self, tmp_path, medline_document):
        path = tmp_path / "medline.xml"
        path.write_text(medline_document, encoding="utf-8")
        engine = MultiQueryEngine(
            medline_dtd(),
            [MEDLINE_QUERIES["M2"], MEDLINE_QUERIES["M5"]],
            backend="native",
        )
        from_file = engine.session().run(open(str(path), "rb"), chunk_size=4096)
        mapped = engine.session().run([open_mmap(str(path))])
        assert mapped.outputs == from_file.outputs
        for mapped_stats, file_stats in zip(mapped.stats, from_file.stats):
            assert stats_tuple(mapped_stats) == stats_tuple(file_stats)

    def test_binary_sinks(self, medline_document):
        engine = MultiQueryEngine(
            medline_dtd(),
            [MEDLINE_QUERIES["M2"], MEDLINE_QUERIES["M5"]],
            backend="native",
        )
        reference = engine.session().run(medline_document)
        collected: list[list[bytes]] = [[], []]
        session = engine.session(
            sinks=[collected[0].append, collected[1].append], binary=True
        )
        for chunk in iter_chunks(medline_document.encode("utf-8"), 4096):
            session.feed(chunk)
        session.finish()
        for fragments, expected in zip(collected, reference.outputs):
            assert b"".join(fragments) == expected.encode("utf-8")


# ----------------------------------------------------------------------
# UTF-8 edge cases: multi-byte sequences split across chunk boundaries
# ----------------------------------------------------------------------
#: Content mixing 2-byte (é, ß), 3-byte (☃, 日本語, €) and 4-byte (𝄞, 🜚)
#: UTF-8 sequences, plus XML-escaped markup characters.
_MULTIBYTE_TEXT = "café ß ☃ 日本語 € \U0001d11e \U0001f71a &amp;"

UTF8_DTD_TEXT = """<!DOCTYPE site [
<!ELEMENT site (item+, tail)>
<!ELEMENT item (name, description)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT tail EMPTY>
]>"""

#: The ``tail`` anchor keeps the runtime automaton non-final until the end
#: of the document (the Figure-4 loop stops at the first accepting state),
#: so every item's description region is actually copied.
UTF8_PATHS = ("//item//description#", "/site/tail#")


def _utf8_document(items: int = 8) -> str:
    parts = ["\ufeff<site>"]  # leading BOM: scanned past like prolog bytes
    for index in range(items):
        parts.append(
            f"<item><name>n{index} {_MULTIBYTE_TEXT}</name>"
            f"<description>d{index} {_MULTIBYTE_TEXT} {_MULTIBYTE_TEXT}"
            f"</description></item>"
        )
    parts.append("<tail/></site>")
    return "".join(parts)


def _compile_utf8_plan(backend: str) -> SmpPrefilter:
    from repro.dtd.model import Dtd

    return SmpPrefilter.compile(
        Dtd.parse(UTF8_DTD_TEXT),
        list(UTF8_PATHS),
        backend=backend,
        add_default_paths=False,
    )


@pytest.fixture(scope="module")
def utf8_plan():
    return _compile_utf8_plan("native")


@pytest.fixture(scope="module")
def utf8_plan_instrumented():
    return _compile_utf8_plan("instrumented")


class TestUtf8ChunkBoundaries:
    """Satellite acceptance: 2/3/4-byte sequences and a BOM split across
    arbitrary chunk boundaries are byte-identical to whole-document runs."""

    def test_document_contains_all_sequence_lengths(self):
        data = _utf8_document().encode("utf-8")
        lead_lengths = set()
        for byte in data:
            if byte < 0x80:
                lead_lengths.add(1)
            elif 0xC0 <= byte < 0xE0:
                lead_lengths.add(2)
            elif 0xE0 <= byte < 0xF0:
                lead_lengths.add(3)
            elif byte >= 0xF0:
                lead_lengths.add(4)
        assert lead_lengths == {1, 2, 3, 4}
        assert data.startswith(b"\xef\xbb\xbf")  # the UTF-8 BOM

    def test_projection_is_not_vacuous(self, utf8_plan):
        """Every item's multi-byte description region is actually copied --
        guards the whole class against passing on empty projections."""
        run = utf8_plan.session(binary=True).run(_utf8_document(items=8).encode("utf-8"))
        assert run.stats.regions_copied == 8
        assert _MULTIBYTE_TEXT.encode("utf-8") in run.output

    @pytest.mark.parametrize("chunk_size", list(range(1, 9)) + [13, 61, 257])
    def test_every_small_chunk_size(self, utf8_plan, chunk_size):
        document = _utf8_document()
        data = document.encode("utf-8")
        whole = utf8_plan.session(binary=True).run(data)
        assert whole.output  # never compare empty projections
        chunked = utf8_plan.session(binary=True).run(iter_chunks(data, chunk_size))
        assert chunked.output == whole.output
        assert stats_tuple(chunked.stats) == stats_tuple(whole.stats)
        # And the str shim agrees byte for byte after encoding.
        assert whole.output == utf8_plan.session().run(document).output.encode()

    def test_random_chunkings_property(self, utf8_plan):
        document = _utf8_document(items=12)
        data = document.encode("utf-8")
        whole = utf8_plan.session(binary=True).run(data)
        rng = random.Random(0xBEEF)
        for _ in range(25):
            pieces = []
            position = 0
            while position < len(data):
                size = rng.choice((1, 2, 3, 4, 5, 17, 64, 1024))
                pieces.append(data[position:position + size])
                position += size
            run = utf8_plan.session(binary=True).run(pieces)
            assert run.output == whole.output
            assert stats_tuple(run.stats) == stats_tuple(whole.stats)

    def test_boundaries_inside_every_multibyte_sequence(self, utf8_plan):
        """Split exactly inside each multi-byte sequence at least once."""
        document = _utf8_document(items=2)
        data = document.encode("utf-8")
        whole = utf8_plan.session(binary=True).run(data)
        # Every split position that lands inside a multi-byte sequence.
        inside = [
            index for index in range(1, len(data))
            if 0x80 <= data[index] < 0xC0
        ]
        assert inside, "document must contain multi-byte sequences"
        for split in inside:
            run = utf8_plan.session(binary=True).run([data[:split], data[split:]])
            assert run.output == whole.output
            assert stats_tuple(run.stats) == stats_tuple(whole.stats)

    def test_instrumented_backend_agrees(self, utf8_plan_instrumented):
        document = _utf8_document()
        data = document.encode("utf-8")
        whole = utf8_plan_instrumented.session(binary=True).run(data)
        for chunk_size in (1, 3, 64):
            run = utf8_plan_instrumented.session(binary=True).run(iter_chunks(data, chunk_size))
            assert run.output == whole.output
            assert stats_tuple(run.stats) == stats_tuple(whole.stats)

    def test_text_mode_decodes_only_projection(self, utf8_plan):
        """Text-mode output over split multi-byte input equals the shim."""
        document = _utf8_document()
        data = document.encode("utf-8")
        expected = utf8_plan.session().run(document).output
        for chunk_size in (1, 2, 5, 127):
            run = utf8_plan.session().run(iter_chunks(data, chunk_size))
            assert run.output == expected

    def test_multi_query_engine_on_split_utf8(self):
        from repro.dtd.model import Dtd

        dtd = Dtd.parse(UTF8_DTD_TEXT)
        document = _utf8_document()
        data = document.encode("utf-8")
        plans = [
            SmpPrefilter.compile(
                dtd, [path, "/site/tail#"], backend="native",
                add_default_paths=False,
            )
            for path in ("//item//description#", "//item//name#")
        ]
        engine = MultiQueryEngine(dtd, plans, backend="native")
        whole = engine.session(binary=True).run(data)
        assert all(output for output in whole.outputs)
        for chunk_size in (1, 3, 7, 256):
            run = engine.session(binary=True).run(iter_chunks(data, chunk_size))
            assert run.outputs == whole.outputs
            for chunked_stats, whole_stats in zip(run.stats, whole.stats):
                assert stats_tuple(chunked_stats) == stats_tuple(whole_stats)
