"""Equivalence and behaviour of the shared-scan multi-query engine.

The defining property of :class:`repro.core.multi.MultiQueryEngine` is that
sharing one document pass across N compiled queries changes the *cost*, not
the *result*: for every query, the projected output and the structural run
statistics must be byte-identical to running an independent
:class:`repro.core.prefilter.FilterSession`, across chunked and
whole-document input.
"""

from __future__ import annotations

import itertools

import pytest

from repro import MultiQueryEngine, SmpPrefilter
from repro.core.stream import iter_chunks
from repro.errors import QueryError, RuntimeFilterError
from repro.pipeline import XPathPipeline
from repro.workloads import load_dataset
from repro.workloads.medline import MEDLINE_QUERIES, MEDLINE_QUERY_ORDER, medline_dtd
from repro.workloads.xmark import XMARK_QUERIES, xmark_dtd

#: The statistics fields the engine replays exactly.  Matcher-level counters
#: (char_comparisons, shifts) accrue once on the shared scan instead of once
#: per query -- that is the saved work -- and timing fields are wall-clock.
STRUCTURAL_FIELDS = (
    "input_size",
    "output_size",
    "tokens_matched",
    "tokens_copied",
    "regions_copied",
    "initial_jumps",
    "initial_jump_chars",
    "local_scan_chars",
)

DOCUMENT_BYTES = 150_000
CHUNKINGS = (4096, 10 ** 9)  # chunked and effectively whole-document

XMARK_ORDER = sorted(XMARK_QUERIES)
XMARK_PAIRS = list(zip(XMARK_ORDER, XMARK_ORDER[1:]))
XMARK_TRIPLES = [tuple(XMARK_ORDER[i:i + 3]) for i in range(0, len(XMARK_ORDER) - 2, 3)]

MEDLINE_PAIRS = list(itertools.combinations(MEDLINE_QUERY_ORDER, 2))
MEDLINE_TRIPLES = list(itertools.combinations(MEDLINE_QUERY_ORDER, 3))


@pytest.fixture(scope="module")
def medline_document():
    return load_dataset("medline", size_bytes=DOCUMENT_BYTES)


@pytest.fixture(scope="module")
def xmark_document():
    return load_dataset("xmark", size_bytes=DOCUMENT_BYTES)


def assert_equivalent(dtd, specs, document, chunk_size):
    engine = MultiQueryEngine(dtd, specs, backend="native")
    run = engine.session().run(iter_chunks(document, chunk_size))
    for spec, output, stats in zip(specs, run.outputs, run.stats):
        plan = SmpPrefilter.cached_for_query(dtd, spec, backend="native")
        reference = plan.session().run(iter_chunks(document, chunk_size))
        assert output == reference.output, spec.name
        for field in STRUCTURAL_FIELDS:
            assert getattr(stats, field) == getattr(reference.stats, field), (
                spec.name, field
            )


class TestMedlineEquivalence:
    @pytest.mark.parametrize("names", MEDLINE_PAIRS + MEDLINE_TRIPLES,
                             ids="-".join)
    @pytest.mark.parametrize("chunk_size", CHUNKINGS)
    def test_pairs_and_triples(self, names, chunk_size, medline_document):
        specs = [MEDLINE_QUERIES[name] for name in names]
        assert_equivalent(medline_dtd(), specs, medline_document, chunk_size)

    def test_all_five_queries_at_once(self, medline_document):
        specs = [MEDLINE_QUERIES[name] for name in MEDLINE_QUERY_ORDER]
        assert_equivalent(medline_dtd(), specs, medline_document, 64 * 1024)


class TestXmarkEquivalence:
    @pytest.mark.parametrize("names", XMARK_PAIRS, ids="-".join)
    def test_pairs(self, names, xmark_document):
        specs = [XMARK_QUERIES[name] for name in names]
        assert_equivalent(xmark_dtd(), specs, xmark_document, 4096)

    @pytest.mark.parametrize("names", XMARK_TRIPLES, ids="-".join)
    @pytest.mark.parametrize("chunk_size", CHUNKINGS)
    def test_triples(self, names, chunk_size, xmark_document):
        specs = [XMARK_QUERIES[name] for name in names]
        assert_equivalent(xmark_dtd(), specs, xmark_document, chunk_size)


class TestEngineBehaviour:
    def test_duplicate_queries_share_one_plan_and_agree(self, medline_document):
        spec = MEDLINE_QUERIES["M2"]
        engine = MultiQueryEngine(medline_dtd(), [spec, spec], backend="native")
        assert engine.prefilters[0] is engine.prefilters[1]
        run = engine.session().run(medline_document)
        assert run.outputs[0] == run.outputs[1]

    def test_plan_cache_shared_across_engines(self):
        dtd = medline_dtd()
        first = MultiQueryEngine(dtd, [MEDLINE_QUERIES["M2"]], backend="native")
        second = MultiQueryEngine(dtd, [MEDLINE_QUERIES["M2"]], backend="native")
        assert first.prefilters[0] is second.prefilters[0]

    def test_sinks_receive_the_same_output(self, medline_document):
        specs = [MEDLINE_QUERIES[name] for name in ("M2", "M5")]
        engine = MultiQueryEngine(medline_dtd(), specs, backend="native")
        collected = [[], []]
        run = engine.session(sinks=[collected[0].append, collected[1].append]).run(iter_chunks(medline_document, 4096))
        buffered = engine.session().run(iter_chunks(medline_document, 4096))
        assert run.outputs == ["", ""]  # routed to the sinks instead
        assert ["".join(fragments) for fragments in collected] == buffered.outputs

    def test_memory_stays_bounded(self, medline_document):
        specs = [MEDLINE_QUERIES[name] for name in MEDLINE_QUERY_ORDER]
        engine = MultiQueryEngine(medline_dtd(), specs, backend="native")
        session = engine.session(sinks=[lambda _: None] * len(specs))
        chunk_size = 4096
        high_water = 0
        for chunk in iter_chunks(medline_document, chunk_size):
            session.feed(chunk)
            high_water = max(high_water, session.buffered_bytes)
        session.finish()
        # The retained window is the carry-over (suspended scan tail plus
        # un-flushed copy regions), never the document.
        assert high_water < 16 * chunk_size

    def test_per_query_matcher_counters_live_on_the_scan(self, medline_document):
        specs = [MEDLINE_QUERIES[name] for name in ("M2", "M4")]
        engine = MultiQueryEngine(medline_dtd(), specs, backend="native")
        run = engine.session().run(medline_document)
        assert run.scan_stats.char_comparisons > 0
        for stats in run.stats:
            assert stats.char_comparisons == 0

    def test_accepts_xpath_strings_and_prebuilt_plans(self, medline_document):
        dtd = medline_dtd()
        spec = MEDLINE_QUERIES["M2"]
        plan = SmpPrefilter.cached_for_query(dtd, spec, backend="native")
        engine = MultiQueryEngine(
            dtd, ["/MedlineCitationSet/MedlineCitation", plan], backend="native"
        )
        run = engine.session().run(medline_document)
        assert len(run.outputs) == 2
        reference = plan.session().run(iter_chunks(medline_document, 64 * 1024))
        assert run.outputs[1] == reference.output

    def test_rejects_empty_query_list(self):
        with pytest.raises(QueryError):
            MultiQueryEngine(medline_dtd(), [])

    def test_rejects_wrong_sink_count(self):
        engine = MultiQueryEngine(
            medline_dtd(), [MEDLINE_QUERIES["M2"]], backend="native"
        )
        with pytest.raises(QueryError):
            engine.session(sinks=[])

    def test_nonconforming_document_raises(self):
        engine = MultiQueryEngine(
            medline_dtd(), [MEDLINE_QUERIES["M2"]], backend="native"
        )
        session = engine.session()
        session.feed("<MedlineCitationSet><bogus>")
        with pytest.raises(RuntimeFilterError):
            session.finish()


class TestMultiPipeline:
    def test_matches_single_query_pipelines(self, medline_document):
        dtd = medline_dtd()
        queries = [MEDLINE_QUERIES[name].xpath for name in ("M2", "M5")]
        multi = XPathPipeline.multi(dtd, queries, backend="native")
        outcome = multi.evaluate(medline_document, chunk_size=8192)
        assert outcome.scan_stats.input_size == len(medline_document)
        for query, single_outcome in zip(queries, outcome.outcomes):
            single = XPathPipeline(dtd, query, backend="native")
            expected = single.evaluate(medline_document, chunk_size=8192)
            actual_items = [item.serialize() for item in single_outcome.results]
            expected_items = [item.serialize() for item in expected.results]
            assert actual_items == expected_items
            assert (
                single_outcome.filter_stats.output_size
                == expected.filter_stats.output_size
            )
