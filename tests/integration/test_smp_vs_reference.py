"""Integration tests: the SMP runtime agrees with the token-based reference
projector and is projection-safe on the experimental workloads."""

from __future__ import annotations

import pytest

from repro import SmpPrefilter
from repro.projection import ReferenceProjector
from repro.workloads.medline import MEDLINE_QUERIES, MEDLINE_QUERY_ORDER
from repro.workloads.xmark import XMARK_QUERIES, XMARK_QUERY_ORDER
from repro.xml import parse_document
from repro.xpath import evaluate_xpath, string_value


def _project_both(dtd, paths, document):
    prefilter = SmpPrefilter.compile(dtd, paths, add_default_paths=False)
    smp_output = prefilter.session().run(document).output
    reference_output = ReferenceProjector(
        paths, add_default_paths=False, alphabet=dtd.tag_names(),
    ).project_text(document).output
    return smp_output, reference_output


@pytest.mark.parametrize("query_name", XMARK_QUERY_ORDER)
def test_xmark_queries_agree_with_reference(
    query_name, xmark_dtd_fixture, xmark_document_small,
):
    spec = XMARK_QUERIES[query_name]
    smp_output, reference_output = _project_both(
        xmark_dtd_fixture, spec.parsed_paths(), xmark_document_small,
    )
    assert smp_output == reference_output


@pytest.mark.parametrize("query_name", MEDLINE_QUERY_ORDER)
def test_medline_queries_agree_with_reference(
    query_name, medline_dtd_fixture, medline_document_small,
):
    spec = MEDLINE_QUERIES[query_name]
    smp_output, reference_output = _project_both(
        medline_dtd_fixture, spec.parsed_paths(), medline_document_small,
    )
    assert smp_output == reference_output


@pytest.mark.parametrize("query_name", XMARK_QUERY_ORDER)
def test_xmark_projection_is_well_formed_and_smaller(
    query_name, xmark_dtd_fixture, xmark_document_small,
):
    spec = XMARK_QUERIES[query_name]
    prefilter = SmpPrefilter.compile(
        xmark_dtd_fixture, spec.parsed_paths(), add_default_paths=False,
    )
    run = prefilter.session().run(xmark_document_small)
    projected = parse_document(run.output)
    assert projected.root.name == "site"
    assert run.output_size < len(xmark_document_small)
    # SMP inspects only a fraction of the characters (Table I: at most 23%,
    # allow head-room for the small test document).
    assert run.stats.char_comparison_ratio < 45.0


@pytest.mark.parametrize("query_name", MEDLINE_QUERY_ORDER)
def test_medline_query_results_preserved_by_projection(
    query_name, medline_dtd_fixture, medline_document_small,
):
    """Projection-safety in action: evaluating the Table II XPath query on
    the projected document yields the same values as on the original."""
    spec = MEDLINE_QUERIES[query_name]
    prefilter = SmpPrefilter.compile(
        medline_dtd_fixture, spec.parsed_paths(), add_default_paths=False,
    )
    projected = prefilter.session().run(medline_document_small).output
    original_results = evaluate_xpath(spec.query, parse_document(medline_document_small))
    projected_results = evaluate_xpath(spec.query, parse_document(projected))
    assert [string_value(item) for item in original_results] == [
        string_value(item) for item in projected_results
    ]


def test_m1_projects_to_structure_only(medline_dtd_fixture, medline_document_small):
    """M1 targets an element that never occurs: the projection keeps only the
    top-level node (the paper reports a 0 MB projection)."""
    spec = MEDLINE_QUERIES["M1"]
    prefilter = SmpPrefilter.compile(
        medline_dtd_fixture, spec.parsed_paths(), add_default_paths=False,
    )
    run = prefilter.session().run(medline_document_small)
    assert run.output == "<MedlineCitationSet></MedlineCitationSet>"
    assert run.stats.projection_ratio < 0.001


def test_projection_sizes_order_matches_table1(xmark_dtd_fixture, xmark_document_small):
    """Relative projection sizes follow the paper: XM10/XM14 are the largest
    projections, XM6 (structure only) is among the smallest."""
    sizes = {}
    for name in ("XM5", "XM6", "XM10", "XM13", "XM14"):
        spec = XMARK_QUERIES[name]
        prefilter = SmpPrefilter.compile(
            xmark_dtd_fixture, spec.parsed_paths(), add_default_paths=False,
        )
        sizes[name] = prefilter.session().run(xmark_document_small).output_size
    assert sizes["XM14"] > sizes["XM13"] > sizes["XM6"]
    assert sizes["XM10"] > sizes["XM5"]


def test_native_backend_matches_instrumented_on_workload(
    xmark_dtd_fixture, xmark_document_small,
):
    spec = XMARK_QUERIES["XM19"]
    instrumented = SmpPrefilter.compile(
        xmark_dtd_fixture, spec.parsed_paths(), backend="instrumented",
        add_default_paths=False,
    ).session().run(xmark_document_small)
    native = SmpPrefilter.compile(
        xmark_dtd_fixture, spec.parsed_paths(), backend="native",
        add_default_paths=False,
    ).session().run(xmark_document_small)
    assert instrumented.output == native.output
