"""Property-based integration tests on randomly generated DTDs and documents.

Hypothesis drives a small document generator that emits random valid
documents for a fixed family of non-recursive DTDs together with random
projection-path sets; the SMP runtime must (i) agree with the token-based
reference projector and (ii) be projection-safe for the paths involved.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import Dtd, SmpPrefilter
from repro.projection import ProjectionPath, ReferenceProjector
from repro.xml import parse_document

#: A non-recursive schema with choices, repetition, optional elements,
#: attributes and multiple occurrences of the same tag in different contexts.
RANDOM_DTD = Dtd.parse(
    """<!DOCTYPE r [
    <!ELEMENT r (s, t*)>
    <!ELEMENT s (u | v)*>
    <!ELEMENT t (u, w?)>
    <!ELEMENT u (#PCDATA)>
    <!ELEMENT v (u, u?)>
    <!ELEMENT w EMPTY>
    <!ATTLIST w kind CDATA #REQUIRED>
    ]>"""
)

_PATH_POOL = [
    "/r/s#", "/r/s/u#", "/r/t#", "/r/t/u", "//u#", "//v#", "//w#",
    "/r/s/v/u#", "//t//u#", "/r/t/w",
]


def _generate_document(seed: int) -> str:
    """A random document valid w.r.t. RANDOM_DTD."""
    rng = random.Random(seed)

    def u() -> str:
        return f"<u>{rng.choice(['x', 'yy', 'data', ''])}</u>"

    def v() -> str:
        second = u() if rng.random() < 0.5 else ""
        return f"<v>{u()}{second}</v>"

    def s() -> str:
        children = "".join(rng.choice([u, v])() for _ in range(rng.randint(0, 4)))
        return f"<s>{children}</s>"

    def t() -> str:
        w = f'<w kind="k{rng.randint(0, 9)}"/>' if rng.random() < 0.5 else ""
        return f"<t>{u()}{w}</t>"

    body = s() + "".join(t() for _ in range(rng.randint(0, 4)))
    return f"<r>{body}</r>"


@settings(max_examples=120, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    path_indices=st.sets(
        st.integers(min_value=0, max_value=len(_PATH_POOL) - 1), min_size=1, max_size=3,
    ),
)
def test_smp_agrees_with_reference_on_random_documents(seed, path_indices) -> None:
    document = _generate_document(seed)
    paths = [_PATH_POOL[index] for index in sorted(path_indices)]
    prefilter = SmpPrefilter.compile(RANDOM_DTD, paths)
    reference = ReferenceProjector(paths, alphabet=RANDOM_DTD.tag_names())
    assert prefilter.session().run(document).output == reference.project_text(document).output


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    path_index=st.integers(min_value=0, max_value=len(_PATH_POOL) - 1),
)
def test_projection_preserves_path_results(seed, path_index) -> None:
    """Definition 2 (projection-safety) checked through node counts and
    labels of the projection path evaluated as an XPath query."""
    from repro.xpath import evaluate_xpath

    document = _generate_document(seed)
    path_text = _PATH_POOL[path_index]
    prefilter = SmpPrefilter.compile(RANDOM_DTD, [path_text])
    projected = prefilter.session().run(document).output

    probe = str(ProjectionPath.parse(path_text).without_flag())
    original_results = evaluate_xpath(probe, parse_document(document))
    projected_results = evaluate_xpath(probe, parse_document(projected))
    assert len(original_results) == len(projected_results)
    for left, right in zip(original_results, projected_results):
        assert left.name == right.name


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_projection_output_is_well_formed(seed) -> None:
    document = _generate_document(seed)
    prefilter = SmpPrefilter.compile(RANDOM_DTD, ["//u#", "/r/t#"])
    output = prefilter.session().run(document).output
    parsed = parse_document(output)
    assert parsed.root.name == "r"


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_projection_is_idempotent_on_random_documents(seed) -> None:
    document = _generate_document(seed)
    paths = ["//v#"]
    reference = ReferenceProjector(paths, alphabet=RANDOM_DTD.tag_names())
    once = reference.project_text(document).output
    twice = reference.project_text(once).output
    assert once == twice
