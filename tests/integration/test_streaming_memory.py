"""Acceptance test of the constant-memory streaming claim (Table I).

A >=10 MB generated XMark document is filtered twice: once with
``filter_text`` over the whole string (the reference) and once through the
chunked path with ``chunk_size=64 KiB``, where the input is read from disk
chunk by chunk and the output leaves through a hashing sink -- the streaming
run never holds the document (or its projection) in one string.  Output
bytes and every character-based statistic must be identical, and the peak
traced allocation size of the streaming run must stay O(chunk + carry
window), orders of magnitude below the document size.
"""

from __future__ import annotations

import hashlib
import tracemalloc

import pytest

from repro import SmpPrefilter
from repro.workloads.xmark import XMARK_QUERIES, generate_xmark_document, xmark_dtd

TARGET_BYTES = 10 * 1024 * 1024
CHUNK_SIZE = 64 * 1024
#: Peak traced allocations allowed for the streaming run.  The window carry
#: plus one 64 KiB chunk plus bookkeeping stays far below this; the document
#: itself is 10 MB, so the bound proves O(chunk) rather than O(document).
PEAK_BUDGET_BYTES = 8 * 1024 * 1024


def comparison_stats(stats):
    return (
        stats.input_size,
        stats.output_size,
        stats.char_comparisons,
        stats.local_scan_chars,
        stats.shifts,
        stats.shift_total,
        stats.initial_jumps,
        stats.initial_jump_chars,
        stats.tokens_matched,
        stats.tokens_copied,
        stats.regions_copied,
    )


@pytest.fixture(scope="module")
def large_document_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("streaming") / "xmark-10mb.xml"
    written = 0
    # The generator is deterministic in (scale, seed); scale 10 yields ~10 MB.
    scale = 10.0
    while True:
        document = generate_xmark_document(scale=scale, seed=20260730)
        written = len(document)
        if written >= TARGET_BYTES:
            break
        scale *= 1.3
    path.write_text(document, encoding="utf-8")
    return str(path)


def test_streaming_10mb_is_byte_identical_and_bounded(large_document_path):
    prefilter = SmpPrefilter.compile_for_query(
        xmark_dtd(), XMARK_QUERIES["XM2"], backend="native"
    )

    # Reference: the whole document in one string.
    with open(large_document_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert len(text) >= TARGET_BYTES
    reference = prefilter.session().run(text)
    reference_digest = hashlib.sha256(reference.output.encode()).hexdigest()
    reference_length = len(reference.output)
    reference_stats = comparison_stats(reference.stats)
    del reference, text  # nothing of the whole-document run survives

    # Streaming: disk -> 64 KiB chunks -> hashing sink; no whole string.
    digest = hashlib.sha256()
    emitted = 0

    def sink(fragment: str) -> None:
        nonlocal emitted
        digest.update(fragment.encode())
        emitted += len(fragment)

    tracemalloc.start()
    streamed = prefilter.session(sink=sink).run(open(large_document_path, "rb"), chunk_size=CHUNK_SIZE)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert streamed.output == ""  # the sink consumed everything
    assert emitted == reference_length
    assert digest.hexdigest() == reference_digest
    assert streamed.stats.output_size == reference_length
    assert comparison_stats(streamed.stats) == reference_stats

    # O(chunk + carry window), not O(document).
    assert peak < PEAK_BUDGET_BYTES, f"peak {peak} bytes exceeds budget"


def test_streaming_instrumented_backend_statistics_match_on_1mb():
    """The paper's instrumented configuration stays bit-identical too."""
    document = generate_xmark_document(scale=1.0, seed=77)
    prefilter = SmpPrefilter.compile_for_query(
        xmark_dtd(), XMARK_QUERIES["XM1"], backend="instrumented"
    )
    reference = prefilter.session().run(document)
    streamed = prefilter.session().run(document, chunk_size=CHUNK_SIZE)
    assert streamed.output == reference.output
    assert comparison_stats(streamed.stats) == comparison_stats(reference.stats)
