"""Tests for the streaming tokenizer (the SAX baseline)."""

from __future__ import annotations

import pytest

from repro.errors import XmlSyntaxError
from repro.xml import TokenKind, XmlTokenizer, structural_tokens, tokenize


def kinds(text: str) -> list[TokenKind]:
    return [token.kind for token in tokenize(text)]


class TestBasicTokenization:
    def test_simple_element_with_text(self):
        tokens = tokenize("<a>hello</a>")
        assert [token.kind for token in tokens] == [
            TokenKind.START_TAG, TokenKind.TEXT, TokenKind.END_TAG,
        ]
        assert tokens[0].name == "a"
        assert tokens[1].text == "hello"
        assert tokens[2].name == "a"

    def test_nested_elements(self):
        tokens = tokenize("<a><b><c/></b></a>")
        names = [(token.kind, token.name) for token in tokens]
        assert names == [
            (TokenKind.START_TAG, "a"),
            (TokenKind.START_TAG, "b"),
            (TokenKind.EMPTY_TAG, "c"),
            (TokenKind.END_TAG, "b"),
            (TokenKind.END_TAG, "a"),
        ]

    def test_attributes_are_parsed_in_order(self):
        tokens = tokenize('<item id="i1" lang=\'en\'>x</item>')
        assert tokens[0].attributes == (("id", "i1"), ("lang", "en"))
        assert tokens[0].attribute("id") == "i1"
        assert tokens[0].attribute("missing", "default") == "default"

    def test_empty_tag_with_attributes(self):
        tokens = tokenize('<root><incategory category="c12"/></root>')
        assert tokens[1].kind is TokenKind.EMPTY_TAG
        assert tokens[1].attributes == (("category", "c12"),)

    def test_whitespace_inside_tags_is_tolerated(self):
        # The paper notes "<t >" is valid while "< t>" is not.
        tokens = tokenize("<item ><name >x</name ></item>")
        assert tokens[0].name == "item"
        assert tokens[1].name == "name"

    def test_token_positions_cover_the_source(self):
        text = "<a><b>text</b></a>"
        tokens = tokenize(text)
        assert tokens[0].start == 0 and tokens[0].end == 3
        assert text[tokens[2].start:tokens[2].end] == "text"
        assert tokens[-1].end == len(text)

    def test_attribute_value_containing_gt(self):
        tokens = tokenize('<a note="x > y">t</a>')
        assert tokens[0].attribute("note") == "x > y"

    def test_entity_references_left_verbatim_in_text(self):
        tokens = tokenize("<a>x &lt; y &amp; z</a>")
        assert tokens[1].text == "x &lt; y &amp; z"


class TestPrologAndMiscellaneous:
    def test_xml_declaration(self):
        tokens = tokenize('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert tokens[0].kind is TokenKind.XML_DECLARATION
        assert tokens[1].kind is TokenKind.EMPTY_TAG

    def test_doctype_with_internal_subset(self):
        text = "<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>x</a>"
        tokens = tokenize(text)
        assert tokens[0].kind is TokenKind.DOCTYPE
        assert "<!ELEMENT a" in tokens[0].text
        assert tokens[1].kind is TokenKind.START_TAG

    def test_comments_and_processing_instructions(self):
        tokens = tokenize("<a><!-- note --><?target data?></a>")
        assert tokens[1].kind is TokenKind.COMMENT
        assert tokens[1].text == " note "
        assert tokens[2].kind is TokenKind.PROCESSING_INSTRUCTION
        assert tokens[2].name == "target"

    def test_cdata_section(self):
        tokens = tokenize("<a><![CDATA[1 < 2 && 3 > 2]]></a>")
        assert tokens[1].kind is TokenKind.CDATA
        assert tokens[1].text == "1 < 2 && 3 > 2"

    def test_structural_tokens_drops_prolog(self):
        text = '<?xml version="1.0"?><!DOCTYPE a><a><!--c-->x</a>'
        tokens = structural_tokens(text)
        assert [token.kind for token in tokens] == [
            TokenKind.START_TAG, TokenKind.TEXT, TokenKind.END_TAG,
        ]


class TestWellFormednessChecks:
    @pytest.mark.parametrize("text", [
        "<a><b></a></b>",          # mismatched nesting
        "<a>unclosed",             # missing end tag
        "</a>",                    # end tag without start
        "<a></a><b></b>",          # two root elements
        "<a foo>bar</a>",          # attribute without value
        "<a foo=bar>x</a>",        # unquoted attribute value
        "<a",                      # truncated tag
        "text outside <a/>",       # character data before the root
        "<a><!-- unterminated</a>",
        "<a><![CDATA[oops</a>",
    ])
    def test_malformed_documents_raise(self, text):
        with pytest.raises(XmlSyntaxError):
            tokenize(text)

    def test_error_reports_position(self):
        with pytest.raises(XmlSyntaxError) as excinfo:
            tokenize("<a><b></c></a>")
        assert excinfo.value.position is not None

    def test_statistics_count_characters(self):
        text = "<a><b>x</b></a>"
        tokenizer = XmlTokenizer(text)
        tokens = list(tokenizer.tokens())
        assert tokenizer.stats.characters_read == len(text)
        assert tokenizer.stats.tokens_emitted == len(tokens)


class TestWorkloadDocuments:
    def test_generated_xmark_document_tokenizes(self, xmark_document_small):
        tokens = structural_tokens(xmark_document_small)
        assert tokens[0].name == "site"
        assert tokens[-1].name == "site"
        assert any(token.name == "australia" for token in tokens)

    def test_generated_medline_document_tokenizes(self, medline_document_small):
        tokens = structural_tokens(medline_document_small)
        assert tokens[0].name == "MedlineCitationSet"
        assert any(token.name == "AbstractText" for token in tokens)
