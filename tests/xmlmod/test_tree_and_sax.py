"""Tests for the in-memory tree, the SAX driver, escaping and serialization."""

from __future__ import annotations

import pytest

from repro.errors import XmlSyntaxError
from repro.xml import (
    EventCollector,
    TokenKind,
    XmlElement,
    element,
    escape_attribute,
    escape_text,
    parse_document,
    parse_with_handler,
    serialize_tokens,
    strip_insignificant_whitespace,
    tokenize,
    unescape,
)


class TestEscaping:
    def test_escape_text_handles_markup_characters(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_attribute_also_escapes_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"
        assert escape_attribute("it's") == "it&apos;s"

    def test_unescape_round_trip(self):
        original = "a < b & \"c\" 'd' > e"
        assert unescape(escape_attribute(original)) == original


class TestTreeConstruction:
    def test_parse_document_builds_expected_structure(self):
        document = parse_document("<a id='1'><b>x</b><b>y</b><c/></a>")
        root = document.root
        assert root.name == "a"
        assert root.attributes == {"id": "1"}
        assert [child.name for child in root.child_elements] == ["b", "b", "c"]
        assert root.find_children("b")[1].text_content() == "y"

    def test_text_content_concatenates_subtree(self):
        document = parse_document("<a>one<b>two</b>three</a>")
        assert document.root.text_content() == "onetwothree"
        assert document.root.direct_text() == "onethree"

    def test_iter_descendants_in_document_order(self):
        document = parse_document("<a><b><c/></b><d/></a>")
        names = [node.name for node in document.root.iter_descendants()]
        assert names == ["b", "c", "d"]

    def test_ancestors_and_path_from_root(self):
        document = parse_document("<a><b><c/></b></a>")
        c = document.root.find_descendants("c")[0]
        assert [node.name for node in c.ancestors()] == ["b", "a"]
        assert [node.name for node in c.path_from_root()] == ["a", "b", "c"]

    def test_element_helper_constructor(self):
        node = element("item", element("name", "TV"), id="i3")
        assert node.serialize() == '<item id="i3"><name>TV</name></item>'

    def test_structure_equal_ignores_whitespace_text(self):
        left = parse_document("<a><b>x</b></a>").root
        right = parse_document("<a>\n  <b>x</b>\n</a>").root
        assert left.structure_equal(right)

    def test_structure_equal_detects_differences(self):
        left = parse_document("<a><b>x</b></a>").root
        right = parse_document("<a><b>y</b></a>").root
        assert not left.structure_equal(right)
        assert left.structure_equal(right, compare_text=False)

    def test_document_element_count(self):
        document = parse_document("<a><b/><b/><c><d/></c></a>")
        assert document.element_count() == 5

    def test_serialize_round_trip(self):
        text = '<a id="1"><b>x &amp; y</b><c/></a>'
        document = parse_document(text)
        assert document.serialize() == text

    def test_doctype_and_declaration_preserved(self):
        text = '<?xml version="1.0"?><!DOCTYPE a><a/>'
        document = parse_document(text)
        assert document.declaration == 'version="1.0"'
        assert document.doctype == "a"
        assert document.serialize() == text

    def test_mismatched_document_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse_document("<a><b></a>")


class TestSaxDriver:
    def test_events_in_document_order(self):
        collector = EventCollector()
        parse_with_handler("<a><b x='1'>t</b><c/></a>", collector)
        assert collector.events == [
            ("start-document",),
            ("start", "a", ()),
            ("start", "b", (("x", "1"),)),
            ("text", "t"),
            ("end", "b"),
            ("start", "c", ()),
            ("end", "c"),
            ("end", "a"),
            ("end-document",),
        ]

    def test_bachelor_tags_produce_start_and_end(self):
        collector = EventCollector()
        parse_with_handler("<a/>", collector)
        assert ("start", "a", ()) in collector.events
        assert ("end", "a") in collector.events


class TestTokenSerialization:
    def test_round_trip_through_tokens(self):
        text = '<site><item id="i1"><name>Palm Zire 71</name></item><empty/></site>'
        assert serialize_tokens(tokenize(text)) == text

    def test_strip_insignificant_whitespace(self):
        tokens = tokenize("<a>  <b>x</b>\n</a>")
        stripped = strip_insignificant_whitespace(tokens)
        assert all(
            token.kind is not TokenKind.TEXT or token.text.strip() for token in stripped
        )

    def test_serialize_escapes_text_tokens(self):
        document = parse_document("<a>x &lt; y</a>")
        assert "&lt;" in document.serialize()


class TestSerializationOfBuiltTrees:
    def test_empty_element_serializes_as_bachelor_tag(self):
        assert XmlElement(name="empty").serialize() == "<empty/>"

    def test_attributes_are_escaped(self):
        node = element("a", note='x "y" < z')
        assert node.serialize() == '<a note="x &quot;y&quot; &lt; z"/>'

    def test_indented_serialization_is_reparsable(self):
        node = element("a", element("b", "x"), element("c"))
        pretty = node.serialize(indent="  ")
        assert parse_document(pretty).root.structure_equal(node)
