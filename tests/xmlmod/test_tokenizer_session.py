"""Equivalence of the incremental tokenizer with the batch tokenizer."""

from __future__ import annotations

import random

import pytest

from repro.accel import accel_available
from repro.errors import XmlSyntaxError
from repro.xml.tokenizer import TokenizerSession, XmlTokenizer, iter_tokens
from repro.workloads.xmark import generate_xmark_document

accel_only = pytest.mark.skipif(
    not accel_available(), reason="repro._accel extension not built"
)

PROLOG_DOCUMENT = (
    '<?xml version="1.0" encoding="utf-8"?>\n'
    "<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]>\n"
    "<a attr='x>y'>text<!-- a > comment --><![CDATA[raw < markup]]>"
    "<b c=\"1\" d=\"2\"/>tail<?target data?></a>\n"
)


def chunked(text, size):
    return (text[index:index + size] for index in range(0, len(text), size))


def session_tokens(text, size):
    session = TokenizerSession()
    tokens = []
    for chunk in chunked(text, size):
        tokens.extend(session.feed(chunk))
    tokens.extend(session.finish())
    return tokens, session


class TestEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, 64, 10_000])
    def test_prolog_document_all_chunk_sizes(self, chunk_size):
        reference = list(XmlTokenizer(PROLOG_DOCUMENT).tokens())
        tokens, session = session_tokens(PROLOG_DOCUMENT, chunk_size)
        assert tokens == reference
        assert session.stats.characters_read == len(PROLOG_DOCUMENT)
        assert session.stats.tokens_emitted == len(reference)

    def test_random_documents_random_chunkings(self):
        rng = random.Random(5)
        for _ in range(4):
            document = generate_xmark_document(
                scale=rng.uniform(0.002, 0.01), seed=rng.randint(0, 9999)
            )
            reference = list(XmlTokenizer(document).tokens())
            size = rng.choice([1, 3, 17, 256])
            tokens, _ = session_tokens(document, size)
            assert tokens == reference

    def test_iter_tokens_streams(self, figure2_document):
        reference = list(XmlTokenizer(figure2_document).tokens())
        assert list(iter_tokens(chunked(figure2_document, 3))) == reference


class TestErrors:
    def test_unclosed_element_at_finish(self):
        session = TokenizerSession()
        session.feed("<a><b>text</b>")
        with pytest.raises(XmlSyntaxError, match="unclosed element <a>"):
            session.finish()

    def test_truncated_tag_at_finish(self):
        session = TokenizerSession()
        session.feed("<a><b attr='val")
        with pytest.raises(XmlSyntaxError, match="unterminated"):
            session.finish()

    def test_mismatched_closing_tag_raises_during_feed(self):
        session = TokenizerSession()
        with pytest.raises(XmlSyntaxError, match="mismatched closing tag"):
            for chunk in chunked("<a><b></a></b>", 2):
                session.feed(chunk)

    def test_error_offsets_are_absolute(self):
        batch_error = None
        try:
            list(XmlTokenizer("<a>ok</a><a>dup</a>").tokens())
        except XmlSyntaxError as error:
            batch_error = error
        assert batch_error is not None
        session = TokenizerSession()
        with pytest.raises(XmlSyntaxError) as caught:
            for chunk in chunked("<a>ok</a><a>dup</a>", 3):
                session.feed(chunk)
            session.finish()
        assert caught.value.position == batch_error.position

    def test_feed_after_finish_is_rejected(self):
        session = TokenizerSession()
        session.feed("<a/>")
        session.finish()
        with pytest.raises(XmlSyntaxError):
            session.feed("<b/>")


@accel_only
class TestBoundaryKernel:
    """The C token-boundary kernel against the pure `_extract_one` loop.

    The kernel only finds *complete-token* boundaries; classification and
    token construction stay in Python, so the two paths must agree on
    every token, every statistic, and every resumption state -- including
    the markup forms the boundary scanner special-cases (PIs, comments,
    CDATA, DOCTYPE internal subsets, quoted attribute values with ``>``).
    """

    DOCUMENTS = (
        PROLOG_DOCUMENT,
        # Quote state suspended mid-attribute, '>' inside quotes, CDATA
        # with stray ']]' runs, PI whose '?' can land on a chunk edge.
        "<r a='1' b=\"x>y\"><![CDATA[ ]] ]>] ]]><?p q??></r>",
        # DOCTYPE bracket depth carried across chunk boundaries.
        "<!DOCTYPE r [<!ELEMENT r (#PCDATA)><!-- d c -->]>\n<r>t</r>",
    )

    @staticmethod
    def drive(session, text, size):
        tokens = []
        for chunk in chunked(text, size):
            tokens.extend(session.feed(chunk))
        tokens.extend(session.finish())
        return tokens

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64, 10_000])
    def test_kernel_matches_pure_fallback(self, chunk_size):
        for document in self.DOCUMENTS:
            kernel = TokenizerSession()
            assert kernel._boundary is not None
            fallback = TokenizerSession()
            fallback._boundary = None  # force the pure per-token loop
            assert (
                self.drive(kernel, document, chunk_size)
                == self.drive(fallback, document, chunk_size)
            )
            assert kernel.stats.characters_read == fallback.stats.characters_read
            assert kernel.stats.tokens_emitted == fallback.stats.tokens_emitted

    def test_kernel_declines_non_latin1_buffers(self):
        # U+2603 widens the str buffer beyond UCS1, so the kernel returns
        # None and the session transparently takes the pure path -- the
        # token stream must not change.
        document = "<a>café ☃<b/></a>"
        reference = list(XmlTokenizer(document).tokens())
        for chunk_size in (1, 3, 64):
            tokens, _ = session_tokens(document, chunk_size)
            assert tokens == reference

    def test_kernel_random_documents(self):
        rng = random.Random(11)
        for _ in range(3):
            document = generate_xmark_document(
                scale=rng.uniform(0.002, 0.008), seed=rng.randint(0, 9999)
            )
            size = rng.choice([2, 17, 256])
            kernel = TokenizerSession()
            fallback = TokenizerSession()
            fallback._boundary = None
            assert (
                self.drive(kernel, document, size)
                == self.drive(fallback, document, size)
            )

    def test_kernel_error_offsets_match_pure(self):
        document = "<a>ok</a><a>dup</a>"
        positions = []
        for boundary in (True, False):
            session = TokenizerSession()
            if not boundary:
                session._boundary = None
            with pytest.raises(XmlSyntaxError) as caught:
                for chunk in chunked(document, 3):
                    session.feed(chunk)
                session.finish()
            positions.append(caught.value.position)
        assert positions[0] == positions[1]
