"""Tests for the relevance conditions (Definition 3) and the reference projector."""

from __future__ import annotations

import pytest

from repro.projection import (
    ProjectionPath,
    ReferenceProjector,
    RelevanceChecker,
    build_checker,
    parse_projection_paths,
    project_document,
)
from repro.xml import parse_document


class TestRelevanceConditions:
    def test_c1_leaf_matched_by_path(self):
        checker = build_checker(["/a/b"], add_default=False)
        decision = checker.decide(["a"], "b")
        assert decision.relevant and decision.condition == "C1"

    def test_c1_via_prefix_path(self):
        # Ancestors of selected nodes are kept through the prefix closure.
        checker = build_checker(["/a/b"], add_default=False)
        decision = checker.decide([], "a")
        assert decision.relevant and decision.condition == "C1"

    def test_c2_descendants_of_flagged_nodes(self):
        checker = build_checker(["/a/b#"], add_default=False)
        assert checker.decide(["a", "b"], "x").condition == "C2"
        assert checker.decide(["a", "b", "x"], "y").condition == "C2"
        assert checker.decide(["a", "b"], None).condition == "C2"

    def test_text_not_kept_without_flag(self):
        checker = build_checker(["/a/b"], add_default=False)
        assert not checker.decide(["a", "b"], None).relevant

    def test_irrelevant_sibling(self):
        checker = build_checker(["/a/b#"], add_default=False)
        assert not checker.decide(["a"], "z").relevant
        assert not checker.decide(["a", "z"], "b").relevant

    def test_c3_example6(self):
        # Example 6: P = {/*, /a/b#, //b#}; the c-tags in <a><c><b>... are
        # relevant because both /a/b and //b# match <a><b/></a>.
        checker = build_checker(["/*", "/a/b#", "//b#"], add_default=False,
                                alphabet={"a", "b", "c"})
        decision = checker.decide(["a"], "c")
        assert decision.relevant and decision.condition == "C3"

    def test_c3_does_not_fire_without_descendant_path(self):
        checker = build_checker(["/*", "/a/b#"], add_default=False,
                                alphabet={"a", "b", "c"})
        assert not checker.decide(["a"], "c").relevant

    def test_keeps_subtree_only_for_flagged_matches(self):
        checker = build_checker(["/a/b#", "/a/c"], add_default=False)
        assert checker.keeps_subtree(["a", "b"])
        assert checker.keeps_subtree(["a", "b", "deep"])
        assert not checker.keeps_subtree(["a", "c"])

    def test_empty_branch_relevant_for_root_path(self):
        checker = RelevanceChecker(parse_projection_paths(["/a/b"]))
        assert checker.branch_relevant([]).relevant  # "/" is a prefix of /a/b

    def test_decisions_are_cached(self):
        checker = build_checker(["/a/b#"], add_default=False)
        first = checker.decide(("a",), "b")
        second = checker.decide(("a",), "b")
        assert first is second


class TestReferenceProjector:
    def test_paper_example1_projection(self, figure2_document):
        # Prefiltering //australia//description# keeps the australia node,
        # its description descendants, and the top-level site node.
        output = project_document(
            figure2_document, ["//australia//description#"],
        )
        assert "<australia>" in output
        assert "<description>Palm Zire 71</description>" in output
        assert output.startswith("<site>") and output.endswith("</site>")
        assert "africa" not in output
        assert "LCD-FlatPanel" not in output

    def test_example2_projection(self):
        projector = ReferenceProjector(["/a/b#"], add_default_paths=False)
        document = "<a><b>one</b><c><b>two</b></c><b>three</b></a>"
        result = projector.project_text(document)
        assert result.output == "<a><b>one</b><b>three</b></a>"
        assert result.tokens_kept < result.tokens_seen
        assert 0.0 < result.reduction_ratio < 1.0

    def test_example6_keeps_stopover_c_tags(self):
        projector = ReferenceProjector(["/*", "/a/b#", "//b#"], add_default_paths=False,
                                       alphabet={"a", "b", "c"})
        document = "<a><c><b>T</b></c></a>"
        result = projector.project_text(document)
        assert result.output == "<a><c><b>T</b></c></a>"

    def test_unflagged_path_keeps_structure_only(self):
        output = project_document("<a><b>text<b/></b></a>", ["/a/b"])
        assert output == "<a><b></b></a>"

    def test_projection_is_idempotent(self, figure2_document):
        paths = ["//australia//description#"]
        once = project_document(figure2_document, paths)
        twice = project_document(once, paths)
        assert once == twice

    def test_projected_document_is_well_formed(self, xmark_document_small):
        output = project_document(
            xmark_document_small, ["/site/regions/australia/item/name#"],
        )
        document = parse_document(output)
        assert document.root.name == "site"

    def test_attribute_preservation(self):
        projector = ReferenceProjector(["/a/b#"])
        result = projector.project_text('<a><b id="1">x</b><c id="2"/></a>')
        assert 'id="1"' in result.output
        assert 'id="2"' not in result.output

    def test_condition_counters_populated(self):
        projector = ReferenceProjector(["/a/b#"], add_default_paths=False)
        result = projector.project_text("<a><b>x</b></a>")
        assert result.kept_by_condition.get("C1", 0) >= 1


class TestProjectionSafety:
    """Definition 2: query results on original and projection are top-level equal."""

    @pytest.mark.parametrize("paths, document, probe", [
        (["/a/b#"], "<a><b>x</b><c><b>y</b></c></a>", "/a/b"),
        (["//b#"], "<a><c><b>x</b></c><b>y</b></a>", "//b"),
        (["/a/c#", "/a/b"], "<a><b>drop</b><c>keep</c></a>", "/a/c"),
    ])
    def test_probe_results_preserved(self, paths, document, probe):
        from repro.xpath import evaluate_xpath

        projected = project_document(document, paths)
        original_results = evaluate_xpath(probe, parse_document(document))
        projected_results = evaluate_xpath(probe, parse_document(projected))
        assert len(original_results) == len(projected_results)
        for left, right in zip(original_results, projected_results):
            assert getattr(left, "name", left) == getattr(right, "name", right)
