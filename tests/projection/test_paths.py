"""Tests for projection-path parsing, P+ closure, and branch matching."""

from __future__ import annotations

import pytest

from repro.errors import ProjectionPathError
from repro.projection import (
    ProjectionPath,
    ensure_default_paths,
    extend_with_prefixes,
    parse_projection_paths,
)
from repro.projection.paths import Axis


class TestParsing:
    def test_simple_child_path(self):
        path = ProjectionPath.parse("/site/regions/australia")
        assert [step.name for step in path.steps] == ["site", "regions", "australia"]
        assert all(step.axis is Axis.CHILD for step in path.steps)
        assert not path.keep_subtree

    def test_descendant_axis_and_flag(self):
        path = ProjectionPath.parse("//australia//description#")
        assert path.keep_subtree
        assert [step.axis for step in path.steps] == [Axis.DESCENDANT, Axis.DESCENDANT]

    def test_wildcard_step(self):
        path = ProjectionPath.parse("/*")
        assert path.steps[0].name == "*"
        assert path.steps[0].matches_name("anything")

    def test_root_path(self):
        path = ProjectionPath.parse("/")
        assert path.steps == ()
        assert str(path) == "/"

    def test_str_round_trip(self):
        for text in ("/a/b", "//a//b#", "/a//b", "/*", "/site/regions//item#"):
            assert str(ProjectionPath.parse(text)) == text

    @pytest.mark.parametrize("bad", ["", "a/b", "/a/", "/a//", "/#", "/a b"])
    def test_malformed_paths_raise(self, bad):
        with pytest.raises(ProjectionPathError):
            ProjectionPath.parse(bad)

    def test_parse_many(self):
        paths = parse_projection_paths(["/a", "/a/b#"])
        assert len(paths) == 2
        assert paths[1].keep_subtree


class TestPrefixClosure:
    def test_prefixes_of_a_child_path(self):
        # Example from Section III: for /a/b we add / and /a.
        path = ProjectionPath.parse("/a/b")
        prefixes = {str(prefix) for prefix in path.prefixes()}
        assert prefixes == {"/", "/a"}

    def test_prefixes_never_carry_the_flag(self):
        path = ProjectionPath.parse("/a/b#")
        assert all(not prefix.keep_subtree for prefix in path.prefixes())

    def test_extend_with_prefixes_deduplicates(self):
        paths = parse_projection_paths(["/a/b#", "/a/c"])
        extended = extend_with_prefixes(paths)
        texts = [str(path) for path in extended]
        assert texts.count("/a") == 1
        assert texts.count("/") == 1
        assert "/a/b#" in texts and "/a/c" in texts

    def test_example6_closure(self):
        # P = {/*, /a/b#, //b#}  =>  P+ = P plus { /, /a }.
        paths = parse_projection_paths(["/*", "/a/b#", "//b#"])
        extended = {str(path) for path in extend_with_prefixes(paths)}
        assert extended == {"/*", "/a/b#", "//b#", "/", "/a"}

    def test_ensure_default_paths_adds_top_level(self):
        paths = ensure_default_paths(parse_projection_paths(["/a/b#"]))
        assert any(str(path) == "/*" for path in paths)

    def test_ensure_default_paths_is_idempotent(self):
        paths = ensure_default_paths(parse_projection_paths(["/*", "/a#"]))
        assert sum(1 for path in paths if str(path) == "/*") == 1


class TestBranchMatching:
    def test_child_path_matches_exact_chain(self):
        path = ProjectionPath.parse("/a/b")
        assert path.matches_leaf(["a", "b"])
        assert not path.matches_leaf(["a", "c"])
        assert not path.matches_leaf(["a"])
        assert not path.matches_leaf(["x", "a", "b"])

    def test_descendant_path_matches_at_any_depth(self):
        path = ProjectionPath.parse("//b")
        assert path.matches_leaf(["b"])
        assert path.matches_leaf(["a", "b"])
        assert path.matches_leaf(["a", "c", "b"])
        assert not path.matches_leaf(["a", "c"])

    def test_mixed_axes(self):
        path = ProjectionPath.parse("/site//item/name")
        assert path.matches_leaf(["site", "regions", "africa", "item", "name"])
        assert path.matches_leaf(["site", "item", "name"])
        assert not path.matches_leaf(["site", "regions", "name"])

    def test_wildcard_matches_any_tag(self):
        path = ProjectionPath.parse("/*")
        assert path.matches_leaf(["site"])
        assert not path.matches_leaf(["site", "regions"])

    def test_root_path_matches_only_the_empty_branch(self):
        path = ProjectionPath.parse("/")
        assert path.matches_leaf([])
        assert not path.matches_leaf(["a"])

    def test_matches_any_detects_interior_nodes(self):
        path = ProjectionPath.parse("/a/b#")
        assert path.matches_any(["a", "b", "x", "y"])
        assert not path.matches_any(["a", "c", "x"])

    def test_match_positions_for_descendant_axis(self):
        path = ProjectionPath.parse("//b")
        assert path.match_positions(["a", "b", "c", "b"]) == {1, 3}

    def test_repeated_descendant_steps(self):
        path = ProjectionPath.parse("//a//a")
        assert path.matches_leaf(["a", "x", "a"])
        assert not path.matches_leaf(["a"])

    def test_without_flag(self):
        flagged = ProjectionPath.parse("/a/b#")
        assert flagged.without_flag() == ProjectionPath.parse("/a/b")
        assert flagged.without_flag().keep_subtree is False
