"""Tests for the XPath-subset parser and the in-memory evaluator."""

from __future__ import annotations

import pytest

from repro.errors import XPathSyntaxError
from repro.xml import parse_document
from repro.xpath import (
    ComparisonExpr,
    ContainsExpr,
    NodeTestKind,
    XPathAxis,
    evaluate_xpath,
    parse_xpath,
    serialize_results,
    string_value,
)

DOCUMENT = parse_document(
    "<library>"
    "  <shelf id='s1'>"
    "    <book lang='en'><title>Query Processing</title>"
    "      <author><last>Koch</last></author><year>2008</year></book>"
    "    <book lang='de'><title>Stream Systems</title>"
    "      <author><last>Scherzinger</last></author><year>2007</year></book>"
    "  </shelf>"
    "  <shelf id='s2'>"
    "    <book lang='en'><title>XML Projection</title>"
    "      <author><last>Schmidt</last></author><year>2008</year>"
    "      <note>Contains NASA material</note></book>"
    "  </shelf>"
    "</library>"
)


class TestParser:
    def test_child_and_descendant_axes(self):
        path = parse_xpath("/library//book/title")
        assert [step.axis for step in path.steps] == [
            XPathAxis.CHILD, XPathAxis.DESCENDANT, XPathAxis.CHILD,
        ]

    def test_text_step(self):
        path = parse_xpath("/library//title/text()")
        assert path.steps[-1].test.kind is NodeTestKind.TEXT

    def test_predicate_with_equality(self):
        path = parse_xpath('/library//book[author/last="Koch"]/title')
        predicate = path.steps[1].predicates[0]
        assert isinstance(predicate, ComparisonExpr)
        assert predicate.right.value == "Koch"

    def test_predicate_with_contains(self):
        path = parse_xpath('/library//note[contains(text(),"NASA")]')
        predicate = path.steps[1].predicates[0]
        assert isinstance(predicate, ContainsExpr)
        assert predicate.needle.value == "NASA"

    def test_boolean_or_predicate(self):
        path = parse_xpath('/l//b[x="1" or y="2"]')
        predicate = path.steps[1].predicates[0]
        assert predicate.operator == "or"
        assert len(predicate.operands) == 2

    def test_wildcard_step(self):
        path = parse_xpath("/library/*/book")
        assert path.steps[1].test.name == "*"

    def test_attribute_predicate(self):
        path = parse_xpath('/library/shelf[@id="s1"]/book')
        assert path.steps[1].predicates

    def test_table2_queries_parse(self):
        from repro.workloads.medline import MEDLINE_QUERIES
        for spec in MEDLINE_QUERIES.values():
            assert parse_xpath(spec.query).steps

    @pytest.mark.parametrize("bad", [
        "library/book",        # relative at top level
        "/library/",           # dangling slash
        "/library[",           # unterminated predicate
        "/library/book[title=]",
        "/library/book]",
    ])
    def test_malformed_queries_raise(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)


class TestEvaluator:
    def test_absolute_child_path(self):
        results = evaluate_xpath("/library/shelf/book/title", DOCUMENT)
        assert [element.text_content() for element in results] == [
            "Query Processing", "Stream Systems", "XML Projection",
        ]

    def test_descendant_axis(self):
        results = evaluate_xpath("//last", DOCUMENT)
        assert [element.text_content() for element in results] == [
            "Koch", "Scherzinger", "Schmidt",
        ]

    def test_root_name_must_match(self):
        assert evaluate_xpath("/archive/shelf", DOCUMENT) == []

    def test_wildcard_step(self):
        results = evaluate_xpath("/library/*", DOCUMENT)
        assert [element.name for element in results] == ["shelf", "shelf"]

    def test_text_step_returns_strings(self):
        results = evaluate_xpath("/library//year/text()", DOCUMENT)
        assert results == ["2008", "2007", "2008"]

    def test_equality_predicate_on_child_path(self):
        results = evaluate_xpath(
            '/library//book[author/last="Koch"]/title', DOCUMENT,
        )
        assert len(results) == 1
        assert results[0].text_content() == "Query Processing"

    def test_equality_predicate_uses_existential_semantics(self):
        results = evaluate_xpath('/library/shelf[book/year="2007"]', DOCUMENT)
        assert len(results) == 1
        assert results[0].attributes["id"] == "s1"

    def test_contains_predicate(self):
        results = evaluate_xpath(
            '/library//book[contains(note,"NASA")]/title', DOCUMENT,
        )
        assert [element.text_content() for element in results] == ["XML Projection"]

    def test_contains_on_descendant_text(self):
        results = evaluate_xpath(
            '/library/shelf[contains(book//last,"Schmidt")]', DOCUMENT,
        )
        assert len(results) == 1
        assert results[0].attributes["id"] == "s2"

    def test_or_predicate(self):
        results = evaluate_xpath(
            '/library//book[author/last="Koch" or author/last="Schmidt"]/year',
            DOCUMENT,
        )
        assert [element.text_content() for element in results] == ["2008", "2008"]

    def test_attribute_predicate_equality(self):
        results = evaluate_xpath('/library/shelf[@id="s2"]/book/title', DOCUMENT)
        assert [element.text_content() for element in results] == ["XML Projection"]

    def test_attribute_existence_predicate(self):
        results = evaluate_xpath("/library/shelf/book[@lang]", DOCUMENT)
        assert len(results) == 3

    def test_existence_predicate_on_child(self):
        results = evaluate_xpath("/library//book[note]/title", DOCUMENT)
        assert [element.text_content() for element in results] == ["XML Projection"]

    def test_string_value_and_serialization(self):
        results = evaluate_xpath("/library/shelf/book/title", DOCUMENT)
        assert string_value(results[0]) == "Query Processing"
        rendered = serialize_results(results)
        assert "<title>Query Processing</title>" in rendered
