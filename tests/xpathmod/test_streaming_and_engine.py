"""Tests for the streaming XPath evaluator and the in-memory query engine."""

from __future__ import annotations

import pytest

from repro.workloads.medline import MEDLINE_QUERIES
from repro.xml import parse_document
from repro.xpath import (
    InMemoryQueryEngine,
    MemoryLimitExceeded,
    StreamingXPathEngine,
    evaluate_xpath,
    string_value,
)

DOCUMENT_TEXT = (
    "<catalog>"
    "<section name='databases'>"
    "<entry><code>PDB</code><items><item>one</item><item>two</item></items></entry>"
    "<entry><code>OMIM</code><items><item>three</item></items></entry>"
    "</section>"
    "<section name='misc'>"
    "<entry><code>PDB</code><items><item>four</item></items></entry>"
    "</section>"
    "</catalog>"
)


def _normalize(items):
    return sorted(
        item.serialize() if hasattr(item, "serialize") else item for item in items
    )


class TestStreamingEvaluator:
    @pytest.mark.parametrize("query", [
        "/catalog/section/entry/code",
        "/catalog//item",
        "//entry/items",
        '/catalog//entry[code="PDB"]/items',
        '/catalog/section[contains(entry//code,"OMIM")]',
    ])
    def test_agrees_with_in_memory_evaluator(self, query):
        streaming = StreamingXPathEngine(query).evaluate(DOCUMENT_TEXT)
        in_memory = evaluate_xpath(query, parse_document(DOCUMENT_TEXT))
        assert _normalize(streaming) == _normalize(in_memory)

    def test_statistics_report_buffering(self):
        engine = StreamingXPathEngine('/catalog//entry[code="PDB"]/items')
        results = engine.evaluate(DOCUMENT_TEXT)
        assert len(results) == 2
        stats = engine.last_stats
        assert stats.events > 0
        assert stats.buffered_subtrees >= 2
        assert stats.matches == 2

    def test_medline_queries_agree_with_in_memory(self, medline_document_small):
        document = parse_document(medline_document_small)
        for name, spec in MEDLINE_QUERIES.items():
            streaming = StreamingXPathEngine(spec.query).evaluate(medline_document_small)
            in_memory = evaluate_xpath(spec.query, document)
            assert _normalize(streaming) == _normalize(in_memory), name


class TestInMemoryQueryEngine:
    def test_run_returns_results_and_timings(self):
        engine = InMemoryQueryEngine()
        outcome = engine.run("/catalog//item", DOCUMENT_TEXT)
        assert outcome.result_count == 4
        assert outcome.load_seconds >= 0.0
        assert outcome.evaluate_seconds >= 0.0
        assert outcome.estimated_memory_bytes > 0
        assert "<item>one</item>" in outcome.output

    def test_memory_limit_enforced(self):
        engine = InMemoryQueryEngine(memory_limit_bytes=100)
        with pytest.raises(MemoryLimitExceeded):
            engine.run("/catalog//item", DOCUMENT_TEXT)

    def test_memory_limit_allows_small_documents(self):
        engine = InMemoryQueryEngine(memory_limit_bytes=50_000_000)
        outcome = engine.run("/catalog/section", DOCUMENT_TEXT)
        assert outcome.result_count == 2

    def test_run_many_loads_once(self):
        engine = InMemoryQueryEngine()
        outcomes = engine.run_many(
            ["/catalog//item", "/catalog/section/entry/code"], DOCUMENT_TEXT,
        )
        assert [outcome.result_count for outcome in outcomes] == [4, 3]

    def test_prefiltered_document_gives_same_results(self, xmark_document_small):
        """The Figure 7(a) setup: running the engine on the SMP output must
        return the same result values as running it on the raw document."""
        from repro import SmpPrefilter
        from repro.workloads.xmark import XMARK_QUERIES, xmark_dtd

        spec = XMARK_QUERIES["XM13"]
        prefilter = SmpPrefilter.compile(xmark_dtd(), spec.parsed_paths(),
                                         add_default_paths=False)
        projected = prefilter.session().run(xmark_document_small).output
        engine = InMemoryQueryEngine()
        full = engine.run(spec.xpath, xmark_document_small)
        pruned = engine.run(spec.xpath, projected)
        assert [string_value(item) for item in full.results] == [
            string_value(item) for item in pruned.results
        ]
        assert pruned.estimated_memory_bytes < full.estimated_memory_bytes
