"""Incremental SAX / streaming-XPath sessions and the unified pipeline."""

from __future__ import annotations

import pytest

from repro import api
from repro.pipeline import XPathPipeline
from repro.workloads.medline import MEDLINE_QUERIES, generate_medline_document
from repro.xml.sax import EventCollector, parse_chunks, parse_with_handler
from repro.xpath import StreamingXPathEngine


def chunked(text, size):
    return (text[index:index + size] for index in range(0, len(text), size))


def serialized(items):
    return sorted(
        item.serialize() if hasattr(item, "serialize") else str(item)
        for item in items
    )


class TestSaxSession:
    @pytest.mark.parametrize("chunk_size", [1, 3, 50])
    def test_event_stream_equivalence(self, figure2_document, chunk_size):
        reference = EventCollector()
        parse_with_handler(figure2_document, reference)
        streamed = EventCollector()
        parse_chunks(chunked(figure2_document, chunk_size), streamed)
        assert streamed.events == reference.events


class TestXPathStreamSession:
    @pytest.mark.parametrize("chunk_size", [1, 7, 4096])
    def test_results_equal_one_shot_evaluation(self, medline_document_small,
                                               chunk_size):
        spec = MEDLINE_QUERIES["M2"]
        engine = StreamingXPathEngine(spec.query)
        reference = engine.evaluate(medline_document_small)
        streamed = engine.evaluate_chunks(
            chunked(medline_document_small, chunk_size)
        )
        assert serialized(streamed) == serialized(reference)

    def test_session_feed_finish(self, medline_document_small):
        spec = MEDLINE_QUERIES["M1"]
        engine = StreamingXPathEngine(spec.query)
        reference = engine.evaluate(medline_document_small)
        session = engine.session()
        for chunk in chunked(medline_document_small, 11):
            session.feed(chunk)
        results = session.finish()
        assert serialized(results) == serialized(reference)
        assert session.stats.events > 0


class TestXPathPipeline:
    @pytest.mark.parametrize("query_name", ["M1", "M2", "M3", "M4", "M5"])
    def test_pipeline_matches_unfiltered_evaluation(self, medline_dtd_fixture,
                                                    query_name):
        document = generate_medline_document(citations=25, seed=13)
        spec = MEDLINE_QUERIES[query_name]
        pipeline = XPathPipeline(
            medline_dtd_fixture,
            spec.query,
            backend="native",
            paths=spec.parsed_paths(),
        )
        reference = pipeline.evaluate_unfiltered(document)
        outcome = pipeline.evaluate(document, chunk_size=333)
        assert serialized(outcome.results) == serialized(reference)
        # The evaluator only saw the projection, not the raw document.
        assert outcome.filter_stats.output_size < outcome.filter_stats.input_size
        assert outcome.streaming_stats.events > 0
        assert 0.0 < outcome.projection_ratio < 1.0

    def test_pipeline_extracts_paths_from_query(self, medline_dtd_fixture):
        document = generate_medline_document(citations=10, seed=3)
        query = MEDLINE_QUERIES["M1"].query
        pipeline = XPathPipeline(medline_dtd_fixture, query, backend="native")
        outcome = pipeline.evaluate(document)
        assert serialized(outcome.results) == serialized(
            pipeline.evaluate_unfiltered(document)
        )

    def test_pipeline_evaluate_file(self, tmp_path, medline_dtd_fixture):
        document = generate_medline_document(citations=8, seed=21)
        path = tmp_path / "medline.xml"
        path.write_text(document, encoding="utf-8")
        spec = MEDLINE_QUERIES["M2"]
        pipeline = XPathPipeline(
            medline_dtd_fixture, spec.query, backend="native",
            paths=spec.parsed_paths(),
        )
        from_file = pipeline.evaluate(
            api.Source.from_file(str(path), chunk_size=512))
        in_memory = pipeline.evaluate(document)
        assert serialized(from_file.results) == serialized(in_memory.results)
