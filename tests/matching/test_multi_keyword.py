"""Unit tests for the multi-keyword matchers (naive, Aho-Corasick,
Commentz-Walter, native)."""

from __future__ import annotations

import pytest

from repro.errors import MatchingError
from repro.matching import (
    AhoCorasickMatcher,
    CommentzWalterMatcher,
    NaiveMultiMatcher,
    NativeMultiMatcher,
)

MATCHER_CLASSES = [
    NaiveMultiMatcher,
    AhoCorasickMatcher,
    CommentzWalterMatcher,
    NativeMultiMatcher,
]


@pytest.mark.parametrize("matcher_class", MATCHER_CLASSES)
class TestMultiKeywordContract:
    def test_finds_leftmost_of_any_keyword(self, matcher_class):
        matcher = matcher_class(["foo", "bar", "baz"])
        match = matcher.find("xx baz yy foo")
        assert match.keyword == "baz"
        assert match.position == 3

    def test_returns_none_when_no_keyword_occurs(self, matcher_class):
        matcher = matcher_class(["foo", "bar"])
        assert matcher.find("nothing to see here") is None

    def test_single_keyword_set_behaves_like_single_search(self, matcher_class):
        matcher = matcher_class(["icde"])
        assert matcher.find("xxicdexx").position == 2

    def test_leftmost_longest_preference_on_tie(self, matcher_class):
        matcher = matcher_class(["<Abstract", "<AbstractText"])
        match = matcher.find("zz<AbstractText>zz")
        assert match.keyword == "<AbstractText"
        assert match.position == 2

    def test_earlier_start_beats_longer_keyword(self, matcher_class):
        matcher = matcher_class(["bb", "aaaa"])
        match = matcher.find("xbbaaaa")
        assert match.keyword == "bb"
        assert match.position == 1

    def test_start_offset_is_respected(self, matcher_class):
        matcher = matcher_class(["ab", "cd"])
        match = matcher.find("ab cd ab", start=1)
        assert match.position == 3
        assert match.keyword == "cd"

    def test_end_offset_is_respected(self, matcher_class):
        matcher = matcher_class(["tail"])
        assert matcher.find("xxxx tail", end=8) is None

    def test_keywords_of_very_different_lengths(self, matcher_class):
        matcher = matcher_class(["a", "abcdefgh"])
        match = matcher.find("zzzabcdefgh")
        assert match.position == 3
        assert match.keyword in ("a", "abcdefgh")

    def test_find_all_in_document_order(self, matcher_class):
        matcher = matcher_class(["<b", "<c"])
        text = "<a><b/><c/><b/></a>"
        positions = [match.position for match in matcher.find_all(text)]
        assert positions == sorted(positions)
        assert len(positions) == 3

    def test_frontier_vocabulary_style_keywords(self, matcher_class):
        # The shape the SMP runtime uses: opening and closing tag prefixes.
        matcher = matcher_class(["</a", "<b", "<c"])
        text = "<a><c><b>x</b><b/></c><b>y</b></a>"
        match = matcher.find(text)
        assert match.keyword == "<c"
        assert match.position == 3

    def test_empty_keyword_list_rejected(self, matcher_class):
        with pytest.raises(MatchingError):
            matcher_class([])

    def test_empty_keyword_rejected(self, matcher_class):
        with pytest.raises(MatchingError):
            matcher_class(["ok", ""])

    def test_duplicate_keywords_rejected(self, matcher_class):
        with pytest.raises(MatchingError):
            matcher_class(["dup", "dup"])


class TestCommentzWalterInternals:
    def test_bad_character_shift_capped_by_min_length(self):
        matcher = CommentzWalterMatcher(["<item", "</item"])
        for character in "<i/temxyz":
            assert 1 <= matcher.bad_character_shift(character) <= 5

    def test_unknown_character_shifts_by_min_length(self):
        matcher = CommentzWalterMatcher(["abc", "abcdef"])
        assert matcher.bad_character_shift("z") == 3

    def test_skips_characters_compared_to_aho_corasick(self):
        keywords = ["<australia", "<description", "</australia"]
        text = ("lorem ipsum " * 300) + "<australia>" + ("filler " * 200) + "</australia>"
        commentz_walter = CommentzWalterMatcher(keywords)
        aho_corasick = AhoCorasickMatcher(keywords)
        cw_match = commentz_walter.find(text)
        ac_match = aho_corasick.find(text)
        assert cw_match.position == ac_match.position
        assert commentz_walter.stats.comparisons < aho_corasick.stats.comparisons

    def test_shift_statistics_recorded(self):
        matcher = CommentzWalterMatcher(["<name", "<payment"])
        matcher.find("x" * 200 + "<name>")
        assert matcher.stats.shifts > 0
        assert matcher.stats.average_shift > 1.0

    def test_agreement_with_aho_corasick_on_adversarial_text(self):
        keywords = ["aab", "ab", "ba", "baa"]
        text = "abaababaabbaabab" * 4
        commentz_walter = CommentzWalterMatcher(keywords)
        aho_corasick = AhoCorasickMatcher(keywords)
        position = 0
        while True:
            cw_match = commentz_walter.find(text, position)
            ac_match = aho_corasick.find(text, position)
            if cw_match is None:
                assert ac_match is None
                break
            assert cw_match.position == ac_match.position
            assert cw_match.keyword == ac_match.keyword
            position = cw_match.position + 1
