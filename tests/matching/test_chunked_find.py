"""Chunk-boundary equivalence of the resumable ``find_chunk`` contract.

For every matcher backend, revealing the text in arbitrary pieces (including
pathological 1-3 character chunks that split keywords) must return the same
occurrence as a whole-text ``find`` -- and, because every bundled matcher
defers its counters until a search completes or replays the identical scan,
the accumulated statistics must be identical too.  ``searches`` is part of
the compared tuple: one logical search counts once no matter how many times
it suspends and resumes across chunk boundaries.
"""

from __future__ import annotations

import random

import pytest

from repro.matching.aho_corasick import AhoCorasickMatcher
from repro.matching.base import PendingSearch
from repro.matching.boyer_moore import BoyerMooreMatcher
from repro.matching.commentz_walter import CommentzWalterMatcher
from repro.matching.horspool import HorspoolMatcher
from repro.matching.naive import NaiveMatcher, NaiveMultiMatcher
from repro.matching.native import NativeMultiMatcher, NativeSingleMatcher

SINGLE_CLASSES = [BoyerMooreMatcher, HorspoolMatcher, NaiveMatcher, NativeSingleMatcher]
MULTI_CLASSES = [
    CommentzWalterMatcher,
    AhoCorasickMatcher,
    NaiveMultiMatcher,
    NativeMultiMatcher,
]

_ALPHABET = "ab<c/"


def drive_chunked(matcher, text, start, cuts):
    """Run one logical search revealing ``text`` up to each cut in turn."""
    pending = None
    outcome = None
    boundaries = [cut for cut in cuts if cut < len(text)] + [len(text)]
    for index, boundary in enumerate(boundaries):
        at_eof = index == len(boundaries) - 1
        outcome = matcher.find_chunk(
            text, 0, start, boundary, at_eof=at_eof, pending=pending
        )
        if isinstance(outcome, PendingSearch):
            # keep_from may point beyond the revealed boundary (e.g. a shift
            # jumped past it); it only promises that nothing *below* it is
            # needed again, and never retreats below the search start.
            assert outcome.keep_from >= start
            pending = outcome
            continue
        return outcome
    assert not isinstance(outcome, PendingSearch), "suspended at eof"
    return outcome


def stats_tuple(stats):
    return (
        stats.comparisons,
        stats.shifts,
        stats.shift_total,
        stats.searches,
        stats.matches,
    )


def random_case(rng):
    length = rng.randint(0, 60)
    text = "".join(rng.choice(_ALPHABET) for _ in range(length))
    keywords = list(
        {
            "".join(rng.choice(_ALPHABET) for _ in range(rng.randint(1, 5)))
            for _ in range(rng.randint(1, 4))
        }
    )
    start = rng.randint(0, length)
    cuts = sorted(rng.sample(range(length + 1), rng.randint(0, min(8, length + 1))))
    return text, keywords, start, cuts


@pytest.mark.parametrize("matcher_class", SINGLE_CLASSES)
def test_single_keyword_chunked_equivalence(matcher_class):
    rng = random.Random(1234)
    for _ in range(400):
        text, keywords, start, cuts = random_case(rng)
        reference = matcher_class(keywords[0])
        chunked = matcher_class(keywords[0])
        expected = reference.find(text, start)
        actual = drive_chunked(chunked, text, start, cuts)
        assert (expected is None) == (actual is None)
        if expected is not None:
            assert (expected.position, expected.keyword) == (
                actual.position,
                actual.keyword,
            )
        assert stats_tuple(reference.stats) == stats_tuple(chunked.stats)


@pytest.mark.parametrize("matcher_class", MULTI_CLASSES)
def test_multi_keyword_chunked_equivalence(matcher_class):
    rng = random.Random(99)
    for _ in range(400):
        text, keywords, start, cuts = random_case(rng)
        reference = matcher_class(keywords)
        chunked = matcher_class(keywords)
        expected = reference.find(text, start)
        actual = drive_chunked(chunked, text, start, cuts)
        assert (expected is None) == (actual is None)
        if expected is not None:
            assert (expected.position, expected.keyword) == (
                actual.position,
                actual.keyword,
            )
        assert stats_tuple(reference.stats) == stats_tuple(chunked.stats)


def test_one_character_chunks_split_every_keyword():
    text = "<aa<ab<aa<ac"
    matcher = CommentzWalterMatcher(["<aa", "<ac"])
    reference = CommentzWalterMatcher(["<aa", "<ac"])
    expected = reference.find(text)
    actual = drive_chunked(matcher, text, 0, list(range(1, len(text))))
    assert (actual.position, actual.keyword) == (expected.position, expected.keyword)
    assert stats_tuple(reference.stats) == stats_tuple(matcher.stats)


def test_longer_keyword_straddling_boundary_wins_tie():
    # "<Abstract" vs "<AbstractText": the longer keyword matches at the same
    # position but only completes after the boundary.
    keywords = ["<Abstract", "<AbstractText"]
    text = "xx<AbstractTextyy"
    for cut in range(len(text)):
        matcher = NativeMultiMatcher(keywords)
        match = drive_chunked(matcher, text, 0, [cut])
        assert match.keyword == "<AbstractText"
        assert match.position == 2


def test_pending_search_keep_from_never_exceeds_match_position():
    rng = random.Random(7)
    for _ in range(200):
        text, keywords, start, cuts = random_case(rng)
        matcher = CommentzWalterMatcher(keywords)
        pending = None
        floors = []
        boundaries = [cut for cut in cuts if cut < len(text)] + [len(text)]
        outcome = None
        for index, boundary in enumerate(boundaries):
            outcome = matcher.find_chunk(
                text, 0, start, boundary,
                at_eof=index == len(boundaries) - 1,
                pending=pending,
            )
            if isinstance(outcome, PendingSearch):
                floors.append(outcome.keep_from)
                pending = outcome
            else:
                break
        if outcome is not None and not isinstance(outcome, PendingSearch):
            for floor in floors:
                assert floor <= outcome.position
