"""Tests for the matcher factory / backend registry."""

from __future__ import annotations

import pytest

from repro.errors import MatchingError
from repro.matching import (
    BoyerMooreMatcher,
    CommentzWalterMatcher,
    MultiKeywordMatcher,
    SingleKeywordMatcher,
    available_backends,
    make_matcher,
    make_multi_matcher,
    make_single_matcher,
)


def test_available_backends_contains_the_paper_configuration():
    backends = available_backends()
    assert "instrumented" in backends
    assert "native" in backends
    assert "naive" in backends
    assert "aho-corasick" in backends


def test_instrumented_backend_uses_boyer_moore_and_commentz_walter():
    single = make_single_matcher("<item", backend="instrumented")
    multi = make_multi_matcher(["<item", "</item"], backend="instrumented")
    assert isinstance(single, BoyerMooreMatcher)
    assert isinstance(multi, CommentzWalterMatcher)


def test_make_matcher_dispatches_on_vocabulary_size():
    # Mirrors Figure 4: |V| = 1 -> BM, |V| > 1 -> CW.
    single = make_matcher(["<only"])
    multi = make_matcher(["<one", "<two"])
    assert isinstance(single, SingleKeywordMatcher)
    assert isinstance(multi, MultiKeywordMatcher)


@pytest.mark.parametrize("backend", ["instrumented", "native", "naive", "aho-corasick", "horspool"])
def test_every_backend_produces_working_matchers(backend):
    text = "prefix <australia attr='1'> body </australia> suffix"
    single = make_single_matcher("<australia", backend=backend)
    assert single.find(text).position == 7
    multi = make_multi_matcher(["<australia", "</australia"], backend=backend)
    assert multi.find(text).position == 7
    assert multi.find(text, start=8).keyword == "</australia"


def test_unknown_backend_raises():
    with pytest.raises(MatchingError):
        make_single_matcher("x", backend="does-not-exist")
    with pytest.raises(MatchingError):
        make_multi_matcher(["x", "y"], backend="does-not-exist")


def test_empty_vocabulary_rejected():
    with pytest.raises(MatchingError):
        make_matcher([])
