"""Property-based tests: the skipping matchers agree with naive oracles."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.matching import (
    AhoCorasickMatcher,
    BoyerMooreMatcher,
    CommentzWalterMatcher,
    HorspoolMatcher,
    NaiveMatcher,
    NativeMultiMatcher,
    NativeSingleMatcher,
)

# A small alphabet makes overlaps and near-misses frequent.
_ALPHABET = "ab<>/xyz"
_texts = st.text(alphabet=_ALPHABET, min_size=0, max_size=200)
_keywords = st.text(alphabet=_ALPHABET, min_size=1, max_size=8)
_keyword_sets = st.lists(_keywords, min_size=1, max_size=5, unique=True)


def _oracle_first(text: str, keyword: str, start: int = 0) -> int:
    return text.find(keyword, start)


def _oracle_multi_first(text: str, keywords: list[str], start: int = 0) -> tuple[int, str] | None:
    best_position = None
    best_keyword = None
    for keyword in keywords:
        position = text.find(keyword, start)
        if position < 0:
            continue
        if (
            best_position is None
            or position < best_position
            or (position == best_position and len(keyword) > len(best_keyword))
        ):
            best_position = position
            best_keyword = keyword
    if best_position is None:
        return None
    return best_position, best_keyword


@settings(max_examples=200, deadline=None)
@given(text=_texts, keyword=_keywords)
def test_boyer_moore_matches_str_find(text: str, keyword: str) -> None:
    expected = _oracle_first(text, keyword)
    match = BoyerMooreMatcher(keyword).find(text)
    if expected < 0:
        assert match is None
    else:
        assert match is not None and match.position == expected


@settings(max_examples=200, deadline=None)
@given(text=_texts, keyword=_keywords)
def test_horspool_matches_str_find(text: str, keyword: str) -> None:
    expected = _oracle_first(text, keyword)
    match = HorspoolMatcher(keyword).find(text)
    if expected < 0:
        assert match is None
    else:
        assert match is not None and match.position == expected


@settings(max_examples=100, deadline=None)
@given(text=_texts, keyword=_keywords, start=st.integers(min_value=0, max_value=50))
def test_single_matchers_respect_start_offset(text: str, keyword: str, start: int) -> None:
    expected = _oracle_first(text, keyword, start)
    for matcher_class in (BoyerMooreMatcher, HorspoolMatcher, NaiveMatcher, NativeSingleMatcher):
        match = matcher_class(keyword).find(text, start)
        if expected < 0:
            assert match is None
        else:
            assert match is not None and match.position == expected


@settings(max_examples=200, deadline=None)
@given(text=_texts, keywords=_keyword_sets)
def test_commentz_walter_matches_oracle(text: str, keywords: list[str]) -> None:
    expected = _oracle_multi_first(text, keywords)
    match = CommentzWalterMatcher(keywords).find(text)
    if expected is None:
        assert match is None
    else:
        assert match is not None
        assert (match.position, match.keyword) == expected


@settings(max_examples=200, deadline=None)
@given(text=_texts, keywords=_keyword_sets)
def test_aho_corasick_matches_oracle(text: str, keywords: list[str]) -> None:
    expected = _oracle_multi_first(text, keywords)
    match = AhoCorasickMatcher(keywords).find(text)
    if expected is None:
        assert match is None
    else:
        assert match is not None
        assert (match.position, match.keyword) == expected


@settings(max_examples=200, deadline=None)
@given(text=_texts, keywords=_keyword_sets)
def test_native_multi_matches_oracle(text: str, keywords: list[str]) -> None:
    expected = _oracle_multi_first(text, keywords)
    match = NativeMultiMatcher(keywords).find(text)
    if expected is None:
        assert match is None
    else:
        assert match is not None
        assert (match.position, match.keyword) == expected


@settings(max_examples=100, deadline=None)
@given(text=_texts, keywords=_keyword_sets)
def test_commentz_walter_find_all_finds_same_positions_as_aho_corasick(
    text: str, keywords: list[str]
) -> None:
    cw_positions = [
        (match.position, match.keyword)
        for match in CommentzWalterMatcher(keywords).find_all(text)
    ]
    ac_positions = [
        (match.position, match.keyword)
        for match in AhoCorasickMatcher(keywords).find_all(text)
    ]
    assert cw_positions == ac_positions


@settings(max_examples=100, deadline=None)
@given(keyword=_keywords, prefix=_texts, suffix=_texts)
def test_boyer_moore_finds_planted_keyword(keyword: str, prefix: str, suffix: str) -> None:
    text = prefix + keyword + suffix
    match = BoyerMooreMatcher(keyword).find(text)
    assert match is not None
    assert match.position <= len(prefix)
    assert text[match.position:match.position + len(keyword)] == keyword
