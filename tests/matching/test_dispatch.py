"""The shared-scan dispatch layer: union automaton, owners, batch scans.

Three contracts are exercised:

* :func:`repro.matching.dispatch.trie_regex` compiles to a pattern that
  matches exactly the keyword set, preferring the longest at each position;
* every matcher's ``collect_chunk`` reports *all* keyword occurrences
  (including co-located prefix keywords) in document order, independent of
  how the input is windowed;
* :class:`repro.matching.dispatch.KeywordDispatcher` agrees with a
  brute-force occurrence enumeration and with the compiled pattern.
"""

from __future__ import annotations

import random
import re

import pytest

from repro.matching.aho_corasick import AhoCorasickMatcher
from repro.matching.commentz_walter import CommentzWalterMatcher
from repro.matching.dispatch import KeywordDispatcher, trie_regex
from repro.matching.naive import NaiveMatcher, NaiveMultiMatcher
from repro.matching.native import NativeMultiMatcher, NativeSingleMatcher

MULTI_CLASSES = [
    CommentzWalterMatcher,
    AhoCorasickMatcher,
    NaiveMultiMatcher,
    NativeMultiMatcher,
]

_ALPHABET = "ab<c/"


def brute_force_hits(text, keywords, start=0, stop=None):
    """Every (position, keyword) occurrence, longer keywords first on ties."""
    stop = len(text) if stop is None else stop
    hits = []
    for position in range(start, stop):
        at_position = [
            keyword for keyword in keywords
            if text.startswith(keyword, position)
            and position + len(keyword) <= len(text)
        ]
        for keyword in sorted(at_position, key=len, reverse=True):
            hits.append((position, keyword))
    return hits


def random_case(rng):
    length = rng.randint(0, 80)
    text = "".join(rng.choice(_ALPHABET) for _ in range(length))
    keywords = list(
        {
            "".join(rng.choice(_ALPHABET) for _ in range(rng.randint(1, 4)))
            for _ in range(rng.randint(1, 5))
        }
    )
    return text, keywords


def random_tag_case(rng):
    """Text plus tag-shaped keywords (``<name`` / ``</name``)."""
    names = ["a", "ab", "abc", "b", "c"]
    keywords = list(
        {
            ("</" if rng.random() < 0.4 else "<") + rng.choice(names)
            for _ in range(rng.randint(1, 5))
        }
    )
    pieces = []
    for _ in range(rng.randint(0, 20)):
        roll = rng.random()
        if roll < 0.5:
            pieces.append(rng.choice(keywords) + rng.choice([">", " ", "d>"]))
        elif roll < 0.7:
            pieces.append("<" + rng.choice(names) + "d>")
        else:
            pieces.append(rng.choice(["text", "b", "/", " "]))
    return "".join(pieces), keywords


class TestTrieRegex:
    def test_matches_exactly_the_keyword_set(self):
        keywords = ["<a", "<ab", "<abc", "</a", "<b"]
        pattern = re.compile(trie_regex(keywords))
        for keyword in keywords:
            assert pattern.fullmatch(keyword), keyword
        for non_member in ["<", "<ac", "</b", "a", "abc"]:
            assert not pattern.fullmatch(non_member), non_member

    def test_prefers_the_longest_keyword(self):
        pattern = re.compile(trie_regex(["<Abstract", "<AbstractText"]))
        match = pattern.search("xx<AbstractTextyy")
        assert match.group() == "<AbstractText"
        match = pattern.search("xx<Abstractyy")
        assert match.group() == "<Abstract"

    def test_random_sets_agree_with_leftmost_longest(self):
        rng = random.Random(4242)
        for _ in range(300):
            text, keywords = random_case(rng)
            pattern = re.compile(trie_regex(keywords))
            reference = NaiveMultiMatcher(keywords) if len(keywords) > 1 else None
            match = pattern.search(text)
            if reference is not None:
                expected = reference.find(text)
            else:
                expected = NaiveMatcher(keywords[0]).find(text)
            if expected is None:
                assert match is None
            else:
                assert match is not None
                assert (match.start(), match.group()) == (
                    expected.position, expected.keyword
                )


class TestCollectChunk:
    @pytest.mark.parametrize("matcher_class", MULTI_CLASSES)
    def test_whole_window_matches_brute_force(self, matcher_class):
        rng = random.Random(99)
        for _ in range(300):
            text, keywords = random_case(rng)
            if len(keywords) < 2:
                continue
            matcher = matcher_class(keywords)
            hits, resume = matcher.collect_chunk(
                text, 0, 0, len(text), at_eof=True
            )
            assert resume == len(text)
            assert hits == brute_force_hits(text, keywords)

    @pytest.mark.parametrize("matcher_class", MULTI_CLASSES)
    def test_windowed_scan_is_window_invariant(self, matcher_class):
        rng = random.Random(7)
        for _ in range(200):
            text, keywords = random_case(rng)
            if len(keywords) < 2:
                continue
            matcher = matcher_class(keywords)
            cuts = sorted(rng.sample(range(len(text) + 1),
                                     rng.randint(0, min(6, len(text) + 1))))
            boundaries = [cut for cut in cuts if cut < len(text)] + [len(text)]
            collected = []
            position = 0
            for index, boundary in enumerate(boundaries):
                at_eof = index == len(boundaries) - 1
                hits, position = matcher.collect_chunk(
                    text, 0, position, boundary, at_eof=at_eof
                )
                collected.extend(hits)
            assert collected == brute_force_hits(text, keywords)

    def test_single_keyword_collect(self):
        matcher = NativeSingleMatcher("ab")
        hits, resume = matcher.collect_chunk("abxabab", 0, 0, 7, at_eof=True)
        assert hits == [(0, "ab"), (3, "ab"), (5, "ab")]
        assert resume == 7
        # Held-back tail: an occurrence could still straddle the window end.
        matcher = NativeSingleMatcher("ab")
        hits, resume = matcher.collect_chunk("abxa", 0, 0, 4, at_eof=False)
        assert hits == [(0, "ab")]
        assert resume == 3

    def test_counts_one_search_per_batch(self):
        matcher = NativeMultiMatcher(["<a", "<ab"])
        matcher.collect_chunk("<ab<a<ab", 0, 0, 8, at_eof=True)
        assert matcher.stats.searches == 1


class TestKeywordDispatcher:
    def test_owners_union_and_lookup(self):
        dispatcher = KeywordDispatcher({0: ["<a", "<b"], 1: ["<b", "</c"]})
        assert dispatcher.keywords == ("</c", "<a", "<b")
        assert dispatcher.owners_of("<a") == (0,)
        assert dispatcher.owners_of("<b") == (0, 1)
        assert dispatcher.owners_of("</c") == (1,)

    def test_prefix_table_lists_shadowed_keywords_longest_first(self):
        dispatcher = KeywordDispatcher(
            {0: ["<Abstract"], 1: ["<AbstractText", "<Abs"]}
        )
        assert dispatcher.prefixes_of("<AbstractText") == ("<Abstract", "<Abs")
        assert dispatcher.prefixes_of("<Abstract") == ("<Abs",)

    def test_scan_agrees_with_pattern_plus_prefix_expansion(self):
        # Tag-shaped keywords ('<' only at offset 0): the precondition under
        # which the single-pass pattern scan is complete (see module docs).
        rng = random.Random(2024)
        for _ in range(200):
            text, keywords = random_tag_case(rng)
            dispatcher = KeywordDispatcher({0: keywords})
            scanned, _ = dispatcher.scan(text, 0, 0, len(text), at_eof=True)
            expanded = []
            for match in dispatcher.pattern.finditer(text):
                expanded.append((match.start(), match.group()))
                for prefix in dispatcher.prefixes_of(match.group()):
                    expanded.append((match.start(), prefix))
            assert scanned == expanded == brute_force_hits(text, keywords)

    def test_rejects_empty_vocabularies(self):
        from repro.errors import MatchingError

        with pytest.raises(MatchingError):
            KeywordDispatcher({})
