"""Unit tests for the single-keyword matchers (naive, Horspool, Boyer-Moore,
native)."""

from __future__ import annotations

import pytest

from repro.errors import MatchingError
from repro.matching import (
    BoyerMooreMatcher,
    HorspoolMatcher,
    NaiveMatcher,
    NativeSingleMatcher,
    build_bad_character_table,
    build_good_suffix_table,
)

MATCHER_CLASSES = [NaiveMatcher, HorspoolMatcher, BoyerMooreMatcher, NativeSingleMatcher]


@pytest.mark.parametrize("matcher_class", MATCHER_CLASSES)
class TestSingleKeywordContract:
    def test_finds_first_occurrence(self, matcher_class):
        matcher = matcher_class("needle")
        match = matcher.find("hay needle hay needle")
        assert match is not None
        assert match.position == 4
        assert match.keyword == "needle"

    def test_returns_none_when_absent(self, matcher_class):
        matcher = matcher_class("needle")
        assert matcher.find("plain haystack without it") is None

    def test_match_at_start_and_end(self, matcher_class):
        matcher = matcher_class("ab")
        assert matcher.find("abxxab").position == 0
        assert matcher.find("xxxxab").position == 4

    def test_start_offset_is_respected(self, matcher_class):
        matcher = matcher_class("aa")
        match = matcher.find("aaxxaa", start=1)
        assert match is not None
        assert match.position == 4

    def test_end_offset_is_respected(self, matcher_class):
        matcher = matcher_class("end")
        assert matcher.find("xx end", end=4) is None
        assert matcher.find("xx end", end=6).position == 3

    def test_overlapping_pattern(self, matcher_class):
        matcher = matcher_class("aba")
        match = matcher.find("xababa")
        assert match.position == 1

    def test_single_character_keyword(self, matcher_class):
        matcher = matcher_class(">")
        assert matcher.find("abc>def").position == 3

    def test_find_all_reports_every_occurrence(self, matcher_class):
        matcher = matcher_class("aa")
        positions = [match.position for match in matcher.find_all("aaaa")]
        assert positions == [0, 1, 2]

    def test_empty_keyword_rejected(self, matcher_class):
        with pytest.raises(MatchingError):
            matcher_class("")

    def test_keyword_longer_than_text(self, matcher_class):
        matcher = matcher_class("longpattern")
        assert matcher.find("short") is None

    def test_xml_tag_keyword(self, matcher_class):
        matcher = matcher_class("<australia")
        text = "<asia/><australia><item/></australia>"
        assert matcher.find(text).position == 7

    def test_match_end_property(self, matcher_class):
        matcher = matcher_class("abc")
        match = matcher.find("xxabcxx")
        assert match.end == match.position + 3


class TestBoyerMooreTables:
    def test_bad_character_table_records_rightmost_occurrence(self):
        table = build_bad_character_table("abcab")
        assert table["a"] == 3
        assert table["b"] == 4
        assert table["c"] == 2

    def test_good_suffix_table_for_classic_example(self):
        # For "abbab", a mismatch after matching the suffix "ab" (at index 2)
        # must shift by 3 so the prefix "ab" aligns with the matched text.
        table = build_good_suffix_table("abbab")
        assert len(table) == 6
        assert table[3] == 3
        assert all(value >= 1 for value in table)

    def test_shift_never_smaller_than_one(self):
        matcher = BoyerMooreMatcher("ICDE")
        for char in "ABCDEIX":
            assert matcher.bad_character_shift(3, char) >= 1
        for index in range(4):
            assert matcher.good_suffix_shift(index) >= 1

    def test_skips_characters_compared_to_naive(self):
        text = "x" * 5000 + "ICDE"
        boyer_moore = BoyerMooreMatcher("ICDE")
        naive = NaiveMatcher("ICDE")
        assert boyer_moore.find(text).position == 5000
        assert naive.find(text).position == 5000
        assert boyer_moore.stats.comparisons < naive.stats.comparisons / 2

    def test_statistics_accumulate_shifts(self):
        matcher = BoyerMooreMatcher("ICDE")
        matcher.find("A" * 40 + "ICDE")
        assert matcher.stats.shifts > 0
        assert matcher.stats.average_shift > 1.0
        assert matcher.stats.matches == 1


class TestHorspoolShiftTable:
    def test_shift_for_known_character(self):
        matcher = HorspoolMatcher("ICDE")
        assert matcher.shift_for("I") == 3
        assert matcher.shift_for("C") == 2
        assert matcher.shift_for("D") == 1

    def test_shift_for_unknown_character_is_pattern_length(self):
        matcher = HorspoolMatcher("ICDE")
        assert matcher.shift_for("Z") == 4

    def test_last_character_uses_full_shift_when_unique(self):
        matcher = HorspoolMatcher("abcd")
        assert matcher.shift_for("d") == 4


class TestStatisticsBehaviour:
    def test_reset_clears_counters(self):
        matcher = BoyerMooreMatcher("abc")
        matcher.find("zzzabc")
        assert matcher.stats.comparisons > 0
        matcher.stats.reset()
        assert matcher.stats.comparisons == 0
        assert matcher.stats.shifts == 0

    def test_merge_accumulates(self):
        first = BoyerMooreMatcher("abc")
        second = BoyerMooreMatcher("abc")
        first.find("zzzabc")
        second.find("abczzz")
        snapshot = first.stats.snapshot()
        snapshot.merge(second.stats)
        assert snapshot.comparisons == first.stats.comparisons + second.stats.comparisons
        assert snapshot.matches == 2

    def test_average_shift_zero_without_shifts(self):
        matcher = BoyerMooreMatcher("abc")
        matcher.find("abc")
        assert matcher.stats.average_shift == 0.0
