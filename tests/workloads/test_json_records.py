"""The JSONL second grammar: generation, mapping, corpus integration."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.core.prefilter import SmpPrefilter
from repro.workloads.json_records import (
    JsonSpec,
    NEVER_TOKEN,
    SENTINELS,
    generate_json_records,
    generate_jsonl,
    json_dtd,
    json_queries,
    json_record_to_xml,
    json_to_xml,
    xml_records,
)


class TestJsonGeneration:
    def test_deterministic(self):
        spec = JsonSpec(seed=9, records=6, utf8=0.3)
        assert generate_jsonl(spec) == generate_jsonl(spec)
        assert generate_jsonl(spec) != generate_jsonl(JsonSpec(seed=10,
                                                              records=6))

    def test_every_line_is_valid_json(self):
        stream = generate_jsonl(JsonSpec(seed=1, records=5, utf8=0.4))
        lines = [line for line in stream.split(b"\n") if line]
        assert len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert set(record) >= {"id", "name", "tags", "meta"}

    def test_coverage_record_plants_sentinels(self):
        records = generate_json_records(JsonSpec(seed=3, records=4))
        coverage = records[0]
        assert coverage["name"] == SENTINELS["name"]
        assert SENTINELS["tag"] in coverage["tags"]
        assert coverage["meta"]["author"] == SENTINELS["author"]
        assert coverage["note"] == SENTINELS["note"]

    def test_never_token_is_absent(self):
        stream = generate_jsonl(JsonSpec(seed=5, records=10))
        assert NEVER_TOKEN.encode() not in stream


class TestJsonToXmlMapping:
    def test_mapping_shape(self):
        xml = json_to_xml(
            {"id": 1, "name": "a<b&c", "tags": ["x", "y"],
             "meta": {"author": "z", "year": 2001}},
            "record",
        )
        assert xml.startswith("<record><id>1</id><name>a&lt;b&amp;c</name>")
        assert "<tags><tag>x</tag><tag>y</tag></tags>" in xml
        assert "<meta><author>z</author><year>2001</year></meta>" in xml

    def test_null_and_booleans(self):
        assert json_to_xml(None, "x") == "<x/>"
        assert json_to_xml(True, "x") == "<x>true</x>"
        assert json_to_xml(False, "x") == "<x>false</x>"

    def test_mapped_documents_fit_the_dtd(self):
        # Every mapped record's element structure is declared in the DTD.
        dtd = json_dtd()
        for record in xml_records(JsonSpec(seed=7, records=6)):
            text = record.decode("utf-8")
            for name in ("record", "id", "name", "tags", "meta"):
                assert f"<{name}>" in text or f"<{name}/>" in text or \
                    f"<{name}" in text
            assert dtd.root_name == "record"


class TestJsonCorpusIntegration:
    def test_from_jsonl_matches_per_record_filtering(self):
        spec = JsonSpec(seed=11, records=6, utf8=0.2)
        stream = generate_jsonl(spec)
        records = xml_records(spec)
        dtd = json_dtd()
        queries = json_queries()
        plans = [
            SmpPrefilter.cached_for_query(dtd, q.spec(), backend="native")
            for q in queries
        ]
        engine_queries = [
            api.Query.from_plan(plan, label=q.name)
            for q, plan in zip(queries, plans)
        ]
        corpus = api.Engine(engine_queries).run(
            api.Source.from_jsonl(
                stream, transform=json_record_to_xml, chunk_size=64
            ),
            binary=True,
        )
        for position, plan in enumerate(plans):
            expected = b"".join(
                plan.session(binary=True).run([record]).output
                for record in records
            )
            assert corpus.results[position].output == expected

    def test_parallel_jsonl_corpus_is_byte_identical(self):
        spec = JsonSpec(seed=13, records=8)
        stream = generate_jsonl(spec)
        queries = [
            api.Query.from_spec(json_dtd(), q.spec()) for q in json_queries()
        ]

        def source():
            return api.Source.from_jsonl(
                stream, transform=json_record_to_xml
            )

        sequential = api.Engine(queries).run(source(), binary=True)
        parallel = api.Engine(queries, mode="parallel", jobs=2).run(
            source(), binary=True
        )
        assert [r.output for r in parallel.results] == \
            [r.output for r in sequential.results]
        assert parallel.jobs == 2

    def test_satisfiable_and_control_queries_behave(self):
        spec = JsonSpec(seed=17, records=5)
        stream = b"".join(xml_records(spec))
        dtd = json_dtd()
        for query in json_queries():
            plan = SmpPrefilter.cached_for_query(
                dtd, query.spec(), backend="native"
            )
            output = plan.session(binary=True).run([stream]).output
            body = output.replace(b"<record></record>", b"").strip()
            if query.satisfiable:
                assert body, (query.name, query.xpath)
            elif query.family == "phantom":
                assert not body, (query.name, output[:200])
