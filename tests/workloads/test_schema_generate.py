"""The schema/document generator: determinism, DTD validity, coverage."""

from __future__ import annotations

import pytest

from repro.dtd.model import Dtd
from repro.errors import WorkloadError
from repro.workloads.generate import (
    DocumentSpec,
    generate_document,
    generate_records,
    generate_stream,
)
from repro.workloads.schema import (
    ChildRef,
    SchemaSpec,
    build_schema,
    parse_kv,
)
from repro.xml.tokenizer import tokenize


def fresh_schema(**kwargs):
    build_schema.cache_clear()
    return build_schema(SchemaSpec(**kwargs))


class TestSchemaSpec:
    def test_parse_round_trips_the_canonical_key(self):
        spec = SchemaSpec.parse("gen:depth=12,fanout=4,seed=7")
        assert spec.depth == 12 and spec.fanout == 4 and spec.seed == 7
        assert SchemaSpec.parse(spec.key()) == spec

    def test_unknown_key_and_bad_value_raise(self):
        with pytest.raises(WorkloadError, match="unknown spec key"):
            SchemaSpec.parse("depht=3")
        with pytest.raises(WorkloadError, match="expects int"):
            SchemaSpec.parse("depth=deep")
        with pytest.raises(WorkloadError, match="depth must be >= 1"):
            SchemaSpec(depth=0)
        with pytest.raises(WorkloadError, match="unknown alphabet"):
            SchemaSpec(alphabet="runes")

    def test_parse_kv_rejects_malformed_entries(self):
        with pytest.raises(WorkloadError, match="key=value"):
            parse_kv("depth", SchemaSpec)


class TestBuildSchema:
    def test_same_spec_same_schema(self):
        first = fresh_schema(seed=11, depth=6, fanout=4, chain=3)
        text = first.dtd_text
        second = fresh_schema(seed=11, depth=6, fanout=4, chain=3)
        assert second.dtd_text == text
        assert second.phantom_names == first.phantom_names

    def test_different_seeds_differ(self):
        assert (fresh_schema(seed=1).dtd_text
                != fresh_schema(seed=2).dtd_text)

    def test_dtd_parses_and_is_non_recursive(self):
        for seed in range(4):
            schema = fresh_schema(
                seed=seed, depth=5, fanout=3, chain=2,
                alphabet=("overlap" if seed % 2 else "plain"),
            )
            dtd = Dtd.parse(schema.dtd_text)  # validates non-recursion
            assert dtd.root_name == schema.root

    def test_depth_and_chain_are_realised(self):
        schema = fresh_schema(seed=3, depth=9, fanout=2, chain=4)
        longest = max(
            len(path) for paths in schema.paths().values() for path in paths
        )
        # Spine depth plus the unrolled chain plus its leaf.
        assert longest >= 9 + 4

    def test_overlap_alphabet_produces_prefix_families(self):
        schema = fresh_schema(seed=5, depth=6, fanout=4, alphabet="overlap")
        assert schema.overlap_groups(), "expected prefix-overlapping names"

    def test_every_declared_element_is_reachable(self):
        schema = fresh_schema(seed=7, depth=5, fanout=4)
        for name, paths in schema.paths().items():
            assert paths, f"unreachable declaration {name}"

    def test_phantoms_are_optional_root_children(self):
        schema = fresh_schema(seed=9, phantoms=2)
        root_children = {
            child.name: child for child in schema.elements[schema.root].children
        }
        for phantom in schema.phantom_names:
            assert root_children[phantom] == ChildRef(phantom, "?")


class TestGenerateRecords:
    def test_deterministic(self):
        schema = fresh_schema(seed=1, depth=4, fanout=3)
        spec = DocumentSpec(seed=2, records=4, record_bytes=800, utf8=0.2)
        assert (generate_records(schema, spec)
                == generate_records(schema, spec))

    def test_records_are_well_formed_for_the_repo_tokenizer(self):
        schema = fresh_schema(seed=4, depth=5, fanout=3, chain=2)
        spec = DocumentSpec(
            seed=6, records=3, record_bytes=1200,
            utf8=0.3, cdata=0.3, comments=0.3, doctype=True,
        )
        for record in generate_records(schema, spec):
            tokens = list(tokenize(record.decode("utf-8")))
            assert tokens, "empty token stream"

    def test_record_bytes_is_a_floor(self):
        schema = fresh_schema(seed=4, depth=3, fanout=2)
        spec = DocumentSpec(seed=1, records=3, record_bytes=2000)
        for record in generate_records(schema, spec):
            assert len(record) >= 2000

    def test_coverage_record_realises_every_emitted_element(self):
        schema = fresh_schema(seed=8, depth=5, fanout=4, chain=2)
        coverage = generate_document(
            schema, DocumentSpec(seed=0, records=1)
        ).decode("utf-8")
        for name in schema.elements:
            if name in schema.phantom_names or name == schema.filler:
                continue
            assert f"<{name}" in coverage, name

    def test_coverage_record_plants_every_sentinel_exactly(self):
        schema = fresh_schema(seed=8, depth=4, fanout=3)
        coverage = generate_document(
            schema, DocumentSpec(seed=0, records=1)
        ).decode("utf-8")
        for info in schema.iter_text_elements():
            if info.name == schema.filler:
                continue  # filler only appears as size padding
            assert f">{info.sentinel}<" in coverage, info.name

    def test_phantoms_and_never_token_stay_absent(self):
        schema = fresh_schema(seed=12, depth=4, fanout=3, phantoms=2)
        spec = DocumentSpec(seed=3, records=5, record_bytes=1500)
        stream = generate_stream(schema, spec).decode("utf-8")
        for phantom in schema.phantom_names:
            assert f"<{phantom}" not in stream
        assert schema.never_token not in stream

    def test_utf8_density_emits_multibyte(self):
        schema = fresh_schema(seed=2, depth=4, fanout=3)
        record = generate_records(
            schema, DocumentSpec(seed=1, records=1, record_bytes=2000,
                                 utf8=0.8),
        )[0]
        assert any(byte >= 0x80 for byte in record)
        record.decode("utf-8")  # still valid UTF-8

    def test_markup_densities_emit_markup(self):
        schema = fresh_schema(seed=2, depth=4, fanout=3)
        stream = generate_stream(
            schema, DocumentSpec(seed=5, records=4, record_bytes=1500,
                                 cdata=0.6, comments=0.6, doctype=True),
        )
        assert b"<![CDATA[" in stream
        assert b"<!--" in stream
        assert stream.count(b"<?xml") == 4
        assert stream.count(b"<!DOCTYPE") == 4

    def test_spec_validation(self):
        with pytest.raises(WorkloadError, match="records must be >= 1"):
            DocumentSpec(records=0)
        with pytest.raises(WorkloadError, match="density"):
            DocumentSpec(cdata=1.5)
