"""Matched query generation: satisfiability by construction."""

from __future__ import annotations

import re

import pytest

from repro.core.prefilter import SmpPrefilter
from repro.errors import WorkloadError
from repro.workloads.generate import DocumentSpec, generate_records
from repro.workloads.queries import (
    CONTROL_FAMILIES,
    FAMILIES,
    generate_queries,
)
from repro.workloads.schema import SchemaSpec, build_schema


def _hollow(output: str, root: str) -> bool:
    """True when the output carries no content beyond empty root wrappers."""
    return re.fullmatch(
        r"\s*(<%s>\s*</%s>\s*)*" % (root, root), output
    ) is not None


@pytest.fixture(scope="module")
def schema():
    return build_schema(
        SchemaSpec(seed=13, depth=5, fanout=3, chain=2, alphabet="overlap")
    )


@pytest.fixture(scope="module")
def corpus(schema):
    records = generate_records(
        schema, DocumentSpec(seed=4, records=3, record_bytes=1500)
    )
    return b"\n".join(records).decode("utf-8")


class TestGenerateQueries:
    def test_deterministic(self, schema):
        first = generate_queries(schema, seed=21, count=16)
        second = generate_queries(schema, seed=21, count=16)
        assert [(q.name, q.xpath) for q in first] == \
            [(q.name, q.xpath) for q in second]
        third = generate_queries(schema, seed=22, count=16)
        assert [q.xpath for q in first] != [q.xpath for q in third]

    def test_requested_count_and_mix(self, schema):
        queries = generate_queries(schema, seed=3, count=20, unsat_ratio=0.25)
        assert len(queries) == 20
        families = {q.family for q in queries}
        assert families & set(CONTROL_FAMILIES)
        assert len(families & set(FAMILIES)) >= 4
        controls = [q for q in queries if not q.satisfiable]
        assert len(controls) == 5

    def test_every_query_parses_into_a_spec(self, schema):
        for query in generate_queries(schema, seed=7, count=24):
            spec = query.spec()
            assert spec.projection_paths

    def test_satisfiable_queries_produce_output(self, schema, corpus):
        queries = generate_queries(schema, seed=9, count=24)
        for query in queries:
            if not query.satisfiable:
                continue
            plan = SmpPrefilter.cached_for_query(
                schema.dtd, query.spec(), backend="native"
            )
            output = plan.session().run([corpus]).output
            assert not _hollow(output, schema.root), (query.name, query.xpath)

    def test_phantom_controls_produce_no_content(self, schema, corpus):
        queries = generate_queries(schema, seed=9, count=24)
        phantoms = [q for q in queries if q.family == "phantom"]
        assert phantoms
        for query in phantoms:
            plan = SmpPrefilter.cached_for_query(
                schema.dtd, query.spec(), backend="native"
            )
            output = plan.session().run([corpus]).output
            assert _hollow(output, schema.root), (query.name, output[:200])

    def test_never_controls_reference_the_never_token(self, schema):
        queries = generate_queries(schema, seed=5, count=20, unsat_ratio=0.4)
        nevers = [q for q in queries if q.family == "never"]
        assert nevers
        for query in nevers:
            assert schema.never_token in query.xpath

    def test_overlap_family_targets_prefix_groups(self):
        overlapping = build_schema(
            SchemaSpec(seed=2, depth=6, fanout=4, alphabet="overlap")
        )
        queries = generate_queries(overlapping, seed=1, count=30)
        overlap = [q for q in queries if q.family == "overlap"]
        assert overlap
        group_names = {
            name for group in overlapping.overlap_groups() for name in group
        }
        for query in overlap:
            last = query.xpath.rsplit("/", 1)[-1]
            assert last in group_names

    def test_validation(self, schema):
        with pytest.raises(WorkloadError, match="count must be >= 1"):
            generate_queries(schema, seed=1, count=0)
        with pytest.raises(WorkloadError, match="unsat_ratio"):
            generate_queries(schema, seed=1, count=4, unsat_ratio=2.0)
