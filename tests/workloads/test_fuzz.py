"""The differential-fuzz driver: determinism, detection, repro lines."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.fuzz import (
    CHUNK_FLAVORS,
    SCENARIOS,
    adversarial_chunks,
    available_deliveries,
    main as fuzz_main,
    run_case,
    run_fuzz,
)


class TestAdversarialChunks:
    PAYLOAD = "le <thé>🦉 øst</thé> données".encode("utf-8")

    def test_every_flavor_round_trips(self):
        import random

        for flavor in CHUNK_FLAVORS:
            rng = random.Random(1)
            chunks = adversarial_chunks(self.PAYLOAD, flavor, rng)
            assert b"".join(chunks) == self.PAYLOAD
            assert all(chunks), f"{flavor} produced an empty chunk"

    def test_tiny_chunks_are_tiny(self):
        chunks = adversarial_chunks(self.PAYLOAD, "tiny")
        assert max(len(chunk) for chunk in chunks) <= 3

    def test_midtag_cuts_after_every_open_angle(self):
        chunks = adversarial_chunks(self.PAYLOAD, "midtag")
        for chunk in chunks[:-1]:
            assert chunk.endswith(b"<")

    def test_midutf8_cuts_inside_characters(self):
        chunks = adversarial_chunks(self.PAYLOAD, "midutf8")
        assert any(
            chunk[0] & 0xC0 == 0x80 for chunk in chunks[1:]
        ), "no split landed inside a multi-byte character"

    def test_unknown_flavor_raises(self):
        with pytest.raises(WorkloadError, match="unknown chunk flavor"):
            adversarial_chunks(b"x", "jumbo")


class TestRunFuzz:
    def test_small_budget_run_is_clean(self):
        report = run_fuzz(seed=101, budget=24, scenarios=("baseline",))
        assert report.ok
        assert report.pairs >= 24
        assert report.deliveries == available_deliveries()

    def test_same_seed_same_report(self):
        first = run_fuzz(seed=55, budget=30,
                         scenarios=("baseline", "utf8")).to_dict()
        second = run_fuzz(seed=55, budget=30,
                          scenarios=("baseline", "utf8")).to_dict()
        assert first == second

    def test_different_seeds_pick_different_cases(self):
        first = run_fuzz(seed=1, budget=10, scenarios=("baseline",))
        second = run_fuzz(seed=2, budget=10, scenarios=("baseline",))
        assert (first.cases[0].case_seed != second.cases[0].case_seed)

    def test_case_seed_repro_mode_runs_exactly_once(self):
        report = run_fuzz(seed=0, budget=10_000, scenarios=("wide",),
                          case_seed=4242)
        assert len(report.cases) == 1
        assert report.cases[0].case_seed == 4242

    def test_unknown_scenario_raises(self):
        with pytest.raises(WorkloadError, match="unknown scenario"):
            run_fuzz(seed=0, budget=1, scenarios=("nope",))
        with pytest.raises(WorkloadError, match="unknown scenario"):
            run_case("nope", 1)

    def test_json_scenario_holds_the_second_grammar_to_the_contract(self):
        report = run_fuzz(seed=77, budget=1, scenarios=("json",))
        assert report.ok
        assert report.pairs > 0

    def test_every_scenario_cell_runs_clean_once(self):
        # One case per scenario; the CI fuzz leg runs the bigger sweep.
        for name in SCENARIOS:
            result = run_case(name, 9090, jobs=2)
            assert not result.divergences, (name, result.divergences[:1])


class TestKnownDivergenceInjection:
    """The harness must catch a seeded corruption and report its seed."""

    INJECT_SEED = 1234

    def test_injected_divergence_is_caught_and_addressable(self):
        report = run_fuzz(seed=7, budget=10, scenarios=("baseline",),
                          inject_seed=self.INJECT_SEED)
        assert not report.ok, "seeded corruption was not detected"
        divergence = report.divergences[0]
        assert divergence.inject_seed == self.INJECT_SEED
        assert f"--inject-seed {self.INJECT_SEED}" in divergence.repro
        assert f"--case-seed {divergence.case_seed}" in divergence.repro
        assert f"--only {divergence.scenario}" in divergence.repro
        # Only chunked comparisons see the corrupted bytes.
        for item in report.divergences:
            assert "chunked" in item.comparison

    def test_repro_line_reproduces_the_divergence(self):
        report = run_fuzz(seed=7, budget=10, scenarios=("baseline",),
                          inject_seed=self.INJECT_SEED)
        first = report.divergences[0]
        again = run_case(first.scenario, first.case_seed,
                         inject_seed=self.INJECT_SEED)
        assert any(
            item.query == first.query
            and item.comparison == first.comparison
            for item in again.divergences
        )

    def test_clean_run_of_the_same_case_has_no_divergences(self):
        report = run_fuzz(seed=7, budget=10, scenarios=("baseline",))
        assert report.ok


class TestFuzzCli:
    def test_cli_clean_run_exits_zero_and_writes_report(self, tmp_path,
                                                        capsys):
        path = tmp_path / "report.json"
        code = fuzz_main([
            "--seed", "3", "--budget", "10", "--only", "baseline",
            "--report", str(path), "--quiet",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "divergences=0" in captured.out
        import json

        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert payload["pairs"] >= 10

    def test_cli_reports_divergences_with_exit_code_4(self, capsys):
        code = fuzz_main([
            "--seed", "3", "--budget", "10", "--only", "baseline",
            "--inject-seed", "1234", "--quiet",
        ])
        assert code == 4
        captured = capsys.readouterr()
        assert "DIVERGENCE" in captured.out
        assert "--inject-seed 1234" in captured.out

    def test_cli_dispatch_through_repro_main(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--seed", "3", "--budget", "5",
                     "--only", "wide", "--quiet"])
        assert code == 0
