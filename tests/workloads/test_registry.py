"""The unified workload registry: builtin and generated addresses."""

from __future__ import annotations

import pytest

from repro import workloads
from repro.core.prefilter import SmpPrefilter
from repro.errors import WorkloadError


class TestBuiltinAddresses:
    def test_medline_matches_load_dataset(self):
        workload = workloads.get("medline", size_bytes=120_000, seed=42)
        document = workloads.load_dataset("medline", 120_000, seed=42)
        assert workload.document() == document.encode("utf-8")
        assert workload.query_order == ("M1", "M2", "M3", "M4", "M5")
        assert workload.end_tag == b"</MedlineCitationSet>"

    def test_xmark_queries_run_against_its_corpus(self):
        workload = workloads.get("xmark", size_bytes=120_000)
        plan = SmpPrefilter.cached_for_query(
            workload.dtd, workload.query("XM1"), backend="native"
        )
        run = plan.session(binary=True).run([workload.document()])
        assert run.stats.input_size > 0

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            workloads.get("mediline")
        with pytest.raises(WorkloadError, match="unknown workload prefix"):
            workloads.get("gen2:depth=3")


class TestGeneratedAddresses:
    ADDRESS = "gen:depth=6,fanout=4,seed=7,records=3,record_bytes=900,queries=10"

    def test_equal_addresses_resolve_to_equal_corpora(self):
        first = workloads.get(self.ADDRESS)
        second = workloads.get(self.ADDRESS)
        assert first.records() == second.records()
        assert first.query_order == second.query_order

    def test_mixed_schema_document_and_query_keys_route(self):
        workload = workloads.get(self.ADDRESS)
        assert len(workload.records()) == 3
        assert len(workload.queries) == 10
        assert all(len(record) >= 900 for record in workload.records())

    def test_generated_queries_run_against_generated_corpus(self):
        workload = workloads.get(self.ADDRESS)
        stream = workload.stream()
        for name in workload.query_order:
            plan = SmpPrefilter.cached_for_query(
                workload.dtd, workload.query(name), backend="native"
            )
            run = plan.session(binary=True).run([stream])
            assert run.stats.input_size == len(stream)

    def test_unknown_key_raises(self):
        with pytest.raises(WorkloadError, match="unknown workload spec key"):
            workloads.get("gen:depth=3,sidewalks=9")

    def test_stream_is_the_joined_records(self):
        workload = workloads.get("gen:depth=3,seed=1,records=2")
        records = workload.records()
        assert workload.stream() == b"\n".join(records) + b"\n"


class TestJsonAddresses:
    def test_json_workload_round_trips(self):
        workload = workloads.get("json:records=5,seed=2")
        assert len(workload.records()) == 5
        assert workload.end_tag == b"</record>"
        for record in workload.records():
            assert record.startswith(b"<record>")
        plan = SmpPrefilter.cached_for_query(
            workload.dtd, workload.query("J0_spine"), backend="native"
        )
        run = plan.session(binary=True).run([workload.stream()])
        assert b"<author>" in run.output
