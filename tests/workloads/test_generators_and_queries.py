"""Tests for the synthetic workload generators and query specifications."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.projection import ProjectionPath
from repro.workloads import load_dataset
from repro.workloads.datasets import DatasetSpec, clear_caches, default_document_bytes
from repro.workloads.medline import (
    MEDLINE_QUERIES,
    MEDLINE_QUERY_ORDER,
    generate_medline_document,
    generate_medline_document_of_size,
    medline_dtd,
)
from repro.workloads.xmark import (
    TBP_COMPARISON_QUERIES,
    XMARK_QUERIES,
    XMARK_QUERY_ORDER,
    generate_xmark_document,
    generate_xmark_document_of_size,
    xmark_dtd,
)
from repro.xml import parse_document, structural_tokens


class TestXmarkGenerator:
    def test_deterministic_for_same_seed(self):
        assert generate_xmark_document(0.02, seed=5) == generate_xmark_document(0.02, seed=5)
        assert generate_xmark_document(0.02, seed=5) != generate_xmark_document(0.02, seed=6)

    def test_document_is_well_formed(self, xmark_document_small):
        document = parse_document(xmark_document_small)
        assert document.root.name == "site"

    def test_contains_all_six_regions(self, xmark_document_small):
        document = parse_document(xmark_document_small)
        regions = document.root.find_children("regions")[0]
        assert [child.name for child in regions.child_elements] == [
            "africa", "asia", "australia", "europe", "namerica", "samerica",
        ]

    def test_size_scales_with_scale_factor(self):
        small = generate_xmark_document(0.02, seed=1)
        large = generate_xmark_document(0.08, seed=1)
        assert len(large) > 2.5 * len(small)

    def test_generate_document_of_size(self):
        target = 300_000
        text = generate_xmark_document_of_size(target, seed=2)
        assert abs(len(text) - target) / target < 0.35

    def test_validates_against_the_dtd(self, xmark_document_small, xmark_dtd_fixture):
        # Every element used in the document must be declared, and every
        # child must be allowed by its parent's content model.
        document = parse_document(xmark_document_small)
        declared = xmark_dtd_fixture.tag_names()
        for element in document.iter_elements():
            assert element.name in declared
            allowed = xmark_dtd_fixture.element(element.name).child_names()
            for child in element.child_elements:
                assert child.name in allowed, (element.name, child.name)

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            generate_xmark_document(0)


class TestMedlineGenerator:
    def test_deterministic_for_same_seed(self):
        assert generate_medline_document(20, seed=5) == generate_medline_document(20, seed=5)

    def test_document_is_well_formed(self, medline_document_small):
        document = parse_document(medline_document_small)
        assert document.root.name == "MedlineCitationSet"
        assert document.root.child_elements[0].name == "MedlineCitation"

    def test_collection_title_never_generated(self):
        text = generate_medline_document(citations=500, seed=1)
        assert "<CollectionTitle>" not in text

    def test_rare_query_targets_do_occur_at_scale(self):
        text = generate_medline_document(citations=1500, seed=1)
        assert "<DataBankName>PDB</DataBankName>" in text
        assert "Hippocrates" in text
        assert "NASA" in text
        assert "Sterilization" in text

    def test_validates_against_the_dtd(self, medline_document_small, medline_dtd_fixture):
        document = parse_document(medline_document_small)
        declared = medline_dtd_fixture.tag_names()
        for element in document.iter_elements():
            assert element.name in declared
            allowed = medline_dtd_fixture.element(element.name).child_names()
            for child in element.child_elements:
                assert child.name in allowed, (element.name, child.name)

    def test_generate_document_of_size(self):
        target = 250_000
        text = generate_medline_document_of_size(target, seed=2)
        assert abs(len(text) - target) / target < 0.35

    def test_invalid_count_rejected(self):
        with pytest.raises(WorkloadError):
            generate_medline_document(0)


class TestQueryWorkloads:
    def test_table1_query_set_is_complete(self):
        assert len(XMARK_QUERY_ORDER) == 18
        assert set(XMARK_QUERY_ORDER) == set(XMARK_QUERIES)
        assert "XM15" not in XMARK_QUERIES and "XM16" not in XMARK_QUERIES

    def test_xm2_and_xm3_share_projection_paths(self):
        assert XMARK_QUERIES["XM2"].projection_paths == XMARK_QUERIES["XM3"].projection_paths

    def test_xmark_paths_parse_and_use_declared_tags(self, xmark_dtd_fixture):
        declared = xmark_dtd_fixture.tag_names()
        for spec in XMARK_QUERIES.values():
            for text in spec.projection_paths:
                path = ProjectionPath.parse(text)
                for step in path.steps:
                    assert step.name == "*" or step.name in declared, (spec.name, text)

    def test_tbp_comparison_subset(self):
        assert set(TBP_COMPARISON_QUERIES) <= set(XMARK_QUERIES)

    def test_table2_query_set_is_complete(self):
        assert MEDLINE_QUERY_ORDER == ("M1", "M2", "M3", "M4", "M5")
        assert set(MEDLINE_QUERY_ORDER) == set(MEDLINE_QUERIES)

    def test_medline_paths_extracted_from_xpath(self, medline_dtd_fixture):
        declared = medline_dtd_fixture.tag_names()
        m5 = MEDLINE_QUERIES["M5"]
        assert any("MedlineJournalInfo" in path for path in m5.projection_paths)
        assert any("DateCompleted" in path for path in m5.projection_paths)
        for spec in MEDLINE_QUERIES.values():
            for text in spec.projection_paths:
                path = ProjectionPath.parse(text)
                for step in path.steps:
                    assert step.name == "*" or step.name in declared, (spec.name, text)

    def test_specs_compile_against_their_dtds(self):
        from repro import SmpPrefilter

        xm_dtd = xmark_dtd()
        for name in ("XM1", "XM6", "XM13"):
            prefilter = SmpPrefilter.compile(
                xm_dtd, XMARK_QUERIES[name].parsed_paths(), add_default_paths=False,
            )
            assert prefilter.tables.state_count() > 2
        m_dtd = medline_dtd()
        for name in MEDLINE_QUERY_ORDER:
            prefilter = SmpPrefilter.compile(
                m_dtd, MEDLINE_QUERIES[name].parsed_paths(), add_default_paths=False,
            )
            assert prefilter.tables.state_count() > 2


class TestDatasetCache:
    def test_load_dataset_caches_in_memory(self):
        clear_caches()
        first = load_dataset("xmark", size_bytes=60_000, seed=9)
        second = load_dataset("xmark", size_bytes=60_000, seed=9)
        assert first is second
        assert len(structural_tokens(first)) > 10

    def test_unknown_dataset_rejected(self):
        with pytest.raises(WorkloadError):
            load_dataset("unknown", size_bytes=1000)

    def test_default_document_bytes_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DOCUMENT_BYTES", "123456")
        assert default_document_bytes() == 123456
        monkeypatch.setenv("REPRO_DOCUMENT_BYTES", "not-a-number")
        with pytest.raises(WorkloadError):
            default_document_bytes()

    def test_dataset_spec_cache_key(self):
        assert DatasetSpec("xmark", 10, 1).cache_key() == ("xmark", 10, 1)
