"""Crash-recoverable streaming: checkpoint a session, kill it, resume it.

A filtering process that may die mid-stream (power cut, OOM kill,
preemption) checkpoints its session at chunk boundaries with
``session.checkpoint(path)`` — an atomic, checksummed snapshot of the
complete resume state.  A fresh process restores it with
``engine.open(resume=path)``, truncates its output file to the
checkpointed size, seeks the input to ``Checkpoint.input_offset``, and
continues — the final output and every statistics counter are
byte-identical to a run that never died.

This script walks that round trip against a generated MEDLINE corpus:

1. run the stream uninterrupted (the reference),
2. run it again but "crash" (abandon the session) partway through,
   keeping only the checkpoint file and the partial output,
3. resume from the checkpoint and finish,
4. prove crash+resume produced exactly the reference bytes and stats.

Run with::

    PYTHONPATH=src python examples/resume_stream.py
"""

from __future__ import annotations

import os
import tempfile

from repro import api
from repro.checkpoint import resume_chunks
from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd
from repro.workloads.medline.generator import generate_medline_document

CHUNK = 4096


def chunked(data: bytes):
    return [data[i:i + CHUNK] for i in range(0, len(data), CHUNK)]


def main() -> None:
    document = generate_medline_document(citations=80, seed=42).encode("utf-8")
    engine = api.Engine(api.Query.from_spec(medline_dtd(), MEDLINE_QUERIES["M2"]))
    chunks = chunked(document)
    print(f"input: {len(document):,} bytes in {len(chunks)} chunks")

    # 1. The reference: one uninterrupted run.
    reference = engine.run(api.Source.from_bytes(document), binary=True).single
    print(f"reference output: {len(reference.output):,} bytes")

    with tempfile.TemporaryDirectory() as scratch:
        out_path = os.path.join(scratch, "projected.xml")
        ckpt_path = os.path.join(scratch, "stream.ckpt")

        # 2. The doomed run: checkpoint after every chunk, die partway in.
        crash_at = len(chunks) // 2
        with open(out_path, "wb") as out:
            session = engine.open(
                sinks=[api.CallbackSink(out.write)], binary=True
            )
            for chunk in chunks[:crash_at]:
                session.feed(chunk)
                out.flush()
                session.checkpoint(ckpt_path)
            # The "crash": the session object is abandoned, never finished.
            # Only ckpt_path and the partial out_path survive the process.
        print(f"crashed after chunk {crash_at}, "
              f"partial output: {os.path.getsize(out_path):,} bytes")

        # 3. A fresh process resumes.  Truncate the output to the size the
        # checkpoint vouches for (a pertoken-delivery session may trail the
        # last fed byte), restore, and re-feed from the recorded offset.
        checkpoint = api.Checkpoint.load(ckpt_path)
        out = open(out_path, "r+b")
        out.truncate(checkpoint.output_sizes[0])
        out.seek(checkpoint.output_sizes[0])
        session = engine.open(
            sinks=[api.CallbackSink(out.write)], resume=checkpoint
        )
        print(f"resuming from input offset {checkpoint.input_offset:,}")
        for chunk in resume_chunks(chunks, checkpoint.input_offset):
            session.feed(chunk)
        session.finish()
        out.close()

        # 4. Crash + resume changed nothing observable.
        with open(out_path, "rb") as handle:
            recovered = handle.read()
        assert recovered == reference.output, "output diverged!"
        assert session.stats[0].char_comparisons == reference.stats.char_comparisons
        assert session.stats[0].tokens_matched == reference.stats.tokens_matched
        print(f"resumed output: {len(recovered):,} bytes -- "
              "byte-identical to the uninterrupted run, statistics equal")


if __name__ == "__main__":
    main()
