"""Workload generation and differential fuzzing end to end.

Part 1 resolves a generated workload address (``workloads.get("gen:...")``),
shows the schema it denotes (the DTD), the deterministic record stream,
and the matched query set with its satisfiable/control split.

Part 2 runs one generated query through the full differential matrix by
hand -- whole-document vs adversarially chunked per delivery tier -- and
prints the statistics that the fuzz driver asserts equal.

Part 3 runs a seeded fuzz sweep programmatically (``run_fuzz``), then
demonstrates the self-test: injecting a deterministic corruption with
``--inject-seed`` semantics and replaying the printed repro line.

Run with::

    python examples/generated_fuzz.py [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import workloads
from repro.core.prefilter import SmpPrefilter
from repro.workloads.fuzz import (
    STATS_FIELDS,
    adversarial_chunks,
    available_deliveries,
    run_case,
    run_fuzz,
)


def stats_tuple(stats):
    return tuple(getattr(stats, field) for field in STATS_FIELDS)


def workload_tour(seed: int):
    print("generated workload: one address, one experiment")
    print("-----------------------------------------------")
    address = (f"gen:depth=6,fanout=4,seed={seed},records=4,"
               f"record_bytes=1500,queries=8")
    workload = workloads.get(address)
    print(f"address:  {address}")
    print(f"root:     {workload.dtd.root_name}")
    print(f"dtd:      {len(workload.dtd.elements)} declared elements, "
          f"e.g. {sorted(workload.dtd.elements)[:4]}")
    records = workload.records()
    print(f"records:  {len(records)} "
          f"({sum(len(r) for r in records):,} bytes total, "
          "record 0 is the coverage record)")
    satisfiable = [name for name in workload.query_order
                   if "phantom" not in name and "never" not in name]
    controls = [name for name in workload.query_order
                if name not in satisfiable]
    print(f"queries:  {len(satisfiable)} satisfiable by construction, "
          f"{len(controls)} controls {controls}")
    for name in workload.query_order[:4]:
        print(f"            {name}: {workload.queries[name].xpath}")
    return workload, satisfiable


def differential_by_hand(workload, query_name: str) -> None:
    print()
    print("the differential contract, one cell by hand")
    print("-------------------------------------------")
    stream = workload.stream()
    plan = SmpPrefilter.cached_for_query(
        workload.dtd, workload.query(query_name), backend="native"
    )
    reference = plan.session(binary=True, delivery="pertoken").run([stream])
    print(f"query {query_name}: reference output "
          f"{len(reference.output):,} bytes "
          f"(pertoken, whole document)")
    for delivery in available_deliveries():
        for flavor in ("tiny", "midtag", "midutf8"):
            chunks = adversarial_chunks(stream, flavor)
            run = plan.session(binary=True, delivery=delivery).run(chunks)
            assert run.output == reference.output
            assert stats_tuple(run.stats) == stats_tuple(reference.stats)
            print(f"  {delivery:>8} x {flavor:<8} "
                  f"({len(chunks):>5} chunks): byte-identical, "
                  f"all {len(STATS_FIELDS)} stats fields equal")


def fuzz_sweep(seed: int) -> None:
    print()
    print("seeded fuzz sweep (programmatic run_fuzz)")
    print("-----------------------------------------")
    report = run_fuzz(seed=seed, budget=40,
                      scenarios=("baseline", "utf8", "json"))
    print(f"seed={seed} pairs={report.pairs} cases={len(report.cases)} "
          f"deliveries={','.join(report.deliveries)} "
          f"divergences={len(report.divergences)}")
    assert report.ok

    print()
    print("self-test: a seeded corruption is caught and addressable")
    print("--------------------------------------------------------")
    injected = run_fuzz(seed=seed, budget=10, scenarios=("baseline",),
                        inject_seed=1234)
    assert not injected.ok
    first = injected.divergences[0]
    print(f"caught {len(injected.divergences)} divergences; first:")
    print(f"  scenario={first.scenario} query={first.query} "
          f"comparison={first.comparison}")
    print(f"  repro: {first.repro}")
    replay = run_case(first.scenario, first.case_seed, inject_seed=1234)
    assert replay.divergences, "the repro line must replay the finding"
    print("replayed the repro line: divergence reproduced")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    arguments = parser.parse_args()

    workload, satisfiable = workload_tour(arguments.seed)
    differential_by_hand(workload, satisfiable[0])
    fuzz_sweep(arguments.seed)


if __name__ == "__main__":
    main()
