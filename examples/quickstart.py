"""Quickstart: compile an SMP prefilter and project a small document.

This reproduces the paper's running example (Example 1 / Figure 2): the
XQuery ``<q>{ //australia//description }</q>`` needs only the ``australia``
subtree's ``description`` elements, so prefiltering shrinks the document to
a few tags while inspecting only a fraction of the characters.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Dtd, SmpPrefilter, api

SITE_DTD = """<!DOCTYPE site [
<!ELEMENT site (regions)>
<!ELEMENT regions (africa, asia, australia)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT item (location, name, payment, description, shipping, incategory+)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category ID #REQUIRED>
]>"""

DOCUMENT = (
    "<site><regions>"
    "<africa><item><location>United States</location><name>T V</name>"
    "<payment>Creditcard</payment><description>15'' LCD-FlatPanel</description>"
    "<shipping>Within country</shipping><incategory category=\"c3\"/></item></africa>"
    "<asia/>"
    "<australia><item ><location>Egypt</location><name>PDA</name>"
    "<payment>Check</payment><description>Palm Zire 71</description>"
    "<shipping/><incategory category=\"c3\"/></item></australia>"
    "</regions></site>"
)


def main() -> None:
    dtd = Dtd.parse(SITE_DTD)

    # The projection paths for //australia//description (Example 4 of the
    # paper): the description subtrees, plus /* for well-formed output.
    prefilter = SmpPrefilter.compile(dtd, ["//australia//description#"])

    print("Runtime automaton and lookup tables")
    print("-----------------------------------")
    print(prefilter.describe_tables())
    print()

    # The unified dataflow API: Source -> Query -> Engine -> Sink.
    engine = api.Engine(api.Query.from_plan(prefilter, label="australia"))
    run = engine.run(api.Source.from_text(DOCUMENT)).single
    print("Input document  :", DOCUMENT)
    print("Projected output:", run.output)
    print()
    print(f"input size          : {run.stats.input_size} characters")
    print(f"output size         : {run.stats.output_size} characters")
    print(f"characters inspected: {run.stats.char_comparison_ratio:.1f} %")
    print(f"average shift       : {run.stats.average_shift:.2f} characters")
    print(f"initial jumps       : {run.stats.initial_jump_ratio:.2f} % of the input")
    print(f"runtime states      : {prefilter.states_summary()} (CW + BM)")


if __name__ == "__main__":
    main()
