"""Comparing the string-matching algorithms that power SMP.

The paper's key observation is that Boyer-Moore and Commentz-Walter skip most
of the input.  This example plants XML tag keywords in synthetic text and
reports, for every matcher in the library, how many character comparisons it
needed and what its average forward shift was.

Run with::

    python examples/string_matching_playground.py
"""

from __future__ import annotations

import random

from repro.matching import (
    AhoCorasickMatcher,
    BoyerMooreMatcher,
    CommentzWalterMatcher,
    HorspoolMatcher,
    NaiveMatcher,
    NaiveMultiMatcher,
)


def build_text(seed: int = 1, size: int = 200_000) -> str:
    rng = random.Random(seed)
    words = ["lorem", "ipsum", "dolor", "sit", "amet", "payment", "items",
             "<name>", "<payment>", "auction", "person", "</name>"]
    pieces = []
    total = 0
    while total < size:
        word = rng.choice(words)
        pieces.append(word)
        total += len(word) + 1
    pieces.append("<australia><description>Palm Zire 71</description></australia>")
    return " ".join(pieces)


def main() -> None:
    text = build_text()
    print(f"text size: {len(text):,} characters\n")

    keyword = "<australia"
    print(f"single keyword search for {keyword!r}")
    print(f"{'algorithm':<16} {'found at':>10} {'comparisons':>12} {'avg shift':>10}")
    for matcher in (NaiveMatcher(keyword), HorspoolMatcher(keyword), BoyerMooreMatcher(keyword)):
        match = matcher.find(text)
        print(
            f"{matcher.algorithm_name:<16} {match.position:>10,} "
            f"{matcher.stats.comparisons:>12,} {matcher.stats.average_shift:>10.2f}"
        )

    keywords = ["<australia", "<description", "</australia"]
    print(f"\nmulti keyword search for {keywords}")
    print(f"{'algorithm':<16} {'found at':>10} {'keyword':>14} {'comparisons':>12} {'avg shift':>10}")
    for matcher in (
        NaiveMultiMatcher(keywords),
        AhoCorasickMatcher(keywords),
        CommentzWalterMatcher(keywords),
    ):
        match = matcher.find(text)
        print(
            f"{matcher.algorithm_name:<16} {match.position:>10,} {match.keyword:>14} "
            f"{matcher.stats.comparisons:>12,} {matcher.stats.average_shift:>10.2f}"
        )

    print(
        "\nThe skipping algorithms (Boyer-Moore, Commentz-Walter) inspect a small "
        "fraction of the text;\nthis is exactly the effect the SMP runtime exploits "
        "when it navigates raw XML."
    )


if __name__ == "__main__":
    main()
