"""The unified dataflow API end to end: live queries and socket serving.

Part 1 streams a synthetic MEDLINE document through one shared-scan
session, attaches a query *mid-document*, and detaches another — the
live-session side of ``repro.api``.

Part 2 starts the asyncio serving bridge (``repro.aio``): one TCP
connection streams the document in, and every query of the engine streams
its projection back as labelled frames over the same socket, demultiplexed
by the bundled client.

Run with::

    python examples/dataflow_serving.py [--citations 500]
"""

from __future__ import annotations

import argparse
import asyncio

from repro import aio, api
from repro.workloads.medline import MEDLINE_QUERIES, generate_medline_document, \
    medline_dtd


def live_session_demo(dtd, document: bytes) -> None:
    print("live session: attach and detach mid-stream")
    print("------------------------------------------")
    engine = api.Engine(
        [
            api.Query.from_spec(dtd, MEDLINE_QUERIES["M2"]),
            api.Query.from_spec(dtd, MEDLINE_QUERIES["M4"]),
        ]
    )
    session = engine.open(binary=True)
    collected = {handle.label: 0 for handle in session.handles}

    half = len(document) // 2
    for index, emitted in enumerate(session.feed(document[:half])):
        collected[session.handles[index].label] += len(emitted)

    # Hot attach: M5 starts observing at the current dispatch frontier --
    # exactly like a fresh session fed only the remaining bytes.
    late = session.attach(api.Query.from_spec(dtd, MEDLINE_QUERIES["M5"]))
    collected[late.label] = 0
    print(f"attached {late.label!r} at byte offset {late.attached_at:,}")

    # Hot detach: M4 stops emitting, its statistics freeze.
    detached = session.handles[1]
    session.detach(detached)
    print(f"detached {detached.label!r} after "
          f"{detached.stats.tokens_matched} matched tokens")

    for index, emitted in enumerate(session.feed(document[half:])):
        collected[session.handles[index].label] += len(emitted)
    for index, emitted in enumerate(session.finish()):
        collected[session.handles[index].label] += len(emitted)

    for handle in session.handles:
        state = ("detached" if handle.detached
                 else "accepted" if handle.accepted else "incomplete")
        print(f"  {handle.label:<4} {collected[handle.label]:>9,} bytes "
              f"projected ({state})")
    print()


async def serving_demo(dtd, document: bytes) -> None:
    print("serving bridge: one socket in, N labelled streams out")
    print("-----------------------------------------------------")
    engine = api.Engine(
        [
            api.Query.from_spec(dtd, MEDLINE_QUERIES[name])
            for name in ("M2", "M3", "M5")
        ]
    )
    server = await aio.serve(engine, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    print(f"serving {len(engine.labels)} queries on 127.0.0.1:{port}")
    async with server:
        outputs = await aio.request(
            "127.0.0.1", port, api.Source.from_bytes(document)
        )
    for label, projected in sorted(outputs.items()):
        print(f"  {label:<4} {len(projected):>9,} bytes over the wire")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--citations", type=int, default=500,
                        help="number of MEDLINE citation records to generate")
    arguments = parser.parse_args()

    dtd = medline_dtd()
    document = generate_medline_document(
        citations=arguments.citations
    ).encode("utf-8")
    print(f"document size: {len(document):,} bytes\n")

    live_session_demo(dtd, document)
    asyncio.run(serving_demo(dtd, document))


if __name__ == "__main__":
    main()
