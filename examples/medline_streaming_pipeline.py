"""Pipelining SMP prefiltering with a streaming XPath engine (MEDLINE).

The paper's Figure 7(b) pipes SMP output directly into the SPEX streaming
XPath evaluator and observes that the pipeline runs at nearly the speed of
prefiltering alone.  This example replays that experiment on the synthetic
MEDLINE workload: every Table II query M1-M5 is evaluated once on the raw
document, once on the prefiltered document, and once through the *true
streaming* :class:`repro.pipeline.XPathPipeline`, where the document flows
through prefilter, tokenizer and evaluator in 64 KiB chunks without any
whole-document string; all three must return identical results.

Run with::

    python examples/medline_streaming_pipeline.py [--citations 3000]
"""

from __future__ import annotations

import argparse
import time

from repro import api
from repro.pipeline import XPathPipeline
from repro.workloads.medline import MEDLINE_QUERIES, MEDLINE_QUERY_ORDER, \
    generate_medline_document, medline_dtd
from repro.xpath import StreamingXPathEngine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--citations", type=int, default=3000,
                        help="number of MEDLINE citation records to generate")
    arguments = parser.parse_args()

    print(f"generating a MEDLINE-like document with {arguments.citations} citations ...")
    document = generate_medline_document(citations=arguments.citations)
    dtd = medline_dtd()
    size_mb = len(document) / 1_000_000
    print(f"document size: {size_mb:.2f} MB\n")

    header = (
        f"{'query':<4} {'results':>8} {'alone s':>9} {'smp s':>7} "
        f"{'pipeline s':>11} {'stream s':>9} {'alone MB/s':>11} {'pipeline MB/s':>14}"
    )
    print(header)
    print("-" * len(header))

    for name in MEDLINE_QUERY_ORDER:
        spec = MEDLINE_QUERIES[name]
        engine = StreamingXPathEngine(spec.query)
        prefilter_engine = api.Engine(
            api.Query.from_spec(dtd, spec, backend="native")
        )

        start = time.perf_counter()
        alone_results = engine.evaluate(document)
        alone_seconds = time.perf_counter() - start

        start = time.perf_counter()
        projected = prefilter_engine.run(
            api.Source.from_text(document)
        ).single.output
        smp_seconds = time.perf_counter() - start

        start = time.perf_counter()
        piped_results = engine.evaluate(projected)
        pipeline_seconds = smp_seconds + (time.perf_counter() - start)

        # The unified streaming pipeline: prefilter -> project -> evaluate
        # chunk by chunk, without any whole-document intermediate string.
        streaming_pipeline = XPathPipeline(
            dtd, spec.query, backend="native", paths=spec.parsed_paths()
        )
        start = time.perf_counter()
        outcome = streaming_pipeline.evaluate(
            api.Source.from_text(document, chunk_size=64 * 1024)
        )
        stream_seconds = time.perf_counter() - start

        def rendered(items):
            return sorted(
                item.serialize() if hasattr(item, "serialize") else str(item)
                for item in items
            )

        assert rendered(alone_results) == rendered(piped_results)
        assert rendered(alone_results) == rendered(outcome.results)
        print(
            f"{name:<4} {len(piped_results):>8} {alone_seconds:>9.3f} {smp_seconds:>7.3f} "
            f"{pipeline_seconds:>11.3f} {stream_seconds:>9.3f} "
            f"{size_mb / alone_seconds:>11.2f} "
            f"{size_mb / pipeline_seconds:>14.2f}"
        )

    print("\nevery query returned identical results with and without prefiltering,")
    print("including the chunked end-to-end pipeline (no whole-document strings)")


if __name__ == "__main__":
    main()
