"""Prefiltering the XMark workload and feeding an in-memory query engine.

This example replays the paper's Table I / Figure 7(a) scenario at a small
scale: it generates a synthetic XMark-like document, prefilters it for a few
benchmark queries, reports the paper's per-query metrics, and finally shows
that evaluating the query on the projected document gives the same answers
as on the original while loading a much smaller tree.

Run with::

    python examples/xmark_prefiltering.py [--megabytes 2.0]
"""

from __future__ import annotations

import argparse

from repro import api
from repro.workloads.xmark import XMARK_QUERIES, generate_xmark_document_of_size, xmark_dtd
from repro.xpath import InMemoryQueryEngine, string_value

QUERIES = ("XM1", "XM5", "XM6", "XM13", "XM14", "XM19")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--megabytes", type=float, default=2.0,
                        help="approximate size of the generated document")
    arguments = parser.parse_args()

    print(f"generating an XMark-like document of ~{arguments.megabytes} MB ...")
    document = generate_xmark_document_of_size(int(arguments.megabytes * 1_000_000))
    dtd = xmark_dtd()
    print(f"document size: {len(document):,} characters\n")

    header = (
        f"{'query':<6} {'proj size':>10} {'proj %':>7} {'states':>12} "
        f"{'shift':>6} {'jumps %':>8} {'char comp %':>12}"
    )
    print(header)
    print("-" * len(header))
    for name in QUERIES:
        spec = XMARK_QUERIES[name]
        query = api.Query.from_spec(dtd, spec, backend="instrumented")
        run = api.Engine(query).run(api.Source.from_text(document)).single
        stats = run.stats
        print(
            f"{name:<6} {run.output_size:>10,} {100 * stats.projection_ratio:>6.1f}% "
            f"{run.compilation.states_label():>12} {stats.average_shift:>6.2f} "
            f"{stats.initial_jump_ratio:>7.2f}% {stats.char_comparison_ratio:>11.2f}%"
        )

    # Figure 7(a) in miniature: the query result is identical on the
    # projected document, but the engine loads a far smaller tree.
    spec = XMARK_QUERIES["XM13"]
    query = api.Query.from_spec(dtd, spec, backend="native")
    projected = api.Engine(query).run(api.Source.from_text(document)).single.output
    engine = InMemoryQueryEngine()
    full = engine.run(spec.xpath, document)
    pruned = engine.run(spec.xpath, projected)

    print()
    print(f"query {spec.name}: {spec.query}")
    print(f"results on the original document : {full.result_count}")
    print(f"results on the projected document: {pruned.result_count}")
    assert [string_value(item) for item in full.results] == \
        [string_value(item) for item in pruned.results]
    print(f"estimated tree memory, original  : {full.estimated_memory_bytes:,} bytes")
    print(f"estimated tree memory, projected : {pruned.estimated_memory_bytes:,} bytes")
    print(f"load time, original              : {full.load_seconds:.3f} s")
    print(f"load time, projected             : {pruned.load_seconds:.3f} s")


if __name__ == "__main__":
    main()
