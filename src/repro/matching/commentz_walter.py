"""Commentz-Walter multi-keyword matcher.

Commentz-Walter combines a trie over the *reversed* keywords with
Boyer-Moore-style skipping: a window is aligned with the text, the window is
scanned right to left through the reversed trie, and on a mismatch the window
is shifted forward by a precomputed amount.  It is the algorithm the SMP
runtime uses whenever the frontier vocabulary of the current state contains
more than one keyword (Section II of the paper, label "(CW)" in Figure 4).

Shift function
--------------
The shift applied after a window scan is ``max(bad_character, good_suffix)``
where both components are *lower bounds* on the largest safe shift (a shift is
safe when it cannot skip the end position of any keyword occurrence):

* ``bad_character`` is the classical set-Horspool table indexed by the text
  character aligned with the window end: the minimal distance between the end
  of a keyword and an occurrence of that character further left in the same
  keyword, capped at the minimal keyword length.
* ``good_suffix`` is a per-trie-node table: given the (reversed) suffix
  matched so far, the minimal shift that re-aligns some keyword consistently
  with the characters already read.

Both bounds are derived by dropping constraints from the exact consistency
condition, so each is individually safe and so is their maximum.  The
resulting matcher has the skip profile the paper reports (average forward
shifts in the 5-13 character range for tag keywords) while remaining easy to
verify against the Aho-Corasick oracle in the test suite.
"""

from __future__ import annotations

from typing import Sequence

from repro.matching.base import Match, MultiKeywordMatcher, PendingSearch


class _CwNode:
    """A node of the reversed-keyword trie with its precomputed shift."""

    __slots__ = ("children", "depth", "outputs", "good_suffix_shift")

    def __init__(self, depth: int) -> None:
        self.children: dict[str, "_CwNode"] = {}
        self.depth = depth
        self.outputs: list[int] = []
        self.good_suffix_shift = 1


class CommentzWalterMatcher(MultiKeywordMatcher):
    """Right-to-left multi-keyword search with Boyer-Moore style shifts."""

    algorithm_name = "commentz-walter"

    def __init__(self, keywords: Sequence[str]) -> None:
        super().__init__(keywords)
        self._min_length = min(len(keyword) for keyword in self.keywords)
        self._max_length = max(len(keyword) for keyword in self.keywords)
        self._root = _CwNode(depth=0)
        self._build_trie()
        self._bad_character = self._build_bad_character_table()
        self._compute_good_suffix_shifts()

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def _build_trie(self) -> None:
        for index, keyword in enumerate(self.keywords):
            node = self._root
            for character in reversed(keyword):
                child = node.children.get(character)
                if child is None:
                    child = _CwNode(depth=node.depth + 1)
                    node.children[character] = child
                node = child
            node.outputs.append(index)

    def _build_bad_character_table(self) -> dict[str, int]:
        """Set-Horspool shift table keyed on the window-end character.

        ``table[c]`` is the minimal ``distance`` such that some keyword has
        character ``c`` at ``distance`` positions before its last character.
        Characters that never occur in that region take the cap
        ``min_length``, which is safe because a keyword that does not contain
        ``c`` left of its last position cannot produce an occurrence whose
        interior covers the window-end character.
        """
        table: dict[str, int] = {}
        for keyword in self.keywords:
            length = len(keyword)
            for position in range(length - 1):
                distance = length - 1 - position
                character = keyword[position]
                current = table.get(character)
                if current is None or distance < current:
                    table[character] = distance
        cap = self._min_length
        return {character: min(distance, cap) for character, distance in table.items()}

    def bad_character_shift(self, character: str) -> int:
        """Shift suggested by the window-end character alone."""
        return self._bad_character.get(character, self._min_length)

    def _nodes_with_words(self) -> list[tuple[str, _CwNode]]:
        """Return ``(word, node)`` pairs where ``word`` spells root -> node.

        Trie edges are keyed by text *elements* -- characters for ``str``
        keywords, byte values (``int``) for ``bytes`` keywords -- so the
        path word is rebuilt with the keyword type's constructor.
        """
        empty = self.keywords[0][:0]
        join = (
            "".join if isinstance(empty, str)
            else bytes  # a list of byte values -> bytes
        )
        result: list[tuple[str, _CwNode]] = []
        stack: list[tuple[list, _CwNode]] = [([], self._root)]
        while stack:
            path, node = stack.pop()
            result.append((join(path), node))
            for character, child in node.children.items():
                stack.append((path + [character], child))
        return result

    def _compute_good_suffix_shifts(self) -> None:
        """Precompute, per node, the minimal re-alignment shift.

        For a node whose path word is ``w`` (``w`` is the matched text suffix
        read right-to-left), a shift of ``s`` is *consistent* with keyword
        ``k`` if the reversed keyword, offset by ``s``, agrees with ``w`` on
        their overlap.  The node's shift is the minimum consistent ``s >= 1``
        over all keywords, with ``len(k)`` as each keyword's fallback (the
        occurrence starts entirely to the right of the window end).
        """
        pairs = self._nodes_with_words()
        for word, node in pairs:
            best = min(len(keyword) for keyword in self.keywords)
            for keyword in self.keywords:
                reversed_keyword = keyword[::-1]
                length = len(keyword)
                for shift in range(1, length):
                    overlap = min(len(word), length - shift)
                    if reversed_keyword[shift:shift + overlap] == word[:overlap]:
                        if shift < best:
                            best = shift
                        break
            node.good_suffix_shift = max(1, best)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        limit = len(text) if end is None else min(end, len(text))
        start = max(start, 0)
        self.stats.searches += 1
        best, _, _ = self._scan_windows(
            text, start, limit, start + self._min_length - 1, None
        )
        if best is not None:
            self.stats.matches += 1
        return best

    def _scan_windows(
        self,
        text: str,
        start: int,
        limit: int,
        window_end: int,
        best: Match | None,
    ) -> tuple[Match | None, int, bool]:
        """Run the window loop from ``window_end``.

        Returns ``(best, window_end, confirmed)``: ``confirmed`` is True when
        the early-exit rule proved that no later window can improve on
        ``best``.  The loop's only state is ``(window_end, best)`` plus the
        left scan bound ``start``, so a chunked search that resumes with the
        same state replays the whole-text search comparison for comparison.
        """
        max_length = self._max_length
        while window_end < limit:
            if best is not None and window_end > best.position + max_length - 1:
                return best, window_end, True
            node = self._root
            offset = 0
            while True:
                text_index = window_end - offset
                if text_index < start:
                    break
                character = text[text_index]
                self.stats.comparisons += 1
                child = node.children.get(character)
                if child is None:
                    break
                node = child
                offset += 1
                for keyword_index in node.outputs:
                    keyword = self.keywords[keyword_index]
                    candidate = Match(
                        position=window_end - offset + 1,
                        keyword=keyword,
                        keyword_index=keyword_index,
                    )
                    if (
                        best is None
                        or candidate.position < best.position
                        or (
                            candidate.position == best.position
                            and len(candidate.keyword) > len(best.keyword)
                        )
                    ):
                        best = candidate
            shift = max(
                self.bad_character_shift(text[window_end]),
                node.good_suffix_shift,
                1,
            )
            self.stats.record_shift(shift)
            window_end += shift
        return best, window_end, False

    def find_chunk(
        self,
        text: str,
        base: int,
        start: int,
        end: int,
        *,
        at_eof: bool,
        pending: PendingSearch | None = None,
    ) -> Match | PendingSearch | None:
        if pending is None:
            self.stats.searches += 1
            left = start
            window_end = start + self._min_length - 1
            best: Match | None = None
        else:
            left, window_end, best = pending.state  # type: ignore[misc]
        best_local = None if best is None else best.shifted(-base)
        best_local, window_end_local, confirmed = self._scan_windows(
            text, left - base, end - base, window_end - base, best_local
        )
        if confirmed or at_eof:
            if best_local is None:
                return None
            self.stats.matches += 1
            return best_local.shifted(base)
        best = None if best_local is None else best_local.shifted(base)
        keep_from = window_end_local + base - self._max_length + 1
        if best is not None:
            keep_from = min(keep_from, best.position)
        return PendingSearch(
            keep_from=max(left, keep_from),
            state=(left, window_end_local + base, best),
        )
