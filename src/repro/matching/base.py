"""Common interfaces and statistics for the string-matching algorithms.

The paper reduces XML prefiltering to a sequence of string-matching problems:
single-keyword problems are solved with Boyer-Moore and multi-keyword problems
with Commentz-Walter (Section II).  All matchers in this package implement a
small common interface so the SMP runtime can swap algorithms freely and so
the benchmarks can compare them head to head.

Two kinds of matchers exist:

* :class:`SingleKeywordMatcher` -- compiled for one keyword, returns the next
  occurrence at or after a starting offset.
* :class:`MultiKeywordMatcher` -- compiled for a set of keywords, returns the
  next occurrence of *any* keyword.

Every matcher keeps a :class:`MatchStatistics` record.  The paper's Table I
and Table II report the number of character comparisons relative to the
document size and the average forward-shift size; both are derived from these
counters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import MatchingError


@dataclass
class MatchStatistics:
    """Counters accumulated by a matcher across all of its searches.

    Attributes
    ----------
    comparisons:
        Number of character comparisons performed against the text.
    shifts:
        Number of window shifts performed.
    shift_total:
        Sum of all shift distances, so ``shift_total / shifts`` is the
        average forward-shift size reported in the paper's tables.
    searches:
        Number of individual search invocations.
    matches:
        Number of successful matches reported.
    """

    comparisons: int = 0
    shifts: int = 0
    shift_total: int = 0
    searches: int = 0
    matches: int = 0

    def record_shift(self, distance: int) -> None:
        """Record a forward shift of ``distance`` characters."""
        if distance > 0:
            self.shifts += 1
            self.shift_total += distance

    @property
    def average_shift(self) -> float:
        """Average size of a forward shift, in characters."""
        if self.shifts == 0:
            return 0.0
        return self.shift_total / self.shifts

    def merge(self, other: "MatchStatistics") -> None:
        """Accumulate the counters from ``other`` into this record."""
        self.comparisons += other.comparisons
        self.shifts += other.shifts
        self.shift_total += other.shift_total
        self.searches += other.searches
        self.matches += other.matches

    def reset(self) -> None:
        """Zero all counters."""
        self.comparisons = 0
        self.shifts = 0
        self.shift_total = 0
        self.searches = 0
        self.matches = 0

    def snapshot(self) -> "MatchStatistics":
        """Return an independent copy of the current counters."""
        return MatchStatistics(
            comparisons=self.comparisons,
            shifts=self.shifts,
            shift_total=self.shift_total,
            searches=self.searches,
            matches=self.matches,
        )


@dataclass(frozen=True)
class Match:
    """A single keyword occurrence.

    Attributes
    ----------
    position:
        Offset of the first character of the matched keyword in the text.
    keyword:
        The keyword that matched.
    keyword_index:
        Index of the keyword in the matcher's keyword list (0 for
        single-keyword matchers).
    """

    position: int
    keyword: str
    keyword_index: int = 0

    @property
    def end(self) -> int:
        """Offset one past the last character of the match."""
        return self.position + len(self.keyword)


class SingleKeywordMatcher(ABC):
    """A matcher compiled for exactly one keyword."""

    algorithm_name: str = "abstract"

    def __init__(self, keyword: str) -> None:
        if not keyword:
            raise MatchingError("keyword must be a non-empty string")
        self.keyword = keyword
        self.stats = MatchStatistics()

    @abstractmethod
    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        """Return the first occurrence of the keyword in ``text[start:end]``.

        Returns ``None`` when the keyword does not occur.  Offsets in the
        returned :class:`Match` are absolute offsets into ``text``.
        """

    def find_all(self, text: str, start: int = 0, end: int | None = None) -> list[Match]:
        """Return every (possibly overlapping) occurrence of the keyword."""
        matches: list[Match] = []
        position = start
        limit = len(text) if end is None else end
        while position <= limit - len(self.keyword):
            match = self.find(text, position, limit)
            if match is None:
                break
            matches.append(match)
            position = match.position + 1
        return matches


class MultiKeywordMatcher(ABC):
    """A matcher compiled for a set of keywords."""

    algorithm_name: str = "abstract"

    def __init__(self, keywords: Sequence[str]) -> None:
        keyword_list = list(keywords)
        if not keyword_list:
            raise MatchingError("at least one keyword is required")
        if any(not keyword for keyword in keyword_list):
            raise MatchingError("keywords must be non-empty strings")
        if len(set(keyword_list)) != len(keyword_list):
            raise MatchingError("keywords must be unique")
        self.keywords = keyword_list
        self.stats = MatchStatistics()

    @abstractmethod
    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        """Return the leftmost occurrence of any keyword in ``text[start:end]``.

        When several keywords match at the same position the longest keyword
        is preferred, which is the behaviour the SMP runtime relies on for
        distinguishing tag names that are prefixes of each other.
        """

    def find_all(self, text: str, start: int = 0, end: int | None = None) -> list[Match]:
        """Return every occurrence of any keyword, ordered by position."""
        matches: list[Match] = []
        position = start
        limit = len(text) if end is None else end
        while position < limit:
            match = self.find(text, position, limit)
            if match is None:
                break
            matches.append(match)
            position = match.position + 1
        return matches


@dataclass
class _ShiftTables:
    """Internal container for precomputed Boyer-Moore style shift tables."""

    bad_character: dict[str, int] = field(default_factory=dict)
    good_suffix: list[int] = field(default_factory=list)


def leftmost_longest(matches: Sequence[Match]) -> Match | None:
    """Pick the leftmost match, breaking ties by preferring longer keywords."""
    best: Match | None = None
    for match in matches:
        if best is None:
            best = match
            continue
        if match.position < best.position:
            best = match
        elif match.position == best.position and len(match.keyword) > len(best.keyword):
            best = match
    return best
