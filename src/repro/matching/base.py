"""Common interfaces and statistics for the string-matching algorithms.

The paper reduces XML prefiltering to a sequence of string-matching problems:
single-keyword problems are solved with Boyer-Moore and multi-keyword problems
with Commentz-Walter (Section II).  All matchers in this package implement a
small common interface so the SMP runtime can swap algorithms freely and so
the benchmarks can compare them head to head.

Two kinds of matchers exist:

* :class:`SingleKeywordMatcher` -- compiled for one keyword, returns the next
  occurrence at or after a starting offset.
* :class:`MultiKeywordMatcher` -- compiled for a set of keywords, returns the
  next occurrence of *any* keyword.

Every matcher keeps a :class:`MatchStatistics` record.  The paper's Table I
and Table II report the number of character comparisons relative to the
document size and the average forward-shift size; both are derived from these
counters.

Resumable searches
------------------
The streaming SMP runtime feeds the matchers one bounded window of the input
at a time (see :mod:`repro.core.stream`).  A keyword occurrence can straddle
a chunk boundary, so both matcher families additionally implement
:meth:`find_chunk`: a search over a window that either completes (``Match``
or ``None``) or *suspends* with a :class:`PendingSearch` when it reaches the
end of the window before the outcome is decided.  Passing the suspension back
with the grown window resumes the search exactly where it stopped; the
instrumented algorithms guarantee that the comparison and shift counters of a
chunked search are bit-identical to a whole-document search, which is what
keeps the paper's character-based statistics invariant under chunking.

Byte-native operation
---------------------
Every matcher is *polymorphic over the text type*: compiled from ``str``
keywords it searches ``str`` text, compiled from ``bytes`` keywords it
searches ``bytes``-like text (``bytes``, ``mmap``) with identical match
sequences and statistics -- indexing either type yields comparable elements
(characters vs byte values), which is all the algorithms use.  The
byte-native SMP runtime compiles its frontier vocabularies as UTF-8
keywords and runs the automata directly on the wire/disk representation;
the counters then count bytes, which coincides with characters on the
ASCII tag keywords and documents of the paper's workloads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import MatchingError


@dataclass
class MatchStatistics:
    """Counters accumulated by a matcher across all of its searches.

    Attributes
    ----------
    comparisons:
        Number of character comparisons performed against the text.
    shifts:
        Number of window shifts performed.
    shift_total:
        Sum of all shift distances, so ``shift_total / shifts`` is the
        average forward-shift size reported in the paper's tables.
    searches:
        Number of individual search invocations.
    matches:
        Number of successful matches reported.
    """

    comparisons: int = 0
    shifts: int = 0
    shift_total: int = 0
    searches: int = 0
    matches: int = 0

    def record_shift(self, distance: int) -> None:
        """Record a forward shift of ``distance`` characters."""
        if distance > 0:
            self.shifts += 1
            self.shift_total += distance

    @property
    def average_shift(self) -> float:
        """Average size of a forward shift, in characters."""
        if self.shifts == 0:
            return 0.0
        return self.shift_total / self.shifts

    def merge(self, other: "MatchStatistics") -> None:
        """Accumulate the counters from ``other`` into this record."""
        self.comparisons += other.comparisons
        self.shifts += other.shifts
        self.shift_total += other.shift_total
        self.searches += other.searches
        self.matches += other.matches

    def reset(self) -> None:
        """Zero all counters."""
        self.comparisons = 0
        self.shifts = 0
        self.shift_total = 0
        self.searches = 0
        self.matches = 0

    def snapshot(self) -> "MatchStatistics":
        """Return an independent copy of the current counters."""
        return MatchStatistics(
            comparisons=self.comparisons,
            shifts=self.shifts,
            shift_total=self.shift_total,
            searches=self.searches,
            matches=self.matches,
        )


@dataclass(frozen=True)
class Match:
    """A single keyword occurrence.

    Attributes
    ----------
    position:
        Offset of the first character of the matched keyword in the text.
    keyword:
        The keyword that matched.
    keyword_index:
        Index of the keyword in the matcher's keyword list (0 for
        single-keyword matchers).
    """

    position: int
    keyword: str
    keyword_index: int = 0

    @property
    def end(self) -> int:
        """Offset one past the last character of the match."""
        return self.position + len(self.keyword)

    def shifted(self, offset: int) -> "Match":
        """This match translated by ``offset`` characters."""
        if offset == 0:
            return self
        return Match(
            position=self.position + offset,
            keyword=self.keyword,
            keyword_index=self.keyword_index,
        )


@dataclass(frozen=True)
class PendingSearch:
    """A suspended keyword search that needs more input to be decided.

    Attributes
    ----------
    keep_from:
        Absolute stream offset of the leftmost character the resumed search
        may still read; no byte below it is needed, and any match eventually
        returned starts at or after it.  The streaming runtime uses this as
        its buffer-retention floor.
    state:
        Algorithm-specific resume information (opaque to callers; positions
        inside are absolute stream offsets).
    """

    keep_from: int
    state: object = None


class SingleKeywordMatcher(ABC):
    """A matcher compiled for exactly one keyword."""

    algorithm_name: str = "abstract"

    def __init__(self, keyword: str) -> None:
        if not keyword:
            raise MatchingError("keyword must be a non-empty string")
        self.keyword = keyword
        self.stats = MatchStatistics()

    @abstractmethod
    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        """Return the first occurrence of the keyword in ``text[start:end]``.

        Returns ``None`` when the keyword does not occur.  Offsets in the
        returned :class:`Match` are absolute offsets into ``text``.
        """

    def find_all(self, text: str, start: int = 0, end: int | None = None) -> list[Match]:
        """Return every (possibly overlapping) occurrence of the keyword."""
        matches: list[Match] = []
        position = start
        limit = len(text) if end is None else end
        while position <= limit - len(self.keyword):
            match = self.find(text, position, limit)
            if match is None:
                break
            matches.append(match)
            position = match.position + 1
        return matches

    #: Subclasses with an exact resumable scan bind this to a method
    #: ``(text, position, limit, at_eof) -> (Match | None, stop_position)``
    #: operating in text-local coordinates, where resuming a failed scan at
    #: ``stop_position`` with a longer limit replays the whole-text search
    #: comparison for comparison.  ``None`` selects the generic (stats-
    #: approximate) fallback built on :meth:`find`.
    _search_chunk = None

    def collect_chunk(
        self, text: str, base: int, start: int, end: int, *, at_eof: bool
    ) -> tuple[list[tuple[int, str]], int]:
        """Every keyword occurrence decidable in one window of a stream.

        Returns ``(hits, resume)``: all ``(position, keyword)`` occurrences
        starting in ``[start, resume)`` in document order, where ``resume``
        (the start of the next call) holds back the zone in which an
        occurrence could still straddle the window end (none is held back
        once ``at_eof``).  Unlike :meth:`find_chunk` this never suspends, so
        it is the batch-scanning contract of the multi-query shared scan.
        """
        limit = end - base
        low = start - base
        resume = limit if at_eof else max(low, limit + 1 - len(self.keyword))
        keyword = self.keyword
        hits: list[tuple[int, str]] = []
        position = low
        before = self.stats.searches
        while position < resume:
            match = self.find(text, position, limit)
            if match is None or match.position >= resume:
                break
            hits.append((match.position + base, keyword))
            position = match.position + 1
        # One logical batch scan, however many probes it took.
        self.stats.searches = before + 1
        return hits, resume + base

    def collect_chunk_ids(
        self, text: str, base: int, start: int, end: int, *, at_eof: bool,
        out: "array | None" = None,
    ) -> tuple["array", int, int]:
        """Batch scan into a flat ``array('q')`` of ``(offset, keyword_id)``.

        The id-based twin of :meth:`collect_chunk` for consumers that want
        a reusable flat buffer instead of per-hit tuples: event ``i``
        occupies ``events[2*i]`` (absolute offset) and ``events[2*i + 1]``
        (keyword id -- always 0 for a single-keyword matcher).  ``out``
        recycles a caller-owned array (cleared first).  Returns ``(events,
        count, resume)`` with the same hits, order and statistics as
        :meth:`collect_chunk`.
        """
        hits, resume = self.collect_chunk(text, base, start, end, at_eof=at_eof)
        events = array("q") if out is None else out
        del events[:]
        for position, _keyword in hits:
            events.append(position)
            events.append(0)
        return events, len(hits), resume

    def find_chunk(
        self,
        text: str,
        base: int,
        start: int,
        end: int,
        *,
        at_eof: bool,
        pending: PendingSearch | None = None,
    ) -> Match | PendingSearch | None:
        """Search one window of a chunked input stream.

        ``text`` is the buffered window whose first character sits at
        absolute stream offset ``base``; ``start``/``end`` are absolute.
        Returns the next occurrence (absolute offsets), ``None`` when the
        stream ended without one, or a :class:`PendingSearch` when the
        outcome needs input beyond ``end``.  Pass the suspension back via
        ``pending`` (with the same ``start``) once more data is buffered.
        """
        scan = self._search_chunk
        if scan is not None:
            if pending is None:
                self.stats.searches += 1
                low = start - base
            else:
                low = int(pending.state) - base
            match, stop = scan(text, low, end - base, at_eof)
            if match is not None:
                return match.shifted(base)
            if at_eof:
                return None
            resume = stop + base
            return PendingSearch(keep_from=resume, state=resume)
        # Generic fallback: repeat plain ``find`` calls over the available
        # region, holding back the zone where the keyword could straddle the
        # window end.  Matches are exact; statistics may differ slightly from
        # a whole-text search around chunk boundaries.
        low = (start if pending is None else int(pending.state)) - base
        match = self.find(text, low, end - base)
        if match is not None:
            return match.shifted(base)
        if at_eof:
            return None
        resume = max(low, (end - base) - len(self.keyword) + 1) + base
        return PendingSearch(keep_from=resume, state=resume)


class MultiKeywordMatcher(ABC):
    """A matcher compiled for a set of keywords."""

    algorithm_name: str = "abstract"

    def __init__(self, keywords: Sequence[str]) -> None:
        keyword_list = list(keywords)
        if not keyword_list:
            raise MatchingError("at least one keyword is required")
        if any(not keyword for keyword in keyword_list):
            raise MatchingError("keywords must be non-empty strings")
        if len(set(keyword_list)) != len(keyword_list):
            raise MatchingError("keywords must be unique")
        self.keywords = keyword_list
        self.min_keyword_length = min(len(keyword) for keyword in keyword_list)
        self.max_keyword_length = max(len(keyword) for keyword in keyword_list)
        self.stats = MatchStatistics()

    @abstractmethod
    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        """Return the leftmost occurrence of any keyword in ``text[start:end]``.

        When several keywords match at the same position the longest keyword
        is preferred, which is the behaviour the SMP runtime relies on for
        distinguishing tag names that are prefixes of each other.
        """

    def find_all(self, text: str, start: int = 0, end: int | None = None) -> list[Match]:
        """Return every occurrence of any keyword, ordered by position."""
        matches: list[Match] = []
        position = start
        limit = len(text) if end is None else end
        while position < limit:
            match = self.find(text, position, limit)
            if match is None:
                break
            matches.append(match)
            position = match.position + 1
        return matches

    #: Same contract as :attr:`SingleKeywordMatcher._search_chunk`; ``None``
    #: selects the generic fallback built on :meth:`find`.
    _search_chunk = None

    def _prefix_table(self) -> dict[str, tuple[str, ...]]:
        """Memoised :func:`proper_prefix_table` over this keyword set."""
        table = getattr(self, "_prefix_keywords", None)
        if table is None:
            table = self._prefix_keywords = proper_prefix_table(self.keywords)
        return table

    def collect_chunk(
        self, text: str, base: int, start: int, end: int, *, at_eof: bool
    ) -> tuple[list[tuple[int, str]], int]:
        """Every occurrence of every keyword decidable in one window.

        Returns ``(hits, resume)`` like the single-keyword counterpart,
        ordered by position with longer keywords first among co-located
        occurrences.  This generic version repeats leftmost-longest ``find``
        probes and expands shadowed prefix keywords from the table above;
        backends with a cheaper batch strategy override it.
        """
        limit = end - base
        low = start - base
        resume = limit if at_eof else max(low, limit + 1 - self.max_keyword_length)
        prefixes = self._prefix_table()
        hits: list[tuple[int, str]] = []
        position = low
        before = self.stats.searches
        while position < resume:
            match = self.find(text, position, limit)
            if match is None or match.position >= resume:
                break
            absolute = match.position + base
            hits.append((absolute, match.keyword))
            for prefix in prefixes[match.keyword]:
                hits.append((absolute, prefix))
            position = match.position + 1
        self.stats.searches = before + 1
        return hits, resume + base

    def _keyword_ids(self) -> dict:
        """Memoised keyword -> index map over :attr:`keywords`."""
        ids = getattr(self, "_keyword_id_map", None)
        if ids is None:
            ids = self._keyword_id_map = {
                keyword: index for index, keyword in enumerate(self.keywords)
            }
        return ids

    def collect_chunk_ids(
        self, text: str, base: int, start: int, end: int, *, at_eof: bool,
        out: "array | None" = None,
    ) -> tuple["array", int, int]:
        """Batch scan into a flat ``array('q')`` of ``(offset, keyword_id)``.

        The id-based twin of :meth:`collect_chunk` (see the single-keyword
        counterpart for the layout); keyword ids index :attr:`keywords`.
        Returns ``(events, count, resume)`` with the same hits, order and
        statistics as :meth:`collect_chunk`.
        """
        hits, resume = self.collect_chunk(text, base, start, end, at_eof=at_eof)
        ids = self._keyword_ids()
        events = array("q") if out is None else out
        del events[:]
        for position, keyword in hits:
            events.append(position)
            events.append(ids[keyword])
        return events, len(hits), resume

    def find_chunk(
        self,
        text: str,
        base: int,
        start: int,
        end: int,
        *,
        at_eof: bool,
        pending: PendingSearch | None = None,
    ) -> Match | PendingSearch | None:
        """Search one window of a chunked stream (see the single-keyword
        counterpart for the full contract).  Suspends both when a keyword
        could straddle the window end and when a found occurrence could still
        be beaten by a longer keyword matching at the same position."""
        scan = self._search_chunk
        if scan is not None:
            if pending is None:
                self.stats.searches += 1
                low = start - base
            else:
                low = int(pending.state) - base
            match, stop = scan(text, low, end - base, at_eof)
            if match is not None:
                return match.shifted(base)
            if at_eof:
                return None
            resume = stop + base
            return PendingSearch(keep_from=resume, state=resume)
        low = (start if pending is None else int(pending.state)) - base
        high = end - base
        match = self.find(text, low, high)
        if match is not None and (at_eof or match.position + self.max_keyword_length <= high):
            return match.shifted(base)
        if at_eof:
            return None
        resume = max(low, high - self.max_keyword_length + 1) + base
        return PendingSearch(keep_from=resume, state=resume)


@dataclass
class _ShiftTables:
    """Internal container for precomputed Boyer-Moore style shift tables."""

    bad_character: dict[str, int] = field(default_factory=dict)
    good_suffix: list[int] = field(default_factory=list)


def proper_prefix_table(keywords: Sequence[str]) -> dict[str, tuple[str, ...]]:
    """Keyword -> the given keywords that are proper prefixes of it.

    Ordered longest first.  Two different keywords can only occur at the
    same text position when one is a prefix of the other, so a
    leftmost-longest scan plus this table recovers every co-located
    occurrence; both the matchers' batch ``collect_chunk`` and the
    multi-query dispatch layer share this single definition.
    """
    return {
        keyword: tuple(
            sorted(
                (other for other in keywords
                 if other != keyword and keyword.startswith(other)),
                key=len,
                reverse=True,
            )
        )
        for keyword in keywords
    }


def as_searchable(text):
    """``text`` itself when it supports C-level ``find``, else a bytes copy.

    The matchers accept any buffer-protocol window (``bytes``, ``bytearray``,
    ``mmap`` -- all with native ``find`` -- plus ``memoryview``, which lacks
    one and is materialised here).  The streaming cursor hands out searchable
    windows, so the copy only triggers for direct ``memoryview`` callers.
    """
    return text if hasattr(text, "find") else bytes(text)


def leftmost_longest(matches: Sequence[Match]) -> Match | None:
    """Pick the leftmost match, breaking ties by preferring longer keywords."""
    best: Match | None = None
    for match in matches:
        if best is None:
            best = match
            continue
        if match.position < best.position:
            best = match
        elif match.position == best.position and len(match.keyword) > len(best.keyword):
            best = match
    return best
