"""Factory helpers for constructing matchers by backend name.

The SMP compiler and the benchmarks select matchers through this module so a
single string (``"instrumented"`` / ``"native"`` / ``"naive"`` /
``"aho-corasick"``) controls which algorithms are used for the unary
(Boyer-Moore slot) and multi-keyword (Commentz-Walter slot) search problems.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import MatchingError
from repro.matching.aho_corasick import AhoCorasickMatcher
from repro.matching.base import MultiKeywordMatcher, SingleKeywordMatcher
from repro.matching.boyer_moore import BoyerMooreMatcher
from repro.matching.commentz_walter import CommentzWalterMatcher
from repro.matching.horspool import HorspoolMatcher
from repro.matching.naive import NaiveMatcher, NaiveMultiMatcher
from repro.matching.native import NativeMultiMatcher, NativeSingleMatcher

SingleFactory = Callable[[str], SingleKeywordMatcher]
MultiFactory = Callable[[Sequence[str]], MultiKeywordMatcher]

#: Backend name -> (single keyword factory, multi keyword factory).
BACKENDS: dict[str, tuple[SingleFactory, MultiFactory]] = {
    # The paper's configuration: Boyer-Moore for unary vocabularies and
    # Commentz-Walter for larger ones, both instrumented with comparison and
    # shift counters.
    "instrumented": (BoyerMooreMatcher, CommentzWalterMatcher),
    # Wall-clock oriented backend using CPython's C string search.
    "native": (NativeSingleMatcher, NativeMultiMatcher),
    # Character-by-character baseline (the processing style the paper argues
    # prefiltering systems should move away from).
    "naive": (NaiveMatcher, NaiveMultiMatcher),
    # Tokenizing multi-keyword family used by related work [21]; single
    # keyword searches fall back to Horspool.
    "aho-corasick": (HorspoolMatcher, AhoCorasickMatcher),
    # Horspool single + set-Horspool-style CW; alias of instrumented single
    # slot for ablation purposes.
    "horspool": (HorspoolMatcher, CommentzWalterMatcher),
}


def available_backends() -> list[str]:
    """Names of all registered matcher backends."""
    return sorted(BACKENDS)


def make_single_matcher(keyword: str, backend: str = "instrumented") -> SingleKeywordMatcher:
    """Construct a single-keyword matcher for ``keyword`` using ``backend``."""
    try:
        single_factory, _ = BACKENDS[backend]
    except KeyError:
        raise MatchingError(
            f"unknown matcher backend {backend!r}; choose one of {available_backends()}"
        ) from None
    return single_factory(keyword)


def make_multi_matcher(
    keywords: Sequence[str], backend: str = "instrumented"
) -> MultiKeywordMatcher:
    """Construct a multi-keyword matcher for ``keywords`` using ``backend``."""
    try:
        _, multi_factory = BACKENDS[backend]
    except KeyError:
        raise MatchingError(
            f"unknown matcher backend {backend!r}; choose one of {available_backends()}"
        ) from None
    return multi_factory(keywords)


def make_matcher(
    keywords: Sequence[str], backend: str = "instrumented"
) -> SingleKeywordMatcher | MultiKeywordMatcher:
    """Construct the appropriate matcher for a frontier vocabulary.

    Mirrors the dispatch in Figure 4 of the paper: a single-keyword algorithm
    when the vocabulary is unary, a multi-keyword algorithm otherwise.
    """
    keyword_list = list(keywords)
    if not keyword_list:
        raise MatchingError("cannot build a matcher for an empty vocabulary")
    if len(keyword_list) == 1:
        return make_single_matcher(keyword_list[0], backend)
    return make_multi_matcher(keyword_list, backend)
