"""String matching algorithms used by the SMP prefilter.

The package provides single-keyword matchers (naive, Horspool, Boyer-Moore,
native ``str.find``) and multi-keyword matchers (naive, Aho-Corasick,
Commentz-Walter, native), all sharing the interfaces defined in
:mod:`repro.matching.base`, plus a :mod:`factory <repro.matching.factory>`
that selects algorithms per backend name and the keyword -> owners
:mod:`dispatch <repro.matching.dispatch>` layer of the shared multi-query
scan.
"""

from repro.matching.aho_corasick import AhoCorasickMatcher
from repro.matching.dispatch import KeywordDispatcher, trie_regex
from repro.matching.base import (
    Match,
    MatchStatistics,
    MultiKeywordMatcher,
    SingleKeywordMatcher,
    leftmost_longest,
)
from repro.matching.boyer_moore import (
    BoyerMooreMatcher,
    build_bad_character_table,
    build_good_suffix_table,
)
from repro.matching.commentz_walter import CommentzWalterMatcher
from repro.matching.factory import (
    BACKENDS,
    available_backends,
    make_matcher,
    make_multi_matcher,
    make_single_matcher,
)
from repro.matching.horspool import HorspoolMatcher
from repro.matching.naive import NaiveMatcher, NaiveMultiMatcher
from repro.matching.native import NativeMultiMatcher, NativeSingleMatcher

__all__ = [
    "AhoCorasickMatcher",
    "BACKENDS",
    "BoyerMooreMatcher",
    "CommentzWalterMatcher",
    "HorspoolMatcher",
    "KeywordDispatcher",
    "Match",
    "MatchStatistics",
    "MultiKeywordMatcher",
    "NaiveMatcher",
    "NaiveMultiMatcher",
    "NativeMultiMatcher",
    "NativeSingleMatcher",
    "SingleKeywordMatcher",
    "available_backends",
    "build_bad_character_table",
    "build_good_suffix_table",
    "leftmost_longest",
    "make_matcher",
    "make_multi_matcher",
    "make_single_matcher",
    "trie_regex",
]
