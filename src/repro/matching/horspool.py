"""Boyer-Moore-Horspool single keyword matcher.

Horspool's simplification of Boyer-Moore uses only the bad-character rule,
keyed on the text character aligned with the last pattern position.  It is
included both as a practically fast skipping matcher and as an ablation point
between the naive matcher and full Boyer-Moore.
"""

from __future__ import annotations

from repro.matching.base import Match, SingleKeywordMatcher


class HorspoolMatcher(SingleKeywordMatcher):
    """Right-to-left verification with bad-character shifts."""

    algorithm_name = "horspool"

    def __init__(self, keyword: str) -> None:
        super().__init__(keyword)
        length = len(keyword)
        # Shift for a text character c aligned with the last pattern slot:
        # distance from the rightmost occurrence of c in keyword[:-1] to the
        # end of the keyword; characters not occurring shift the full length.
        self._shift: dict[str, int] = {}
        for index in range(length - 1):
            self._shift[keyword[index]] = length - 1 - index
        self._default_shift = length

    def shift_for(self, character: str) -> int:
        """Return the Horspool shift for ``character`` (exposed for tests)."""
        return self._shift.get(character, self._default_shift)

    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        limit = len(text) if end is None else min(end, len(text))
        self.stats.searches += 1
        match, _ = self._scan(text, max(start, 0), limit)
        return match

    def _scan(
        self, text: str, position: int, limit: int, at_eof: bool = True
    ) -> tuple[Match | None, int]:
        """Core scan; ``(match, stop_position)`` with exact resumption
        semantics (the only window state is the window start)."""
        keyword = self.keyword
        length = len(keyword)
        while position + length <= limit:
            offset = length - 1
            while offset >= 0:
                self.stats.comparisons += 1
                if text[position + offset] != keyword[offset]:
                    break
                offset -= 1
            if offset < 0:
                self.stats.matches += 1
                return Match(position=position, keyword=keyword), position
            shift = self.shift_for(text[position + length - 1])
            self.stats.record_shift(shift)
            position += shift
        return None, position

    _search_chunk = _scan
