"""Full Boyer-Moore single keyword matcher (bad character + good suffix).

This is the algorithm the SMP runtime uses whenever the frontier vocabulary
of the current automaton state contains exactly one keyword (Section II of
the paper, label "(BM)" in Figure 4).
"""

from __future__ import annotations

from repro.matching.base import Match, SingleKeywordMatcher


def build_bad_character_table(keyword: str) -> dict[str, int]:
    """Map each character to the index of its rightmost occurrence."""
    table: dict[str, int] = {}
    for index, character in enumerate(keyword):
        table[character] = index
    return table


def build_good_suffix_table(keyword: str) -> list[int]:
    """Compute the good-suffix shift table.

    ``table[j]`` is the shift to apply when a mismatch occurs at pattern
    position ``j`` (i.e. ``keyword[j + 1:]`` matched the text).  The
    construction follows the classical two-phase algorithm using the border
    array of the reversed pattern.
    """
    length = len(keyword)
    shift = [0] * (length + 1)
    border = [0] * (length + 1)

    # Phase 1: borders of suffixes.
    i = length
    j = length + 1
    border[i] = j
    while i > 0:
        while j <= length and keyword[i - 1] != keyword[j - 1]:
            if shift[j] == 0:
                shift[j] = j - i
            j = border[j]
        i -= 1
        j -= 1
        border[i] = j

    # Phase 2: fill remaining positions with the widest border shift.
    j = border[0]
    for i in range(length + 1):
        if shift[i] == 0:
            shift[i] = j
        if i == j:
            j = border[j]
    return shift


class BoyerMooreMatcher(SingleKeywordMatcher):
    """Classic Boyer-Moore search with both shift heuristics."""

    algorithm_name = "boyer-moore"

    def __init__(self, keyword: str) -> None:
        super().__init__(keyword)
        self._bad_character = build_bad_character_table(keyword)
        self._good_suffix = build_good_suffix_table(keyword)

    def bad_character_shift(self, pattern_index: int, character: str) -> int:
        """Shift suggested by the bad-character rule at ``pattern_index``."""
        rightmost = self._bad_character.get(character, -1)
        return max(1, pattern_index - rightmost)

    def good_suffix_shift(self, pattern_index: int) -> int:
        """Shift suggested by the good-suffix rule after a mismatch at ``pattern_index``."""
        return self._good_suffix[pattern_index + 1]

    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        limit = len(text) if end is None else min(end, len(text))
        self.stats.searches += 1
        match, _ = self._scan(text, max(start, 0), limit)
        return match

    def _scan(
        self, text: str, position: int, limit: int, at_eof: bool = True
    ) -> tuple[Match | None, int]:
        """Core right-to-left scan; returns ``(match, stop_position)``.

        The window state of Boyer-Moore is just the window start, so
        resuming a failed scan at ``stop_position`` against a longer limit
        replays the whole-text search comparison for comparison.
        """
        keyword = self.keyword
        length = len(keyword)
        while position + length <= limit:
            offset = length - 1
            while offset >= 0:
                self.stats.comparisons += 1
                if text[position + offset] != keyword[offset]:
                    break
                offset -= 1
            if offset < 0:
                self.stats.matches += 1
                return Match(position=position, keyword=keyword), position
            shift = max(
                self.bad_character_shift(offset, text[position + offset]),
                self.good_suffix_shift(offset),
            )
            self.stats.record_shift(shift)
            position += shift
        return None, position

    _search_chunk = _scan
