"""Brute-force matchers.

These serve two purposes: they are the baseline "character-by-character"
processing style the paper argues against, and they act as trivially correct
oracles in the property-based tests for the skipping algorithms.
"""

from __future__ import annotations

from typing import Sequence

from repro.matching.base import (
    Match,
    MultiKeywordMatcher,
    SingleKeywordMatcher,
    leftmost_longest,
)


class NaiveMatcher(SingleKeywordMatcher):
    """Left-to-right brute-force single keyword search."""

    algorithm_name = "naive"

    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        limit = len(text) if end is None else min(end, len(text))
        self.stats.searches += 1
        match, _ = self._scan(text, max(start, 0), limit)
        return match

    def _scan(
        self, text: str, position: int, limit: int, at_eof: bool = True
    ) -> tuple[Match | None, int]:
        keyword = self.keyword
        length = len(keyword)
        while position + length <= limit:
            offset = 0
            while offset < length:
                self.stats.comparisons += 1
                if text[position + offset] != keyword[offset]:
                    break
                offset += 1
            if offset == length:
                self.stats.matches += 1
                return Match(position=position, keyword=keyword), position
            self.stats.record_shift(1)
            position += 1
        return None, position

    _search_chunk = _scan


class NaiveMultiMatcher(MultiKeywordMatcher):
    """Brute-force multi-keyword search.

    At every position each keyword is compared in turn.  Used only as a
    correctness oracle and as the slowest baseline in the ablation benches.
    """

    algorithm_name = "naive-multi"

    def __init__(self, keywords: Sequence[str]) -> None:
        super().__init__(keywords)
        # Longest first so that leftmost-longest tie breaking is automatic.
        self._ordered = sorted(self.keywords, key=len, reverse=True)
        self._indices = {keyword: index for index, keyword in enumerate(self.keywords)}

    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        limit = len(text) if end is None else min(end, len(text))
        self.stats.searches += 1
        match, _ = self._scan(text, max(start, 0), limit)
        return match

    def _scan(
        self, text: str, position: int, limit: int, at_eof: bool = True
    ) -> tuple[Match | None, int]:
        """Core scan.  Before the end of the stream the scan stops as soon
        as the *longest* keyword no longer fits the window, because the
        whole-text search would compare that keyword there too; at the end
        of the stream shorter keywords keep being tried (the original
        ``position + length > limit`` skip)."""
        shortest = self.min_keyword_length
        longest = self.max_keyword_length
        while position + shortest <= limit:
            if not at_eof and position + longest > limit:
                return None, position
            candidates: list[Match] = []
            for keyword in self._ordered:
                length = len(keyword)
                if position + length > limit:
                    continue
                offset = 0
                while offset < length:
                    self.stats.comparisons += 1
                    if text[position + offset] != keyword[offset]:
                        break
                    offset += 1
                if offset == length:
                    candidates.append(
                        Match(
                            position=position,
                            keyword=keyword,
                            keyword_index=self._indices[keyword],
                        )
                    )
                    break
            if candidates:
                self.stats.matches += 1
                return leftmost_longest(candidates), position
            self.stats.record_shift(1)
            position += 1
        return None, position

    _search_chunk = _scan
