"""Keyword -> owners dispatch for the shared multi-query scan.

The multi-query engine (:mod:`repro.core.multi`) unions the keyword sets of
all compiled prefilters and scans the document **once**.  This module is the
matching-side half of that design: :class:`KeywordDispatcher` is the
immutable compilation product -- the keyword -> owners table, the
prefix-expansion table, and the union search automaton -- shared by every
session of one engine.

Two scan strategies are provided:

* :attr:`KeywordDispatcher.pattern` -- the union keyword set factored into a
  prefix trie and compiled with :mod:`re`.  This is a deterministic
  Aho-Corasick-style automaton executed in C: one pass over the text finds
  the leftmost-longest union occurrence sequence regardless of how many
  keywords (or queries) it carries.  The engine's hot loop drives
  ``pattern.finditer`` directly.
* :meth:`KeywordDispatcher.scan` -- the same occurrence stream produced
  through the matcher layer's batch ``collect_chunk`` contract (see
  :mod:`repro.matching.base`), used as the backend-pluggable reference
  implementation in the test suite.

Completeness: two different keywords can only occur at the same text
position when one is a prefix of the other (both equal the text at that
position, so the shorter is a prefix of the longer).  The scan reports the
longest keyword; :meth:`prefixes_of` lists the union keywords that co-occur
at the same position.  Those expanded occurrences are *always* false
matches for the SMP runtime -- the character following them is the longer
keyword's next character, which is a tag-name character -- so the engine
dispatches them for false-match accounting without reading the text at all.

Precondition of the single-pass :attr:`KeywordDispatcher.pattern` strategy:
the keywords are tag keywords (``<name`` / ``</name``), whose marker ``<``
appears only at offset 0.  Occurrences of such keywords can never overlap
at *different* positions, so the pattern's non-overlapping match sequence
plus the prefix expansion is the complete occurrence stream.  The
matcher-backed :meth:`KeywordDispatcher.scan` path makes no such assumption.
"""

from __future__ import annotations

import re
from array import array
from typing import Iterable, Mapping

from repro.errors import MatchingError
from repro.matching.base import (
    MatchStatistics,
    MultiKeywordMatcher,
    SingleKeywordMatcher,
    proper_prefix_table,
)
from repro.matching.factory import make_matcher


def trie_regex(keywords: Iterable[str]) -> str:
    """A regex matching any keyword, preferring the longest at each position.

    The keywords are factored into a prefix trie (``<Medline`` and
    ``<MedlineCitation`` share the literal ``<Medline`` followed by an
    optional continuation), so the compiled pattern decides each candidate
    position in one forward pass; greedy optional groups make longer
    continuations win over an accepting prefix.

    ``bytes`` keywords produce a ``bytes`` pattern (the byte-native shared
    scan): the trie is built over the latin-1 rendering -- a bijection on
    byte values -- and the emitted pattern is encoded back.
    """
    keyword_list = list(keywords)
    if keyword_list and isinstance(keyword_list[0], (bytes, bytearray)):
        pattern = trie_regex(
            [keyword.decode("latin-1") for keyword in keyword_list]
        )
        return pattern.encode("latin-1")
    return _trie_regex_str(keyword_list)


def _trie_regex_str(keywords: Iterable[str]) -> str:
    trie: dict = {}
    for keyword in sorted(keywords):
        node = trie
        for character in keyword:
            node = node.setdefault(character, {})
        node[""] = {}

    def emit(node: dict) -> str:
        accepts = "" in node
        branches = [
            re.escape(character) + emit(child)
            for character, child in sorted(node.items())
            if character
        ]
        if not branches:
            return ""
        if len(branches) == 1:
            body = branches[0]
            # Wrap so the trailing '?' applies to the whole continuation.
            if accepts:
                return f"(?:{body})?" if len(body) > 1 else f"{body}?"
            return body
        body = "(?:" + "|".join(branches) + ")"
        return body + "?" if accepts else body

    return emit(trie)


class KeywordDispatcher:
    """Union scan automaton plus the keyword -> owners table.

    Parameters
    ----------
    vocabularies:
        Mapping from an owner id (e.g. a query index) to the keywords that
        owner searches anywhere in its runtime automaton.
    backend:
        Matcher backend for the reference :meth:`scan` path (see
        :mod:`repro.matching.factory`); the compiled :attr:`pattern` is
        backend-independent.

    The dispatcher is immutable and stateless: one instance per engine,
    shared by all of its sessions.
    """

    def __init__(
        self,
        vocabularies: Mapping[int, Iterable[str]],
        *,
        backend: str = "native",
    ) -> None:
        owners: dict[str, list[int]] = {}
        for owner, keywords in vocabularies.items():
            for keyword in keywords:
                owners.setdefault(keyword, []).append(owner)
        if not owners:
            raise MatchingError("cannot build a dispatcher for empty vocabularies")
        self.keywords: tuple[str, ...] = tuple(sorted(owners))
        self.max_keyword_length = max(len(keyword) for keyword in self.keywords)
        self._owners: dict[str, tuple[int, ...]] = {
            keyword: tuple(sorted(ids)) for keyword, ids in owners.items()
        }
        #: Keyword -> union keywords that are proper prefixes of it (longest
        #: first): the occurrences shadowed by a leftmost-longest scan.
        self.prefixes: dict[str, tuple[str, ...]] = proper_prefix_table(
            self.keywords
        )
        #: :attr:`prefixes` and keyword lengths re-indexed by keyword id --
        #: the event id space of ``scan_ids`` / the C ``scan_events`` kernel
        #: -- so the per-event hot loop never hashes keyword bytes.
        self.prefixes_by_index: tuple[tuple[str, ...], ...] = tuple(
            self.prefixes[keyword] for keyword in self.keywords
        )
        self.keyword_lengths: tuple[int, ...] = tuple(
            len(keyword) for keyword in self.keywords
        )
        #: Keyword -> id over :attr:`keywords` (the shared event id space).
        self.keyword_index: dict[str, int] = {
            keyword: index for index, keyword in enumerate(self.keywords)
        }
        #: :attr:`prefixes_by_index` flattened into CSR-style int64 arrays
        #: for the native ``step_events`` kernel: the prefix ids of keyword
        #: ``k`` are ``prefix_ids[prefix_starts[k]:prefix_starts[k + 1]]``.
        starts = array("q", bytes(8 * (len(self.keywords) + 1)))
        ids: list[int] = []
        for index in range(len(self.keywords)):
            starts[index] = len(ids)
            ids.extend(
                self.keyword_index[prefix]
                for prefix in self.prefixes_by_index[index]
            )
        starts[len(self.keywords)] = len(ids)
        self.prefix_starts = starts
        self.prefix_ids = array("q", ids)
        #: The union automaton: one C-level pass per window (a ``bytes``
        #: pattern when the vocabularies are ``bytes`` keywords).
        self.pattern = re.compile(trie_regex(self.keywords))
        self._matcher: SingleKeywordMatcher | MultiKeywordMatcher = make_matcher(
            self.keywords, backend=backend
        )
        # Lazily compiled C search structure (see :meth:`accel_capsule`).
        self._accel_capsule = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def owners_of(self, keyword: str) -> tuple[int, ...]:
        """The owner ids whose vocabularies contain ``keyword``."""
        return self._owners[keyword]

    def prefixes_of(self, keyword: str) -> tuple[str, ...]:
        """Union keywords co-occurring at every occurrence of ``keyword``."""
        return self.prefixes[keyword]

    @property
    def stats(self) -> MatchStatistics:
        """Counters of the reference union matcher (:meth:`scan` path)."""
        return self._matcher.stats

    def accel_capsule(self, accel_mod):
        """The union vocabulary compiled for the C scan kernel (cached).

        ``accel_mod`` is the loaded ``repro._accel`` module (see
        :func:`repro.accel.load_accel`).  Returns ``None`` when the
        vocabulary is not byte keywords -- the C kernels scan raw byte
        windows only.  Event keyword ids index :attr:`keywords`.
        """
        capsule = self._accel_capsule
        if capsule is None:
            if not isinstance(self.keywords[0], bytes):
                return None
            capsule = accel_mod.compile_keywords(list(self.keywords), False)
            self._accel_capsule = capsule
        return capsule

    # ------------------------------------------------------------------
    # Reference scanning (matcher layer)
    # ------------------------------------------------------------------
    def scan(
        self, text: str, base: int, start: int, end: int, *, at_eof: bool
    ) -> tuple[list[tuple[int, str]], int]:
        """Every ``(position, keyword)`` occurrence decidable in the window.

        Stateless reference path through the union matcher's batch
        ``collect_chunk`` contract: occurrences are reported by position,
        longer keywords first among co-located hits, and ``resume`` (the
        start offset of the next call) holds back the zone in which an
        occurrence could still straddle the window end.  Produces the same
        stream as driving :attr:`pattern` plus :meth:`prefixes_of`, which
        the test suite asserts.
        """
        return self._matcher.collect_chunk(text, base, start, end, at_eof=at_eof)

    def scan_ids(
        self, text: str, base: int, start: int, end: int, *, at_eof: bool,
        out=None,
    ):
        """The :meth:`scan` stream as a flat ``array('q')`` of events.

        Delegates to the union matcher's ``collect_chunk_ids`` contract:
        event ``i`` is ``(events[2*i], events[2*i + 1])`` -- absolute
        offset plus an id indexing :attr:`keywords` (the matcher is built
        over exactly that tuple).  ``out`` recycles a caller-owned array.
        Returns ``(events, count, resume)``.
        """
        return self._matcher.collect_chunk_ids(
            text, base, start, end, at_eof=at_eof, out=out
        )
