"""Native-speed matcher backends built on ``str.find``.

CPython's ``str.find`` implements a mix of Crochemore-Perrin two-way search
and Boyer-Moore-Horspool style skipping in C.  These backends exist so that
the wall-clock benchmarks are not dominated by Python interpreter overhead:
the *instrumented* matchers (:mod:`repro.matching.boyer_moore`,
:mod:`repro.matching.commentz_walter`) produce the character-comparison and
shift-size statistics reported in the paper's tables, while the *native*
backends produce honest throughput numbers.  Both yield identical match
sequences, which the test suite asserts.

Because ``str.find`` cannot report character comparisons, the native backends
approximate the statistics: comparisons are counted as the number of
characters in the spanned region divided by the keyword length (the idealised
Boyer-Moore behaviour), which is only used for informational output and never
for the paper's reproduced columns.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from repro.matching.base import (
    Match,
    MultiKeywordMatcher,
    PendingSearch,
    SingleKeywordMatcher,
    as_searchable,
)

#: Bounded-probe schedule of the multi-keyword search: ``str.find`` probes
#: run block by block, starting small (dense match regions stay cheap) and
#: doubling up to the cap (sparse regions are crossed in few C-level scans).
#: Without the blocks a keyword that is absent from the rest of the buffered
#: window costs one O(window) scan per search, which makes large streaming
#: windows *slower* than small ones (the 1 MiB chunk-size collapse).
_PROBE_INITIAL = 4 * 1024
_PROBE_MAX = 64 * 1024


class NativeSingleMatcher(SingleKeywordMatcher):
    """Single keyword search delegated to ``str.find``."""

    algorithm_name = "native-find"

    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        text = as_searchable(text)
        limit = len(text) if end is None else min(end, len(text))
        self.stats.searches += 1
        position = text.find(self.keyword, max(start, 0), limit)
        if position < 0:
            spanned = max(0, limit - max(start, 0))
            self.stats.comparisons += spanned // max(1, len(self.keyword))
            return None
        spanned = position - max(start, 0) + len(self.keyword)
        self.stats.comparisons += max(1, spanned // max(1, len(self.keyword)))
        self.stats.record_shift(max(1, position - max(start, 0)))
        self.stats.matches += 1
        return Match(position=position, keyword=self.keyword)

    def find_chunk(
        self,
        text: str,
        base: int,
        start: int,
        end: int,
        *,
        at_eof: bool,
        pending: PendingSearch | None = None,
    ) -> Match | PendingSearch | None:
        # The spanned-region statistics are computed from the absolute search
        # origin once the search completes, so a chunked search produces the
        # same (approximated) counters as a whole-text one.
        text = as_searchable(text)
        length = len(self.keyword)
        if pending is None:
            self.stats.searches += 1
            begin = resume = start
        else:
            begin, resume = pending.state  # type: ignore[misc]
        position = text.find(self.keyword, resume - base, end - base)
        if position < 0:
            if at_eof:
                spanned = max(0, end - begin)
                self.stats.comparisons += spanned // max(1, length)
                return None
            next_resume = max(begin, end - length + 1)
            return PendingSearch(keep_from=next_resume, state=(begin, next_resume))
        found = position + base
        spanned = found - begin + length
        self.stats.comparisons += max(1, spanned // max(1, length))
        self.stats.record_shift(max(1, found - begin))
        self.stats.matches += 1
        return Match(position=found, keyword=self.keyword)


class NativeMultiMatcher(MultiKeywordMatcher):
    """Multi keyword search as repeated ``str.find`` calls.

    For the small frontier vocabularies produced by the SMP static analysis
    (rarely more than a handful of keywords, see the ``States (CW+BM)`` rows
    of Table I) running one C-level ``find`` per keyword and taking the
    leftmost result is faster in CPython than any pure-Python automaton.
    """

    algorithm_name = "native-multi-find"

    def __init__(self, keywords: Sequence[str]) -> None:
        super().__init__(keywords)
        # Longer keywords first so equal-position ties prefer the longest.
        self._ordered = sorted(
            range(len(self.keywords)),
            key=lambda index: -len(self.keywords[index]),
        )

    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        text = as_searchable(text)
        limit = len(text) if end is None else min(end, len(text))
        begin = max(start, 0)
        self.stats.searches += 1
        best = self._leftmost(text, begin, limit)
        self._finish_stats(best, begin, limit)
        return best

    def _leftmost(self, text: str, begin: int, limit: int) -> Match | None:
        """Leftmost-longest occurrence in ``text[begin:limit]`` (local).

        Probes block by block (doubling block sizes, see ``_PROBE_INITIAL``)
        so keywords that are absent from the remaining window cost O(block)
        per search instead of O(window): the result is identical to one
        whole-window probe per keyword, but the searched region is bounded
        by the distance to the leftmost occurrence.
        """
        keywords = self.keywords
        block_start = begin
        probe = _PROBE_INITIAL
        while block_start < limit:
            block_end = min(limit, block_start + probe)
            best: Match | None = None
            for index in self._ordered:
                keyword = keywords[index]
                # Occurrences *starting* below the bound; longest-first
                # ordering makes the first keyword found at a position the
                # preferred tie winner, so later keywords only need to probe
                # for strictly earlier starts.
                bound = block_end if best is None else best.position
                position = text.find(
                    keyword, block_start, min(limit, bound + len(keyword) - 1)
                )
                if 0 <= position < bound:
                    best = Match(position=position, keyword=keyword, keyword_index=index)
            if best is not None:
                return best
            block_start = block_end
            probe = min(probe * 2, _PROBE_MAX)
        return None

    def _finish_stats(self, best: Match | None, begin: int, limit: int) -> None:
        """Record the span-approximated counters of one completed search."""
        spanned = (best.position - begin + 1) if best else max(0, limit - begin)
        self.stats.comparisons += (
            max(1, spanned // max(1, self.min_keyword_length)) if spanned else 0
        )
        if best is not None:
            self.stats.record_shift(max(1, best.position - begin))
            self.stats.matches += 1

    def find_chunk(
        self,
        text: str,
        base: int,
        start: int,
        end: int,
        *,
        at_eof: bool,
        pending: PendingSearch | None = None,
    ) -> Match | PendingSearch | None:
        # Counters are derived from the absolute search origin only once the
        # search completes, so chunking does not change them.  An occurrence
        # is only reported once no longer keyword straddling the window end
        # could still beat it (same-position ties prefer the longest).
        text = as_searchable(text)
        if pending is None:
            self.stats.searches += 1
            begin = resume = start
        else:
            begin, resume = pending.state  # type: ignore[misc]
        high = end - base
        best = self._leftmost(text, resume - base, high)
        if best is not None and (at_eof or best.position + self.max_keyword_length <= high):
            best = best.shifted(base)
            self._finish_stats(best, begin, end)
            return best
        if at_eof:
            self._finish_stats(None, begin, end)
            return None
        next_resume = max(begin, end - self.max_keyword_length + 1)
        return PendingSearch(keep_from=next_resume, state=(begin, next_resume))

    def collect_chunk(
        self, text: str, base: int, start: int, end: int, *, at_eof: bool
    ) -> tuple[list[tuple[int, str]], int]:
        """Batch scan: one C-level ``str.find`` sweep per keyword.

        The shared multi-query scan needs *every* occurrence of every
        keyword; restarting leftmost-longest searches would probe each
        keyword once per hit, so this override sweeps the window once per
        keyword instead -- O(|keywords| x window + hits) total -- and merges
        the results by position (longest keyword first on ties, which the
        longest-first sweep order plus a stable sort preserves).
        """
        text = as_searchable(text)
        limit = end - base
        low = start - base
        resume = limit if at_eof else max(low, limit + 1 - self.max_keyword_length)
        keywords = self.keywords
        hits: list[tuple[int, str]] = []
        for index in self._ordered:
            keyword = keywords[index]
            bound = min(limit, resume + len(keyword) - 1)
            position = text.find(keyword, low, bound)
            while 0 <= position < resume:
                hits.append((position + base, keyword))
                position = text.find(keyword, position + 1, bound)
        hits.sort(key=lambda hit: hit[0])
        self.stats.searches += 1
        self.stats.matches += len(hits)
        spanned = max(0, resume - low)
        if spanned:
            self.stats.comparisons += max(
                1, (len(keywords) * spanned) // max(1, self.min_keyword_length)
            )
        return hits, resume + base

    def collect_chunk_ids(
        self, text: str, base: int, start: int, end: int, *, at_eof: bool,
        out: "array | None" = None,
    ) -> tuple["array", int, int]:
        """Id-based batch scan with no per-hit tuples.

        Same sweep as :meth:`collect_chunk`, but each hit is encoded as one
        integer ``position * len(keywords) + sweep_order`` -- sorting the
        plain ints reproduces the position order with longest-keyword-first
        ties (sweep order is longest first) without allocating tuple pairs,
        and the decoded pairs go straight into the flat int64 array.
        """
        text = as_searchable(text)
        limit = end - base
        low = start - base
        resume = limit if at_eof else max(low, limit + 1 - self.max_keyword_length)
        keywords = self.keywords
        mult = len(keywords)
        encoded: list[int] = []
        for order, index in enumerate(self._ordered):
            keyword = keywords[index]
            bound = min(limit, resume + len(keyword) - 1)
            position = text.find(keyword, low, bound)
            while 0 <= position < resume:
                encoded.append((position + base) * mult + order)
                position = text.find(keyword, position + 1, bound)
        encoded.sort()
        events = array("q") if out is None else out
        del events[:]
        ordered = self._ordered
        for key in encoded:
            position, order = divmod(key, mult)
            events.append(position)
            events.append(ordered[order])
        self.stats.searches += 1
        self.stats.matches += len(encoded)
        spanned = max(0, resume - low)
        if spanned:
            self.stats.comparisons += max(
                1, (mult * spanned) // max(1, self.min_keyword_length)
            )
        return events, len(encoded), resume + base
