"""Native-speed matcher backends built on ``str.find``.

CPython's ``str.find`` implements a mix of Crochemore-Perrin two-way search
and Boyer-Moore-Horspool style skipping in C.  These backends exist so that
the wall-clock benchmarks are not dominated by Python interpreter overhead:
the *instrumented* matchers (:mod:`repro.matching.boyer_moore`,
:mod:`repro.matching.commentz_walter`) produce the character-comparison and
shift-size statistics reported in the paper's tables, while the *native*
backends produce honest throughput numbers.  Both yield identical match
sequences, which the test suite asserts.

Because ``str.find`` cannot report character comparisons, the native backends
approximate the statistics: comparisons are counted as the number of
characters in the spanned region divided by the keyword length (the idealised
Boyer-Moore behaviour), which is only used for informational output and never
for the paper's reproduced columns.
"""

from __future__ import annotations

from typing import Sequence

from repro.matching.base import Match, MultiKeywordMatcher, SingleKeywordMatcher


class NativeSingleMatcher(SingleKeywordMatcher):
    """Single keyword search delegated to ``str.find``."""

    algorithm_name = "native-find"

    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        limit = len(text) if end is None else min(end, len(text))
        self.stats.searches += 1
        position = text.find(self.keyword, max(start, 0), limit)
        if position < 0:
            spanned = max(0, limit - max(start, 0))
            self.stats.comparisons += spanned // max(1, len(self.keyword))
            return None
        spanned = position - max(start, 0) + len(self.keyword)
        self.stats.comparisons += max(1, spanned // max(1, len(self.keyword)))
        self.stats.record_shift(max(1, position - max(start, 0)))
        self.stats.matches += 1
        return Match(position=position, keyword=self.keyword)


class NativeMultiMatcher(MultiKeywordMatcher):
    """Multi keyword search as repeated ``str.find`` calls.

    For the small frontier vocabularies produced by the SMP static analysis
    (rarely more than a handful of keywords, see the ``States (CW+BM)`` rows
    of Table I) running one C-level ``find`` per keyword and taking the
    leftmost result is faster in CPython than any pure-Python automaton.
    """

    algorithm_name = "native-multi-find"

    def __init__(self, keywords: Sequence[str]) -> None:
        super().__init__(keywords)
        # Longer keywords first so equal-position ties prefer the longest.
        self._ordered = sorted(
            range(len(self.keywords)),
            key=lambda index: -len(self.keywords[index]),
        )

    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        limit = len(text) if end is None else min(end, len(text))
        begin = max(start, 0)
        self.stats.searches += 1
        best: Match | None = None
        search_limit = limit
        for index in self._ordered:
            keyword = self.keywords[index]
            position = text.find(keyword, begin, search_limit)
            if position < 0:
                continue
            if best is None or position < best.position:
                best = Match(position=position, keyword=keyword, keyword_index=index)
                # Later keywords can only win if they start strictly earlier,
                # or start at the same position (longest-first ordering makes
                # the current best the preferred tie winner).
                search_limit = min(limit, best.position + len(keyword) + max(
                    len(other) for other in self.keywords
                ))
        spanned = (best.position - begin + 1) if best else max(0, limit - begin)
        shortest = min(len(keyword) for keyword in self.keywords)
        self.stats.comparisons += max(1, spanned // max(1, shortest)) if spanned else 0
        if best is not None:
            self.stats.record_shift(max(1, best.position - begin))
            self.stats.matches += 1
        return best
