"""Aho-Corasick multi-keyword matcher.

Aho-Corasick inspects every character of the text exactly once; it is the
family of algorithms the related work discussed in the paper builds on
(Takeda et al. [21]).  In this reproduction it plays two roles: it is the
correct-by-construction oracle for the Commentz-Walter implementation and the
"no skipping" ablation point in the multi-keyword benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.matching.base import Match, MultiKeywordMatcher, PendingSearch


class _AcNode:
    """A node of the Aho-Corasick keyword trie."""

    __slots__ = ("children", "fail", "outputs")

    def __init__(self) -> None:
        self.children: dict[str, "_AcNode"] = {}
        self.fail: "_AcNode | None" = None
        self.outputs: list[int] = []


class AhoCorasickMatcher(MultiKeywordMatcher):
    """Classic Aho-Corasick automaton with failure links."""

    algorithm_name = "aho-corasick"

    def __init__(self, keywords: Sequence[str]) -> None:
        super().__init__(keywords)
        self._root = _AcNode()
        self._max_length = max(len(keyword) for keyword in self.keywords)
        for index, keyword in enumerate(self.keywords):
            node = self._root
            for character in keyword:
                node = node.children.setdefault(character, _AcNode())
            node.outputs.append(index)
        self._build_failure_links()

    def _build_failure_links(self) -> None:
        queue: deque[_AcNode] = deque()
        for child in self._root.children.values():
            child.fail = self._root
            queue.append(child)
        while queue:
            node = queue.popleft()
            for character, child in node.children.items():
                queue.append(child)
                fallback = node.fail
                while fallback is not None and character not in fallback.children:
                    fallback = fallback.fail
                child.fail = fallback.children[character] if fallback else self._root
                if child.fail is child:
                    child.fail = self._root
                child.outputs.extend(child.fail.outputs)

    def find(self, text: str, start: int = 0, end: int | None = None) -> Match | None:
        limit = len(text) if end is None else min(end, len(text))
        start = max(start, 0)
        self.stats.searches += 1
        best, _, _, _ = self._scan_automaton(text, start, limit, self._root, start, None)
        if best is not None:
            self.stats.matches += 1
        return best

    def _scan_automaton(
        self,
        text: str,
        start: int,
        limit: int,
        node: _AcNode,
        position: int,
        best: Match | None,
    ) -> tuple[Match | None, _AcNode, int, bool]:
        """Run the automaton from ``(node, position)``.

        Returns ``(best, node, position, confirmed)``; the automaton reads
        each character exactly once, so resuming a chunked search with the
        returned state replays the whole-text search comparison for
        comparison.
        """
        while position < limit:
            # Once a match is known, no later scan position can yield a match
            # starting at or before the best start once the longest keyword
            # length has fully passed that start position.
            if best is not None and position >= best.position + self._max_length:
                return best, node, position, True
            character = text[position]
            self.stats.comparisons += 1
            while node is not self._root and character not in node.children:
                node = node.fail or self._root
            node = node.children.get(character, self._root)
            for index in node.outputs:
                keyword = self.keywords[index]
                candidate = Match(
                    position=position - len(keyword) + 1,
                    keyword=keyword,
                    keyword_index=index,
                )
                if candidate.position < start:
                    continue
                if (
                    best is None
                    or candidate.position < best.position
                    or (
                        candidate.position == best.position
                        and len(candidate.keyword) > len(best.keyword)
                    )
                ):
                    best = candidate
            position += 1
        return best, node, position, False

    def find_chunk(
        self,
        text: str,
        base: int,
        start: int,
        end: int,
        *,
        at_eof: bool,
        pending: PendingSearch | None = None,
    ) -> Match | PendingSearch | None:
        if pending is None:
            self.stats.searches += 1
            left = start
            node = self._root
            position = start
            best: Match | None = None
        else:
            left, node, position, best = pending.state  # type: ignore[misc]
        best_local = None if best is None else best.shifted(-base)
        best_local, node, position_local, confirmed = self._scan_automaton(
            text, left - base, end - base, node, position - base, best_local
        )
        if confirmed or at_eof:
            if best_local is None:
                return None
            self.stats.matches += 1
            return best_local.shifted(base)
        best = None if best_local is None else best_local.shifted(base)
        keep_from = position_local + base - self._max_length + 1
        if best is not None:
            keep_from = min(keep_from, best.position)
        return PendingSearch(
            keep_from=max(left, keep_from),
            state=(left, node, position_local + base, best),
        )
