"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    Measurement,
    TableReporter,
    format_value,
    measure,
    megabytes,
    throughput_mb_per_second,
)

__all__ = [
    "Measurement",
    "TableReporter",
    "format_value",
    "measure",
    "megabytes",
    "throughput_mb_per_second",
]
