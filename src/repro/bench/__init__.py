"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    Measurement,
    TableReporter,
    format_value,
    measure,
    megabytes,
    peak_rss_bytes,
    throughput_mb_per_second,
    write_json_report,
)

__all__ = [
    "Measurement",
    "TableReporter",
    "format_value",
    "measure",
    "megabytes",
    "peak_rss_bytes",
    "throughput_mb_per_second",
    "write_json_report",
]
