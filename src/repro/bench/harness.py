"""Measurement helpers and table formatting for the benchmark suite.

The paper reports its results as tables (Table I-III) and figures
(Figure 7(a)-(c)).  Each benchmark module collects one row per measurement
through a :class:`TableReporter`; at the end of the module the assembled
table is printed and appended to ``benchmarks/results/`` so that
``EXPERIMENTS.md`` can reference a concrete artefact.
"""

from __future__ import annotations

import json
import os
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Sequence

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]


@dataclass
class Measurement:
    """Wall-clock seconds, CPU seconds and peak memory of one callable run."""

    wall_seconds: float
    cpu_seconds: float
    peak_memory_bytes: int
    peak_rss_bytes: int = 0
    result: object = None


def peak_rss_bytes() -> int:
    """The process's resident-set high-water mark in bytes (0 if unknown).

    ``ru_maxrss`` is monotone over the process lifetime, so deltas between
    two calls are only meaningful when the high-water mark moved; the
    benchmarks report the absolute value alongside the traced peak.
    """
    if resource is None:
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS reports bytes.
    return rss if sys.platform == "darwin" else rss * 1024


def measure(callable_: Callable[[], object], *, trace_memory: bool = True) -> Measurement:
    """Run ``callable_`` once and record wall / CPU time and peak memory.

    ``cpu_seconds`` corresponds to the paper's Usr+Sys column (process CPU
    time), ``wall_seconds`` to its Time column.  ``peak_memory_bytes`` is
    the tracemalloc peak of the run (0 when ``trace_memory`` is off);
    ``peak_rss_bytes`` is the OS-level resident high-water mark afterwards.
    """
    if trace_memory:
        tracemalloc.start()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    result = callable_()
    wall_seconds = time.perf_counter() - wall_start
    cpu_seconds = time.process_time() - cpu_start
    peak = 0
    if trace_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    return Measurement(
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        peak_memory_bytes=peak,
        peak_rss_bytes=peak_rss_bytes(),
        result=result,
    )


def write_json_report(name: str, payload: object, directory: str | None = None) -> str:
    """Persist ``payload`` as ``<results>/<name>`` (machine-readable artefact).

    Benchmarks use this to leave perf trajectories (throughput, peak memory)
    that later changes can be compared against.
    """
    target_directory = directory or default_results_directory()
    os.makedirs(target_directory, exist_ok=True)
    path = os.path.join(target_directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def megabytes(size_bytes: float) -> float:
    """Bytes -> megabytes (decimal, as in the paper's MB figures)."""
    return size_bytes / 1_000_000.0


def throughput_mb_per_second(size_bytes: float, seconds: float) -> float:
    """Throughput in MB/s; 0 when the elapsed time is not measurable."""
    if seconds <= 0:
        return 0.0
    return megabytes(size_bytes) / seconds


@dataclass
class TableReporter:
    """Collects rows and renders a fixed-width table like the paper's."""

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row; values are formatted with :func:`format_value`."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values for {self.title}, got {len(values)}"
            )
        self.rows.append([format_value(value) for value in values])

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(self.columns))
        separator = "-" * len(header)
        lines = [self.title, separator, header, separator]
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
        lines.append(separator)
        return "\n".join(lines)

    def emit(self, directory: str | None = None) -> str:
        """Print the table and persist it under ``benchmarks/results``."""
        rendered = self.render()
        print("\n" + rendered)
        target_directory = directory or default_results_directory()
        os.makedirs(target_directory, exist_ok=True)
        slug = "".join(
            character if character.isalnum() else "_" for character in self.title.lower()
        ).strip("_")
        path = os.path.join(target_directory, f"{slug}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        return path


def default_results_directory() -> str:
    """``benchmarks/results`` relative to the repository root when available."""
    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (here, *_parents(here)):
        if os.path.isdir(os.path.join(candidate, "benchmarks")):
            return os.path.join(candidate, "benchmarks", "results")
    return os.path.join(os.getcwd(), "benchmark-results")


def _parents(path: str):
    while True:
        parent = os.path.dirname(path)
        if parent == path:
            return
        yield parent
        path = parent


def format_value(value: object) -> str:
    """Human-friendly formatting for table cells."""
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)
