"""Seed-deterministic schema generation for synthetic workloads.

Every correctness and performance claim in this repository used to be
two-corpus-shaped (MEDLINE, XMark).  This module is the schema half of the
DeepBench-style generator subsystem (:mod:`repro.workloads.generate`
produces documents, :mod:`repro.workloads.queries` matched queries,
:mod:`repro.workloads.fuzz` drives differential fuzzing): a
:class:`SchemaSpec` describes a family of non-recursive DTDs — nesting
depth, fanout, element-name alphabet, unrolled-recursion chains, attribute
density — and :func:`build_schema` expands it into a concrete
:class:`GeneratedSchema` whose DTD text parses and validates with the
repository's own :class:`~repro.dtd.model.Dtd` machinery.

The schema carries its own **feasibility matrix** (:meth:`GeneratedSchema.
matrix`): for every declared element the absolute root paths it can occur
under, the sentinel text token the document generator plants for it, and
the phantom elements that are declared but never emitted.  The query
generator draws from that matrix, so every generated query is satisfiable
by construction (and the phantom/never-token queries are unsatisfiable by
construction — the M1-style controls).

Determinism contract: the same :class:`SchemaSpec` (including its seed)
always produces the same schema, on every platform and Python version —
nothing here consults time, hashing randomisation, or global state.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from functools import lru_cache
from random import Random
from typing import Iterator, Mapping

from repro.dtd.model import Dtd
from repro.errors import WorkloadError

#: Element-name alphabets the spec can ask for.  ``plain`` gives short
#: distinct syllable words, ``overlap`` grows names that are prefixes of
#: each other (the paper's ``Abstract``/``AbstractText`` pathology, taken
#: to keyword-overlap families), ``long`` gives 24-40 character names so
#: tag keywords dominate the byte stream.
ALPHABETS = ("plain", "overlap", "long")

_CONSONANTS = "bdfgklmnprstvz"
_VOWELS = "aeiou"


@dataclass(frozen=True)
class SchemaSpec:
    """Parameters of one generated schema family.

    ``depth``
        Length of the required "spine" chain from the root to the deepest
        element; the element tree always realises this full depth.
    ``fanout``
        Children per spine element (the spine child plus ``fanout - 1``
        satellites: text leaves, attribute-bearing EMPTY elements, small
        internal forks).
    ``chain``
        Extra unrolled-recursion chain below the deepest spine element —
        the DTD must stay non-recursive (the paper requires it), so deep
        recursion scenarios are expressed as a chain of distinct
        single-child elements.
    ``alphabet``
        Element-name style, one of :data:`ALPHABETS`.
    ``leaf_pool``
        Size of the shared text-leaf name pool; shared leaves occur under
        several parents (XMark's ``name``/``description`` effect), which
        exercises multi-context dispatch.
    ``phantoms``
        Declared-but-never-generated elements (optional children of the
        root) — targets for deliberately-unsatisfiable control queries.
    ``attr_density``
        Probability that a satellite position becomes an EMPTY element
        with a required attribute.
    """

    seed: int = 0
    depth: int = 4
    fanout: int = 3
    chain: int = 0
    alphabet: str = "plain"
    leaf_pool: int = 3
    phantoms: int = 1
    attr_density: float = 0.3

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise WorkloadError(f"depth must be >= 1, got {self.depth}")
        if self.fanout < 1:
            raise WorkloadError(f"fanout must be >= 1, got {self.fanout}")
        if self.chain < 0:
            raise WorkloadError(f"chain must be >= 0, got {self.chain}")
        if self.alphabet not in ALPHABETS:
            raise WorkloadError(
                f"unknown alphabet {self.alphabet!r}; expected one of "
                f"{ALPHABETS}"
            )
        if self.leaf_pool < 1:
            raise WorkloadError(f"leaf_pool must be >= 1, got {self.leaf_pool}")
        if self.phantoms < 0:
            raise WorkloadError(f"phantoms must be >= 0, got {self.phantoms}")
        if not 0.0 <= self.attr_density <= 1.0:
            raise WorkloadError(
                f"attr_density must be in [0, 1], got {self.attr_density}"
            )

    @classmethod
    def parse(cls, text: str) -> "SchemaSpec":
        """Parse a ``"depth=12,fanout=4,seed=7"`` spec string.

        Unknown keys raise :class:`~repro.errors.WorkloadError`; a leading
        ``gen:`` prefix (the registry address form) is accepted.
        """
        return cls(**parse_kv(text, cls, prefix="gen"))

    def key(self) -> str:
        """The canonical ``gen:...`` registry address of this spec."""
        return format_kv("gen", self)


def parse_kv(text: str, spec_type, *, prefix: str | None = None,
             extra: Mapping[str, type] | None = None) -> dict:
    """Parse ``k=v,k=v`` into a kwargs dict typed after ``spec_type`` fields.

    Values are coerced to the dataclass field's type (int/float/str/bool).
    ``extra`` admits additional non-dataclass keys with explicit types.
    Shared by the schema/document spec parsers and the workload registry.
    """
    text = text.strip()
    if prefix and text.startswith(prefix + ":"):
        text = text[len(prefix) + 1:]
    types: dict[str, type] = {
        field.name: type(getattr(spec_type, field.name, field.default))
        for field in fields(spec_type)
    }
    if extra:
        types.update(extra)
    kwargs: dict = {}
    if not text:
        return kwargs
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        if "=" not in pair:
            raise WorkloadError(
                f"malformed spec entry {pair!r}; expected key=value"
            )
        key, _, value = pair.partition("=")
        key = key.strip()
        value = value.strip()
        if key not in types:
            raise WorkloadError(
                f"unknown spec key {key!r}; expected one of "
                f"{sorted(types)}"
            )
        kind = types[key]
        try:
            if kind is bool:
                if value.lower() not in ("0", "1", "true", "false"):
                    raise ValueError(value)
                kwargs[key] = value.lower() in ("1", "true")
            elif kind is int:
                kwargs[key] = int(value)
            elif kind is float:
                kwargs[key] = float(value)
            else:
                kwargs[key] = value
        except ValueError as error:
            raise WorkloadError(
                f"spec key {key!r} expects {kind.__name__}, got {value!r}"
            ) from error
    return kwargs


def format_kv(prefix: str, spec) -> str:
    """Format a dataclass spec as its canonical ``prefix:k=v,...`` address.

    Only the fields that differ from the default are listed, in field
    order, so equal specs format equally and the address stays short.
    """
    parts = []
    for field in fields(spec):
        value = getattr(spec, field.name)
        if value != field.default:
            parts.append(f"{field.name}={value}")
    return f"{prefix}:{','.join(parts)}"


# ----------------------------------------------------------------------
# Schema elements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChildRef:
    """One child position in a content model: name plus occurrence marker."""

    name: str
    occurrence: str = ""  # "", "?", "*", "+"


@dataclass(frozen=True)
class ElementInfo:
    """One declared element of a generated schema."""

    name: str
    children: tuple[ChildRef, ...] = ()
    has_text: bool = False
    attribute: str | None = None
    #: The unique text token the document generator plants for this element
    #: (coverage record), making ``text()``/``contains()`` predicates
    #: against it satisfiable by construction.
    sentinel: str | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children


class GeneratedSchema:
    """A concrete generated schema: declarations, DTD, feasibility matrix."""

    def __init__(self, spec: SchemaSpec, root: str,
                 elements: "dict[str, ElementInfo]",
                 phantom_names: tuple[str, ...],
                 filler: str) -> None:
        self.spec = spec
        self.root = root
        self.elements = elements
        self.phantom_names = phantom_names
        #: The starred text leaf of the root that absorbs size padding.
        self.filler = filler
        #: Predicate token that never occurs in any generated document.
        self.never_token = f"zqnever{spec.seed}x"
        self._paths: dict[str, tuple[tuple[str, ...], ...]] | None = None
        self._dtd: Dtd | None = None

    # ------------------------------------------------------------------
    # DTD
    # ------------------------------------------------------------------
    @property
    def dtd_text(self) -> str:
        """The schema as DTD text (a ``<!DOCTYPE ...>`` declaration)."""
        lines = [f"<!DOCTYPE {self.root} ["]
        for info in self.elements.values():
            if info.is_leaf and info.has_text:
                model = "(#PCDATA)"
            elif info.is_leaf:
                model = "EMPTY"
            else:
                model = "(" + ", ".join(
                    child.name + child.occurrence for child in info.children
                ) + ")"
            lines.append(f"<!ELEMENT {info.name} {model}>")
            if info.attribute:
                lines.append(
                    f"<!ATTLIST {info.name} {info.attribute} CDATA #REQUIRED>"
                )
        lines.append("]>")
        return "\n".join(lines)

    @property
    def dtd(self) -> Dtd:
        """The parsed, validated (non-recursive) DTD."""
        if self._dtd is None:
            self._dtd = Dtd.parse(self.dtd_text)
        return self._dtd

    # ------------------------------------------------------------------
    # Feasibility matrix
    # ------------------------------------------------------------------
    def paths(self) -> dict[str, tuple[tuple[str, ...], ...]]:
        """Absolute root paths per element name (the reachability matrix).

        Shared leaves occur under several parents, so an element may have
        many absolute paths; every returned path is realised by the
        coverage record of any document generated from this schema.
        """
        if self._paths is not None:
            return self._paths
        collected: dict[str, list[tuple[str, ...]]] = {
            name: [] for name in self.elements
        }

        def walk(name: str, prefix: tuple[str, ...]) -> None:
            path = prefix + (name,)
            collected[name].append(path)
            for child in self.elements[name].children:
                walk(child.name, path)

        walk(self.root, ())
        self._paths = {
            name: tuple(paths) for name, paths in collected.items()
        }
        return self._paths

    def matrix(self) -> dict:
        """The feasibility matrix the query generator draws from."""
        emitted = {
            name for name in self.elements if name not in self.phantom_names
        }
        return {
            "root": self.root,
            "paths": self.paths(),
            "emitted": emitted,
            "phantoms": tuple(self.phantom_names),
            "sentinels": {
                name: info.sentinel
                for name, info in self.elements.items()
                if info.sentinel is not None
            },
            "never_token": self.never_token,
            "overlap_groups": self.overlap_groups(),
        }

    def overlap_groups(self) -> tuple[tuple[str, ...], ...]:
        """Element-name families where one name is a prefix of another.

        These are the pathological keyword-overlap targets: the matchers'
        longest-first verification and the shared scan's prefix-expansion
        tables both key off exactly this situation.
        """
        names = sorted(self.elements)
        groups: list[tuple[str, ...]] = []
        index = 0
        while index < len(names):
            base = names[index]
            family = [base]
            cursor = index + 1
            while cursor < len(names) and names[cursor].startswith(base):
                family.append(names[cursor])
                cursor += 1
            if len(family) > 1:
                groups.append(tuple(family))
            index = cursor if cursor > index + 1 else index + 1
        return tuple(groups)

    def iter_text_elements(self) -> Iterator[ElementInfo]:
        """The PCDATA leaves, in declaration order (phantoms excluded)."""
        for info in self.elements.values():
            if info.has_text and info.name not in self.phantom_names:
                yield info

    @property
    def end_tag(self) -> bytes:
        """The record-stream boundary marker (the root's closing tag)."""
        return f"</{self.root}>".encode("ascii")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GeneratedSchema(root={self.root!r}, "
            f"elements={len(self.elements)}, spec={self.spec.key()!r})"
        )


# ----------------------------------------------------------------------
# Name generation
# ----------------------------------------------------------------------
class _Names:
    """Deterministic unique element-name factory per alphabet style."""

    def __init__(self, rng: Random, alphabet: str) -> None:
        self._rng = rng
        self._alphabet = alphabet
        self._seen: set[str] = set()

    def _word(self, syllables: int) -> str:
        rng = self._rng
        return "".join(
            rng.choice(_CONSONANTS) + rng.choice(_VOWELS)
            for _ in range(syllables)
        )

    def fresh(self, *, parent: str | None = None) -> str:
        """A new unique name; ``overlap`` extends the parent's name."""
        for _ in range(64):
            if self._alphabet == "long":
                name = self._word(self._rng.randint(12, 20))
            elif self._alphabet == "overlap" and parent is not None:
                # The child's tag is the parent's tag plus a short suffix,
                # so nested keywords are prefixes of each other.
                name = parent + self._word(1)
                if len(name) > 48:
                    name = self._word(2)
            else:
                name = self._word(self._rng.randint(2, 4))
            if name not in self._seen:
                self._seen.add(name)
                return name
        raise WorkloadError("name alphabet exhausted")  # pragma: no cover


# ----------------------------------------------------------------------
# Schema construction
# ----------------------------------------------------------------------
_OCCURRENCES = ("", "?", "*", "+")


@lru_cache(maxsize=32)
def build_schema(spec: SchemaSpec) -> GeneratedSchema:
    """Expand ``spec`` into a concrete schema (memoised per spec).

    The element tree is budgeted linearly in ``depth``/``fanout``/``chain``
    (a full ``fanout**depth`` tree would explode): a required spine runs to
    the full depth, every spine element carries ``fanout - 1`` satellite
    children, and the unrolled-recursion chain hangs below the deepest
    spine element.  The root additionally declares the phantom controls
    and the trailing starred ``filler`` text leaf used for size padding.
    """
    rng = Random(("schema", spec.seed, spec.depth, spec.fanout, spec.chain,
                  spec.alphabet, spec.leaf_pool, spec.phantoms,
                  round(spec.attr_density, 6)).__repr__())
    names = _Names(rng, spec.alphabet)
    elements: dict[str, ElementInfo] = {}
    sentinel_count = 0

    def sentinel_for(name: str) -> str:
        nonlocal sentinel_count
        sentinel_count += 1
        return f"zq{sentinel_count}{_safe(name)}x"

    # Shared text-leaf pool: the same leaf name occurs under many parents.
    pool: list[str] = []
    for _ in range(spec.leaf_pool):
        name = names.fresh()
        pool.append(name)
        elements[name] = ElementInfo(
            name=name, has_text=True, sentinel=sentinel_for(name)
        )

    def make_leaf(parent: str) -> str:
        if pool and rng.random() < 0.5:
            return rng.choice(pool)
        name = names.fresh(parent=parent)
        elements[name] = ElementInfo(
            name=name, has_text=True, sentinel=sentinel_for(name)
        )
        return name

    def make_empty(parent: str) -> str:
        name = names.fresh(parent=parent)
        elements[name] = ElementInfo(
            name=name, attribute="k" + _safe(name)[:8]
        )
        return name

    def make_fork(parent: str) -> str:
        """A small internal element with one or two leaf children."""
        name = names.fresh(parent=parent)
        children = tuple(
            ChildRef(make_leaf(name), rng.choice(_OCCURRENCES))
            for _ in range(rng.randint(1, 2))
        )
        elements[name] = ElementInfo(name=name, children=children)
        return name

    def satellites(parent: str, count: int) -> list[ChildRef]:
        refs: list[ChildRef] = []
        for _ in range(count):
            roll = rng.random()
            if roll < spec.attr_density:
                child = make_empty(parent)
            elif roll < spec.attr_density + 0.15:
                child = make_fork(parent)
            else:
                child = make_leaf(parent)
            refs.append(ChildRef(child, rng.choice(_OCCURRENCES)))
        return refs

    # Spine, deepest first so declarations can reference existing names.
    spine = [names.fresh() for _ in range(spec.depth)]
    for level in range(spec.depth - 1, -1, -1):
        name = spine[level]
        children: list[ChildRef] = []
        if level + 1 < spec.depth:
            children.append(ChildRef(spine[level + 1]))  # required
        if level == spec.depth - 1 and spec.chain:
            # Unrolled recursion: a required chain of single-child elements
            # ending in a text leaf.
            chain_names = [names.fresh(parent=name)
                           for _ in range(spec.chain)]
            tail = make_leaf(chain_names[-1])
            for position in range(spec.chain - 1, -1, -1):
                link = chain_names[position]
                below = (chain_names[position + 1]
                         if position + 1 < spec.chain else tail)
                elements[link] = ElementInfo(
                    name=link, children=(ChildRef(below),)
                )
            children.append(ChildRef(chain_names[0]))
        children.extend(satellites(name, max(0, spec.fanout - 1)))
        if not children:
            elements[name] = ElementInfo(
                name=name, has_text=True, sentinel=sentinel_for(name)
            )
        else:
            elements[name] = ElementInfo(name=name, children=tuple(children))
    root = spine[0]

    # Phantoms: declared, reachable in the DTD, never emitted.
    phantom_names = []
    for _ in range(spec.phantoms):
        name = names.fresh()
        elements[name] = ElementInfo(
            name=name, has_text=True, sentinel=None
        )
        phantom_names.append(name)

    # Filler: the trailing starred text leaf of the root (size padding).
    filler = names.fresh()
    elements[filler] = ElementInfo(
        name=filler, has_text=True, sentinel=sentinel_for(filler)
    )

    root_children = list(elements[root].children)
    root_children.extend(ChildRef(name, "?") for name in phantom_names)
    root_children.append(ChildRef(filler, "*"))
    elements[root] = ElementInfo(name=root, children=tuple(root_children))

    # Prune declarations unreachable from the root (a pool leaf the random
    # walk never referenced) — they could never be emitted, so keeping
    # them would only pollute the feasibility matrix with dead rows.
    reachable: set[str] = set()
    frontier = [root]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        frontier.extend(child.name for child in elements[name].children)

    # Declaration order: root first (cosmetic; the DOCTYPE names the root).
    ordered: dict[str, ElementInfo] = {root: elements[root]}
    for name, info in elements.items():
        if name != root and name in reachable:
            ordered[name] = info

    schema = GeneratedSchema(
        spec=spec,
        root=root,
        elements=ordered,
        phantom_names=tuple(phantom_names),
        filler=filler,
    )
    # Parsing validates referential integrity and non-recursiveness now,
    # so a bad expansion fails at build time, not first use.
    schema.dtd
    return schema


def _safe(name: str) -> str:
    return "".join(char for char in name if char.isalnum())
