"""One registry for builtin and generated workloads.

Benches and tests used to address the two builtin corpora
(:func:`repro.workloads.datasets.load_dataset`) and generated corpora
through different code paths.  :func:`get` unifies them behind one
address scheme:

``workloads.get("xmark")`` / ``workloads.get("medline")``
    The builtin synthetic corpora, DTDs and paper query sets (M1-M5,
    XM1-XM20), sized like :func:`load_dataset` sizes them.
``workloads.get("gen:depth=12,fanout=4,seed=7")``
    A generated workload: schema from the ``gen:`` spec keys
    (:class:`~repro.workloads.schema.SchemaSpec`), corpus from the
    document keys (:class:`~repro.workloads.generate.DocumentSpec`), and
    a matched query set drawn from the feasibility matrix.  Unknown keys
    raise; both key families may be mixed in one address.
``workloads.get("json:records=8,seed=3")``
    The JSONL second grammar mapped onto the XML runtime
    (:mod:`repro.workloads.json_records`).

Every address resolves to the same :class:`Workload` shape — name, DTD,
query specs, record end tag, and ``document()``/``records()``/
``stream()`` accessors — so callers can iterate workloads without caring
which family they came from.  Equal addresses resolve to equal content
(generated workloads are seed-deterministic; builtin ones are cached by
:mod:`repro.workloads.datasets`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Mapping

from repro.dtd.model import Dtd
from repro.errors import WorkloadError
from repro.projection.extraction import QuerySpec

#: Built-in workload names (the non-prefixed addresses).
BUILTIN = ("medline", "xmark")

#: Generated-workload address prefixes.
PREFIXES = ("gen", "json")


@dataclass(frozen=True)
class Workload:
    """One addressable workload: corpus accessors plus query specs."""

    name: str
    dtd: Dtd
    queries: Mapping[str, QuerySpec]
    query_order: tuple[str, ...]
    end_tag: bytes
    _records: Callable[[], list[bytes]]

    def records(self) -> list[bytes]:
        """The corpus as one XML document (``bytes``) per record."""
        return self._records()

    def stream(self) -> bytes:
        """The corpus as one concatenated record stream."""
        return b"\n".join(self.records()) + b"\n"

    def document(self) -> bytes:
        """The first record — a single representative document."""
        return self.records()[0]

    def query(self, name: str) -> QuerySpec:
        return self.queries[name]


def get(address: str, *, size_bytes: int | None = None,
        seed: int = 42) -> Workload:
    """Resolve a workload address (see the module docstring).

    ``size_bytes``/``seed`` apply to the builtin corpora only (they map
    onto :func:`~repro.workloads.datasets.load_dataset`); generated
    addresses carry their sizing and seeds in the address itself.
    """
    address = address.strip()
    if ":" in address:
        prefix, _, rest = address.partition(":")
        if prefix == "gen":
            return _generated(rest)
        if prefix == "json":
            return _json(rest)
        raise WorkloadError(
            f"unknown workload prefix {prefix!r}; expected one of {PREFIXES}"
        )
    if address in BUILTIN:
        return _builtin(address, size_bytes=size_bytes, seed=seed)
    raise WorkloadError(
        f"unknown workload {address!r}; expected one of {BUILTIN} or a "
        f"'gen:'/'json:' spec address"
    )


# ----------------------------------------------------------------------
# Builtin corpora
# ----------------------------------------------------------------------
def _builtin(name: str, *, size_bytes: int | None, seed: int) -> Workload:
    from repro.workloads.datasets import load_dataset

    if name == "medline":
        from repro.workloads.medline import (
            MEDLINE_QUERIES,
            MEDLINE_QUERY_ORDER,
            medline_dtd,
        )

        dtd = medline_dtd()
        queries: Mapping[str, QuerySpec] = MEDLINE_QUERIES
        order = tuple(MEDLINE_QUERY_ORDER)
        end_tag = b"</MedlineCitationSet>"
    else:
        from repro.workloads.xmark import (
            XMARK_QUERIES,
            XMARK_QUERY_ORDER,
            xmark_dtd,
        )

        dtd = xmark_dtd()
        queries = XMARK_QUERIES
        order = tuple(XMARK_QUERY_ORDER)
        end_tag = b"</site>"

    def records() -> list[bytes]:
        # The builtin datasets are single sized documents; the corpus
        # view is that one record (MEDLINE-style streams concatenate it).
        return [load_dataset(name, size_bytes, seed=seed).encode("utf-8")]

    return Workload(
        name=name, dtd=dtd, queries=queries, query_order=order,
        end_tag=end_tag, _records=records,
    )


# ----------------------------------------------------------------------
# Generated corpora
# ----------------------------------------------------------------------
def _split_spec_keys(text: str) -> tuple[dict, dict, dict]:
    """Route mixed ``k=v`` keys to schema / document / query kwargs."""
    from repro.workloads.generate import DocumentSpec
    from repro.workloads.schema import SchemaSpec, parse_kv

    schema_keys = {field.name for field in fields(SchemaSpec)}
    document_keys = {field.name for field in fields(DocumentSpec)}
    query_keys = {"queries", "unsat_ratio"}
    schema_kwargs: dict = {}
    document_kwargs: dict = {}
    query_kwargs: dict = {}
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key = pair.partition("=")[0].strip()
        if key == "seed":
            value = parse_kv(pair, SchemaSpec)
            schema_kwargs.update(value)
            document_kwargs.update(value)
        elif key in schema_keys:
            schema_kwargs.update(parse_kv(pair, SchemaSpec))
        elif key in document_keys:
            document_kwargs.update(parse_kv(pair, DocumentSpec))
        elif key in query_keys:
            query_kwargs.update(parse_kv(
                pair, DocumentSpec,
                extra={"queries": int, "unsat_ratio": float},
            ))
        else:
            raise WorkloadError(
                f"unknown workload spec key {key!r}; expected schema keys "
                f"{sorted(schema_keys)}, document keys "
                f"{sorted(document_keys)} or query keys {sorted(query_keys)}"
            )
    return schema_kwargs, document_kwargs, query_kwargs


def _generated(text: str) -> Workload:
    from repro.workloads.generate import DocumentSpec, generate_records
    from repro.workloads.queries import generate_queries
    from repro.workloads.schema import SchemaSpec, build_schema

    schema_kwargs, document_kwargs, query_kwargs = _split_spec_keys(text)
    schema = build_schema(SchemaSpec(**schema_kwargs))
    document_spec = DocumentSpec(**document_kwargs)
    generated = generate_queries(
        schema,
        seed=document_spec.seed,
        count=query_kwargs.get("queries", 8),
        unsat_ratio=query_kwargs.get("unsat_ratio", 0.2),
    )
    queries = {query.name: query.spec() for query in generated}
    return Workload(
        name=f"gen:{text}",
        dtd=schema.dtd,
        queries=queries,
        query_order=tuple(query.name for query in generated),
        end_tag=schema.end_tag,
        _records=lambda: generate_records(schema, document_spec),
    )


def _json(text: str) -> Workload:
    from repro.workloads import json_records
    from repro.workloads.schema import parse_kv

    spec = json_records.JsonSpec(**parse_kv(text, json_records.JsonSpec))
    generated = json_records.json_queries()
    queries = {query.name: query.spec() for query in generated}
    return Workload(
        name=f"json:{text}",
        dtd=json_records.json_dtd(),
        queries=queries,
        query_order=tuple(query.name for query in generated),
        end_tag=b"</record>",
        _records=lambda: json_records.xml_records(spec),
    )
