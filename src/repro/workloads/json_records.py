"""JSON/JSONL record generation mapped onto the XML runtime.

The prefilter runtime speaks one grammar — XML token events — but the
corpus machinery (record splitting, per-document filtering, parallel
sharding) is grammar-agnostic.  This module proves that by mapping a
second grammar onto the same runtime: a seed-deterministic JSONL generator
emits records of a fixed field shape, :func:`json_record_to_xml` maps each
JSON record onto an equivalent XML document (keys become elements, arrays
repeated elements, scalars escaped text), and the generated DTD describes
the mapped shape so the full prefilter pipeline — projection, static
analysis, string matching — runs unchanged.

``Source.from_jsonl(stream, transform=json_record_to_xml)`` turns any
JSONL byte stream into a corpus the :class:`~repro.api.Engine` can run
sequentially or in parallel; :mod:`repro.workloads.fuzz` includes a
``json`` scenario that holds this path to the same byte-identity
obligations as the native XML paths.

The mapped record shape (fixed; :class:`JsonSpec` parameterises sizes and
densities, not the shape)::

    {"id": 7, "name": "...", "tags": ["...", ...],
     "meta": {"author": "...", "year": 1987}, "note": "..."?}

which maps to::

    <record><id>7</id><name>...</name><tags><tag>...</tag>...</tags>
    <meta><author>...</author><year>1987</year></meta><note>...</note>
    </record>

Record 0 is the coverage record: every field present, every sentinel
planted as exact text, so the fixed query set is satisfiable by
construction (and ``JX_phantom``/``JX_never`` stay unsatisfiable).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from random import Random

from repro.dtd.model import Dtd
from repro.errors import WorkloadError
from repro.workloads.generate import _escape_text  # same escaping rules
from repro.workloads.queries import GeneratedQuery
from repro.workloads.schema import format_kv, parse_kv

#: Sentinel tokens the coverage record plants (exact text of the field).
SENTINELS = {
    "name": "zqjname0x",
    "author": "zqjauthor0x",
    "tag": "zqjtag0x",
    "note": "zqjnote0x",
}

#: Token that never occurs in any generated record.
NEVER_TOKEN = "zqjneverx"

_WORDS = (
    "alpha", "bravo", "delta", "gamma", "omega", "sigma", "kappa",
    "lambda", "vector", "tensor",
)
_UTF8_WORDS = ("méta", "süß", "データ", "πλη", "код", "🦆")

#: The DTD of the mapped shape.  ``extra`` is the declared-but-never-
#: emitted phantom control (the M1 shape for the JSON grammar).
DTD_TEXT = """<!DOCTYPE record [
<!ELEMENT record (id, name, tags, meta, note?, extra?)>
<!ELEMENT id (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT tags (tag*)>
<!ELEMENT tag (#PCDATA)>
<!ELEMENT meta (author, year)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT extra (#PCDATA)>
]>"""

_DTD: Dtd | None = None


def json_dtd() -> Dtd:
    """The parsed DTD of the mapped record shape (memoised)."""
    global _DTD
    if _DTD is None:
        _DTD = Dtd.parse(DTD_TEXT)
    return _DTD


@dataclass(frozen=True)
class JsonSpec:
    """Parameters of one generated JSONL corpus."""

    seed: int = 0
    records: int = 6
    tags_max: int = 3
    note_density: float = 0.5
    utf8: float = 0.0

    def __post_init__(self) -> None:
        if self.records < 1:
            raise WorkloadError(f"records must be >= 1, got {self.records}")
        if self.tags_max < 0:
            raise WorkloadError(f"tags_max must be >= 0, got {self.tags_max}")
        for name in ("note_density", "utf8"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"{name} must be in [0, 1], got {value}"
                )

    @classmethod
    def parse(cls, text: str) -> "JsonSpec":
        return cls(**parse_kv(text, cls, prefix="json"))

    def key(self) -> str:
        return format_kv("json", self)


def generate_json_records(spec: JsonSpec) -> list[dict]:
    """The corpus as Python dicts (record 0 = coverage, sentinels exact)."""
    rng = Random(("json-records", spec.seed, spec.key()).__repr__())

    def word() -> str:
        if spec.utf8 and rng.random() < spec.utf8:
            return rng.choice(_UTF8_WORDS)
        return rng.choice(_WORDS)

    def words(low: int, high: int) -> str:
        return " ".join(word() for _ in range(rng.randint(low, high)))

    records: list[dict] = []
    for index in range(spec.records):
        coverage = index == 0
        record: dict = {
            "id": index,
            "name": SENTINELS["name"] if coverage else words(1, 3),
            "tags": (
                [SENTINELS["tag"], words(1, 1)] if coverage
                else [words(1, 1) for _ in range(rng.randint(0, spec.tags_max))]
            ),
            "meta": {
                "author": SENTINELS["author"] if coverage else words(1, 2),
                "year": 1900 + rng.randint(0, 125),
            },
        }
        if coverage or rng.random() < spec.note_density:
            record["note"] = (
                SENTINELS["note"] if coverage
                else words(2, 5)
            )
        records.append(record)
    return records


def generate_jsonl(spec: JsonSpec) -> bytes:
    """The corpus as a JSONL byte stream (one record per line)."""
    lines = [
        json.dumps(record, ensure_ascii=False, separators=(",", ":"))
        for record in generate_json_records(spec)
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")


# ----------------------------------------------------------------------
# JSON -> XML mapping
# ----------------------------------------------------------------------
def json_to_xml(value, name: str) -> str:
    """Map one JSON value onto XML: keys to elements, arrays to repeats.

    Dict keys are emitted in insertion order (the generator's field
    order), so mapped documents follow the DTD's content-model sequences.
    Array items repeat the singular element name (``tags`` holds ``tag``
    children; other plurals repeat their own name).
    """
    if isinstance(value, dict):
        inner = "".join(
            json_to_xml(child, key) for key, child in value.items()
        )
        return f"<{name}>{inner}</{name}>"
    if isinstance(value, list):
        item_name = name[:-1] if name.endswith("s") and len(name) > 1 else name
        items = "".join(json_to_xml(item, item_name) for item in value)
        return f"<{name}>{items}</{name}>"
    if value is None:
        return f"<{name}/>"
    if value is True or value is False:
        text = "true" if value else "false"
    else:
        text = str(value)
    return f"<{name}>{_escape_text(text)}</{name}>"


def json_record_to_xml(line: bytes) -> bytes:
    """The :meth:`Source.from_jsonl` transform: one JSONL line to XML."""
    record = json.loads(line)
    return json_to_xml(record, "record").encode("utf-8")


def xml_records(spec: JsonSpec) -> list[bytes]:
    """The mapped XML documents, in corpus order (reference view)."""
    return [
        json_to_xml(record, "record").encode("utf-8")
        for record in generate_json_records(spec)
    ]


# ----------------------------------------------------------------------
# The matched query set for the mapped grammar
# ----------------------------------------------------------------------
def json_queries() -> list[GeneratedQuery]:
    """The fixed query families over the mapped shape.

    Satisfiable by construction against any :func:`generate_json_records`
    corpus (the coverage record plants every sentinel); the phantom and
    never-token controls are unsatisfiable by construction.
    """
    queries = [
        GeneratedQuery("J0_spine", "/record/meta/author", "spine", True),
        GeneratedQuery("J1_descendant", "/record//tag", "descendant", True),
        GeneratedQuery(
            "J2_predicate",
            f'/record/meta[author/text()="{SENTINELS["author"]}"]/year',
            "predicate", True,
        ),
        GeneratedQuery(
            "J3_contains",
            f'/record[contains(name/text(),"{SENTINELS["name"]}")]/name',
            "contains", True,
        ),
        GeneratedQuery(
            "J4_disjunction",
            f'/record[name/text()="{NEVER_TOKEN}" or '
            f'name/text()="{SENTINELS["name"]}"]/tags',
            "disjunction", True,
        ),
        GeneratedQuery("J5_phantom", "/record//extra", "phantom", False),
        GeneratedQuery(
            "J6_never",
            f'/record/note[contains(text(),"{NEVER_TOKEN}")]',
            "never", False,
        ),
    ]
    for query in queries:
        query.spec()  # parse now, as the generated families do
    return queries
