"""Materialisation and caching of benchmark documents.

Generating multi-megabyte synthetic documents takes a noticeable fraction of
a benchmark run, so documents are generated once per ``(dataset, size, seed)``
combination and cached both in memory and on disk (under the user's temporary
directory).  All benchmarks and examples obtain their inputs through this
module, which keeps runs reproducible and fast.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads.medline.generator import generate_medline_document_of_size
from repro.workloads.xmark.generator import generate_xmark_document_of_size

_MEMORY_CACHE: dict[tuple[str, int, int], str] = {}

#: Default document size used by the table benchmarks (bytes).  The paper
#: uses 5 GB (XMark) and 656 MB (MEDLINE); the pure-Python reproduction
#: defaults to 1.5 MB, which keeps a full benchmark run in the minutes range
#: while leaving the structure-dependent ratios unchanged.  Override with the
#: REPRO_DOCUMENT_BYTES environment variable for larger runs.
DEFAULT_DOCUMENT_BYTES = 1_500_000

#: Environment variable that overrides the default document size.
SIZE_ENVIRONMENT_VARIABLE = "REPRO_DOCUMENT_BYTES"


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset at a specific size."""

    name: str            # "xmark" or "medline"
    size_bytes: int
    seed: int = 42

    def cache_key(self) -> tuple[str, int, int]:
        return (self.name, self.size_bytes, self.seed)


def default_document_bytes() -> int:
    """The benchmark document size, honouring the environment override."""
    override = os.environ.get(SIZE_ENVIRONMENT_VARIABLE)
    if override:
        try:
            value = int(override)
        except ValueError as error:
            raise WorkloadError(
                f"{SIZE_ENVIRONMENT_VARIABLE} must be an integer, got {override!r}"
            ) from error
        if value <= 0:
            raise WorkloadError(f"{SIZE_ENVIRONMENT_VARIABLE} must be positive")
        return value
    return DEFAULT_DOCUMENT_BYTES


def _generate(spec: DatasetSpec) -> str:
    if spec.name == "xmark":
        return generate_xmark_document_of_size(spec.size_bytes, seed=spec.seed)
    if spec.name == "medline":
        return generate_medline_document_of_size(spec.size_bytes, seed=spec.seed)
    raise WorkloadError(f"unknown dataset {spec.name!r}; expected 'xmark' or 'medline'")


def _disk_cache_path(spec: DatasetSpec) -> str:
    directory = os.path.join(tempfile.gettempdir(), "repro-smp-datasets")
    os.makedirs(directory, exist_ok=True)
    return os.path.join(
        directory, f"{spec.name}-{spec.size_bytes}-{spec.seed}.xml"
    )


def load_dataset(name: str, size_bytes: int | None = None, seed: int = 42) -> str:
    """Return the document text for a dataset, generating it if necessary."""
    spec = DatasetSpec(
        name=name,
        size_bytes=size_bytes if size_bytes is not None else default_document_bytes(),
        seed=seed,
    )
    cached = _MEMORY_CACHE.get(spec.cache_key())
    if cached is not None:
        return cached
    path = _disk_cache_path(spec)
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = _generate(spec)
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError:
            # Disk caching is best-effort; the in-memory cache still applies.
            pass
    _MEMORY_CACHE[spec.cache_key()] = text
    return text


def clear_caches() -> None:
    """Drop the in-memory dataset cache (disk files are left in place)."""
    _MEMORY_CACHE.clear()
