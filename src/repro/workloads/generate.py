"""Seed-deterministic document/corpus generation over generated schemas.

:mod:`repro.workloads.schema` expands a :class:`~repro.workloads.schema.
SchemaSpec` into a concrete DTD; this module renders documents that
conform to it.  A :class:`DocumentSpec` controls the corpus shape —
record count, target record size, repetition width, attribute payload
size, and the densities of UTF-8 multi-byte text, CDATA sections,
comments, and DOCTYPE prologues.

Satisfiability by construction: record 0 of every corpus is the
**coverage record** — it realises every declared child position
(required, ``?``, ``*`` and ``+`` each at least once, phantoms excepted)
and plants each element's sentinel token as the exact text of one of its
occurrences.  Every absolute path in the schema's feasibility matrix
therefore occurs in every corpus, so every query the matched generator
derives from that matrix is satisfiable.  Phantom elements and the
schema's ``never_token`` stay absent by construction, keeping the
unsatisfiable controls honest.

The generator emits children strictly in declaration order, so documents
are valid under the generated DTD — the prefilter's static analysis
assumes DTD-conformant input (the paper's premise), and the generator
must not violate it.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from random import Random

from repro.errors import WorkloadError
from repro.workloads.schema import (
    GeneratedSchema,
    SchemaSpec,
    build_schema,
    format_kv,
    parse_kv,
)

#: ASCII word pool for text content (never contains sentinel substrings:
#: sentinels are ``zq...x`` and no pool word starts with ``zq``).
_WORDS = (
    "data", "stream", "filter", "query", "match", "token", "record",
    "node", "index", "value", "path", "prefix", "scan", "shift",
)

#: Multi-byte pool: 2-byte (é, ø), 3-byte (CJK, Greek, Cyrillic) and
#: 4-byte (emoji, Gothic) UTF-8 sequences, so adversarial chunk splits
#: can land inside every encoded length.
_UTF8_WORDS = (
    "thé", "øst", "naïve", "données", "日本語", "χαίρε", "привет",
    "데이터", "𝔡𝔞𝔱𝔞", "🦉🦋", "𐌰𐌱𐌲",
)


@dataclass(frozen=True)
class DocumentSpec:
    """Parameters of one generated corpus over a schema.

    ``record_bytes`` is a *target*: records are padded up to it with the
    schema's starred ``filler`` leaf (0 means natural size).  Densities
    are probabilities in [0, 1]; ``doctype`` prepends an XML declaration
    plus the schema's own DOCTYPE (internal subset) to each record.
    """

    seed: int = 0
    records: int = 4
    record_bytes: int = 0
    repeat_max: int = 2
    attr_bytes: int = 12
    utf8: float = 0.0
    cdata: float = 0.0
    comments: float = 0.0
    doctype: bool = False

    def __post_init__(self) -> None:
        if self.records < 1:
            raise WorkloadError(f"records must be >= 1, got {self.records}")
        if self.record_bytes < 0:
            raise WorkloadError(
                f"record_bytes must be >= 0, got {self.record_bytes}"
            )
        if self.repeat_max < 1:
            raise WorkloadError(
                f"repeat_max must be >= 1, got {self.repeat_max}"
            )
        if self.attr_bytes < 1:
            raise WorkloadError(
                f"attr_bytes must be >= 1, got {self.attr_bytes}"
            )
        for name in ("utf8", "cdata", "comments"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"{name} density must be in [0, 1], got {value}"
                )

    @classmethod
    def parse(cls, text: str) -> "DocumentSpec":
        return cls(**parse_kv(text, cls, prefix="doc"))

    def key(self) -> str:
        return format_kv("doc", self)


def _escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(text: str) -> str:
    return _escape_text(text).replace('"', "&quot;")


class _RecordWriter:
    """Renders one DTD-valid record of a generated schema."""

    def __init__(self, schema: GeneratedSchema, spec: DocumentSpec,
                 rng: Random, *, coverage: bool) -> None:
        self._schema = schema
        self._spec = spec
        self._rng = rng
        self._coverage = coverage
        self._pieces: list[str] = []

    def render(self) -> str:
        self._emit_element(self._schema.root)
        return "".join(self._pieces)

    # ------------------------------------------------------------------
    def _emit_element(self, name: str) -> None:
        schema, rng, spec = self._schema, self._rng, self._spec
        info = schema.elements[name]
        if info.is_leaf and not info.has_text:
            value = self._attr_value()
            self._pieces.append(
                f'<{name} {info.attribute}="{value}"/>'
            )
            return
        if info.is_leaf:
            self._pieces.append(f"<{name}>")
            self._emit_text(name)
            self._pieces.append(f"</{name}>")
            return
        self._pieces.append(f"<{name}>")
        for child in info.children:
            if child.name in schema.phantom_names:
                continue  # declared `?`, never emitted
            if child.name == schema.filler and name == schema.root:
                continue  # padding appended by generate_records
            for _ in range(self._repeat(child.occurrence)):
                self._maybe_comment()
                self._emit_element(child.name)
        self._maybe_comment()
        self._pieces.append(f"</{name}>")

    def _repeat(self, occurrence: str) -> int:
        rng, spec = self._rng, self._spec
        if occurrence == "":
            return 1
        if occurrence == "?":
            return 1 if self._coverage else rng.randint(0, 1)
        if occurrence == "+":
            return 2 if self._coverage else rng.randint(1, spec.repeat_max)
        # "*"
        return 1 if self._coverage else rng.randint(0, spec.repeat_max)

    def _emit_text(self, name: str) -> None:
        rng, spec = self._rng, self._spec
        sentinel = self._schema.elements[name].sentinel
        plant = sentinel is not None and (
            self._coverage or rng.random() < 0.1
        )
        if plant:
            # Exact-text occurrence: the whole content is the sentinel.  In
            # the coverage record EVERY text leaf carries its exact
            # sentinel, so every (ancestor, leaf) predicate pair realised
            # by the schema satisfies `leaf/text()="<sentinel>"` there.
            self._pieces.append(sentinel)
            return
        words = [self._word() for _ in range(rng.randint(1, 4))]
        if sentinel is not None and rng.random() < 0.15:
            # contains() fodder: sentinel embedded mid-text.
            words.insert(rng.randrange(len(words) + 1), sentinel)
        text = " ".join(words)
        if rng.random() < spec.cdata:
            self._pieces.append(f"<![CDATA[{text}]]>")
        else:
            self._pieces.append(_escape_text(text))

    def _word(self) -> str:
        rng, spec = self._rng, self._spec
        if spec.utf8 and rng.random() < spec.utf8:
            return rng.choice(_UTF8_WORDS)
        return rng.choice(_WORDS)

    def _attr_value(self) -> str:
        rng, spec = self._rng, self._spec
        words: list[str] = []
        length = 0
        while length < spec.attr_bytes:
            word = self._word()
            words.append(word)
            length += len(word.encode("utf-8")) + 1
        return _escape_attr(" ".join(words))[:max(1, spec.attr_bytes)]

    def _maybe_comment(self) -> None:
        rng, spec = self._rng, self._spec
        if spec.comments and rng.random() < spec.comments:
            words = " ".join(self._word() for _ in range(rng.randint(1, 3)))
            self._pieces.append(f"<!-- {words} -->")


def generate_records(schema: GeneratedSchema,
                     spec: DocumentSpec) -> list[bytes]:
    """The corpus as a list of UTF-8 record documents (record 0 = coverage).

    Deterministic in ``(schema.spec, spec)``: the RNG is derived from both
    seeds and nothing else.
    """
    rng = Random(("records", schema.spec.seed, schema.spec.key(),
                  spec.seed, spec.key()).__repr__())
    records: list[bytes] = []
    for index in range(spec.records):
        writer = _RecordWriter(
            schema, spec, rng, coverage=(index == 0)
        )
        text = writer.render()
        text = _pad_record(schema, spec, rng, text)
        if spec.doctype:
            text = (
                '<?xml version="1.0" encoding="UTF-8"?>\n'
                + schema.dtd_text + "\n" + text
            )
        records.append(text.encode("utf-8"))
    return records


def _pad_record(schema: GeneratedSchema, spec: DocumentSpec, rng: Random,
                text: str) -> str:
    """Pad ``text`` toward ``spec.record_bytes`` with trailing filler leaves.

    The filler is the root's final starred text leaf, so insertion before
    the closing root tag keeps the record DTD-valid.
    """
    if not spec.record_bytes:
        return text
    close = f"</{schema.root}>"
    assert text.endswith(close)
    body, filler = text[:-len(close)], schema.filler
    pieces = [body]
    size = len(body.encode("utf-8")) + len(close)
    while size < spec.record_bytes:
        words = " ".join(
            (rng.choice(_UTF8_WORDS) if spec.utf8 and rng.random() < spec.utf8
             else rng.choice(_WORDS))
            for _ in range(8)
        )
        piece = f"<{filler}>{_escape_text(words)}</{filler}>"
        pieces.append(piece)
        size += len(piece.encode("utf-8"))
    pieces.append(close)
    return "".join(pieces)


def generate_document(schema: GeneratedSchema, spec: DocumentSpec) -> bytes:
    """A single document: the corpus's coverage record."""
    if spec.records != 1:
        spec = DocumentSpec(**{**_asdict(spec), "records": 1})
    return generate_records(schema, spec)[0]


def generate_stream(schema: GeneratedSchema, spec: DocumentSpec) -> bytes:
    """The corpus as one concatenated record stream (newline-separated),
    ready for ``Source.from_records(..., end_tag=schema.end_tag)``."""
    return b"\n".join(generate_records(schema, spec)) + b"\n"


def _asdict(spec: DocumentSpec) -> dict:
    from dataclasses import asdict

    return asdict(spec)


# ----------------------------------------------------------------------
# CLI: python -m repro generate ...
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """``python -m repro generate`` — emit a generated corpus (and DTD)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro generate",
        description=(
            "Generate a seed-deterministic XML corpus (schema + documents) "
            "for differential fuzzing and benchmarking."
        ),
    )
    parser.add_argument(
        "--schema", default="",
        help="schema spec, e.g. 'depth=6,fanout=3,seed=7' "
             "(keys: %s)" % ",".join(
                 f.name for f in __import__("dataclasses").fields(SchemaSpec)
             ),
    )
    parser.add_argument(
        "--document", default="",
        help="document spec, e.g. 'records=8,record_bytes=4096,utf8=0.1'",
    )
    parser.add_argument(
        "--out", default="-",
        help="output path for the record stream ('-' = stdout)",
    )
    parser.add_argument(
        "--dtd", default=None, metavar="PATH",
        help="also write the generated DTD text to PATH",
    )
    parser.add_argument(
        "--queries", type=int, default=0, metavar="N",
        help="also print N generated XPath queries (one per line, stderr)",
    )
    parser.add_argument(
        "--query-seed", type=int, default=0,
        help="seed for --queries (default 0)",
    )
    options = parser.parse_args(argv)

    schema = build_schema(SchemaSpec.parse(options.schema))
    spec = DocumentSpec.parse(options.document)
    stream = generate_stream(schema, spec)

    if options.dtd:
        with open(options.dtd, "w", encoding="utf-8") as handle:
            handle.write(schema.dtd_text + "\n")
    if options.queries:
        from repro.workloads.queries import generate_queries

        queries = generate_queries(
            schema, seed=options.query_seed, count=options.queries
        )
        for query in queries:
            print(f"{query.name}\t{query.xpath}", file=sys.stderr)

    if options.out == "-":
        sys.stdout.buffer.write(stream)
    else:
        with open(options.out, "wb") as handle:
            handle.write(stream)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
