"""The XMark query workload of Table I (XM1-XM14, XM17-XM20).

The paper evaluates the projection paths extracted (with the algorithm of
Marian & Simeon [5]) from the XMark benchmark queries Q1-Q14 and Q17-Q20 --
the queries that do not touch the recursive description lists.  The XQuery
texts themselves are only descriptive here; what the prefilter consumes are
the projection-path sets, and what the downstream in-memory engine runs is an
XPath-subset approximation of each query's data needs (the engine plays the
role QizX plays in Figure 7(a): loading the document dominates, so the exact
result expression is immaterial for the reproduced shape).

XM2 and XM3 share identical projection paths, as the paper points out.
"""

from __future__ import annotations

from repro.projection.extraction import QuerySpec

XMARK_QUERIES: dict[str, QuerySpec] = {}


def _register(spec: QuerySpec) -> None:
    XMARK_QUERIES[spec.name] = spec


_register(QuerySpec(
    name="XM1",
    query='for $b in /site/people/person[@id="person0"] return $b/name/text()',
    projection_paths=(
        "/site/people/person/name#",
        "/site/people/person",
    ),
    xpath="/site/people/person/name",
    description="Name of the person with a given id.",
))

_register(QuerySpec(
    name="XM2",
    query="for $b in /site/open_auctions/open_auction return <increase>{$b/bidder[1]/increase/text()}</increase>",
    projection_paths=(
        "/site/open_auctions/open_auction/bidder/increase#",
        "/site/open_auctions/open_auction",
    ),
    xpath="/site/open_auctions/open_auction/bidder/increase",
    description="Initial increases of all open auctions.",
))

_register(QuerySpec(
    name="XM3",
    query="auctions whose first bid doubled the initial increase",
    projection_paths=(
        "/site/open_auctions/open_auction/bidder/increase#",
        "/site/open_auctions/open_auction",
    ),
    xpath="/site/open_auctions/open_auction/bidder/increase",
    description="Same projection paths as XM2 (first vs. last bidder increase).",
))

_register(QuerySpec(
    name="XM4",
    query="auctions where a given person bid before another",
    projection_paths=(
        "/site/open_auctions/open_auction/bidder/personref#",
        "/site/open_auctions/open_auction/reserve#",
        "/site/open_auctions/open_auction",
    ),
    xpath="/site/open_auctions/open_auction/reserve",
    description="Bidder order within open auctions.",
))

_register(QuerySpec(
    name="XM5",
    query="count sold items with price >= 40",
    projection_paths=(
        "/site/closed_auctions/closed_auction/price#",
    ),
    xpath="/site/closed_auctions/closed_auction/price",
    description="Prices of closed auctions.",
))

_register(QuerySpec(
    name="XM6",
    query="count all items listed in any region",
    projection_paths=(
        "/site/regions//item",
    ),
    xpath="//regions//item/name",
    description="Structural count of items; no subtrees required.",
))

_register(QuerySpec(
    name="XM7",
    query="count pieces of prose (descriptions, annotations, emails)",
    projection_paths=(
        "//description",
        "//annotation",
        "//emailaddress",
    ),
    xpath="//description/text",
    description="Counts of prose elements across the document.",
))

_register(QuerySpec(
    name="XM8",
    query="how many items did each person buy",
    projection_paths=(
        "/site/closed_auctions/closed_auction/buyer#",
        "/site/people/person/name#",
        "/site/people/person",
    ),
    xpath="/site/people/person/name",
    description="Join of people with the auctions they won.",
))

_register(QuerySpec(
    name="XM9",
    query="names of items each person bought in Europe",
    projection_paths=(
        "/site/closed_auctions/closed_auction/buyer#",
        "/site/closed_auctions/closed_auction/itemref#",
        "/site/regions/europe/item/name#",
        "/site/regions/europe/item",
        "/site/people/person/name#",
        "/site/people/person",
    ),
    xpath="/site/regions/europe/item/name",
    description="Three-way join: people, closed auctions, European items.",
))

_register(QuerySpec(
    name="XM10",
    query="group people by their interests, listing full profiles",
    projection_paths=(
        "/site/people/person#",
        "/site/categories/category/name#",
    ),
    xpath="/site/people/person/profile",
    description="Large restructuring query over complete person records.",
))

_register(QuerySpec(
    name="XM11",
    query="for each person, number of items currently on sale whose price is below the person's income",
    projection_paths=(
        "/site/people/person/name#",
        "/site/people/person/profile#",
        "/site/open_auctions/open_auction/initial#",
        "/site/people/person",
        "/site/open_auctions/open_auction",
    ),
    xpath="/site/open_auctions/open_auction/initial",
    description="Value join between incomes and auction initial prices.",
))

_register(QuerySpec(
    name="XM12",
    query="like XM11 but restricted to persons with income above 50000",
    projection_paths=(
        "/site/people/person/name#",
        "/site/people/person/profile#",
        "/site/open_auctions/open_auction/initial#",
        "/site/people/person",
    ),
    xpath="/site/open_auctions/open_auction/initial",
    description="Filtered variant of XM11.",
))

_register(QuerySpec(
    name="XM13",
    query='for $i in /site/regions/australia/item return <item name="{$i/name/text()}">{$i/description}</item>',
    projection_paths=(
        "/site/regions/australia/item/name#",
        "/site/regions/australia/item/description#",
        "/site/regions/australia/item",
    ),
    xpath="/site/regions/australia/item/description",
    description="The paper's Example 4: names and descriptions of Australian items.",
))

_register(QuerySpec(
    name="XM14",
    query="items whose description contains the word 'gold'",
    projection_paths=(
        "//item/name#",
        "//item/description#",
        "//item",
    ),
    xpath="//item/description",
    description="Full-text scan over all item descriptions (largest projection).",
))

_register(QuerySpec(
    name="XM17",
    query="which persons do not have a homepage",
    projection_paths=(
        "/site/people/person/name#",
        "/site/people/person/homepage",
        "/site/people/person",
    ),
    xpath="/site/people/person/name",
    description="Anti-join on an optional element.",
))

_register(QuerySpec(
    name="XM18",
    query="convert all open auction current prices with a user-defined function",
    projection_paths=(
        "/site/open_auctions/open_auction/reserve#",
    ),
    xpath="/site/open_auctions/open_auction/reserve",
    description="Single numeric field of open auctions.",
))

_register(QuerySpec(
    name="XM19",
    query="give an alphabetically ordered list of all items with their location",
    projection_paths=(
        "/site/regions//item/name#",
        "/site/regions//item/location#",
        "/site/regions//item",
    ),
    xpath="/site/regions//item/location",
    description="Names and locations of all items, ordered.",
))

_register(QuerySpec(
    name="XM20",
    query="group customers by income brackets",
    projection_paths=(
        "/site/people/person/profile#",
        "/site/people/person",
    ),
    xpath="/site/people/person/profile",
    description="Profiles of all people for income bucketing.",
))

#: Query identifiers in the order of Table I.
XMARK_QUERY_ORDER: tuple[str, ...] = (
    "XM1", "XM2", "XM3", "XM4", "XM5", "XM6", "XM7", "XM8", "XM9",
    "XM10", "XM11", "XM12", "XM13", "XM14", "XM17", "XM18", "XM19", "XM20",
)

#: The subset of queries compared against Type-Based Projection in Table III.
TBP_COMPARISON_QUERIES: tuple[str, ...] = ("XM3", "XM6", "XM7", "XM19")


def xmark_query(name: str) -> QuerySpec:
    """Look up a query spec by its Table I identifier."""
    return XMARK_QUERIES[name]
