"""The non-recursive XMark-like DTD used by the experiments.

The original XMark DTD allows recursive parlists inside item descriptions;
the paper modifies it ("We modified the DTD accordingly") because SMP's
static analysis requires a non-recursive schema.  We apply the same
modification: ``description`` contains a single flat ``text`` element.

The schema keeps the characteristic feature mix of XMark that the paper's
experiments exercise: six regional item lists, auctions referencing people
and items, element names that occur in several contexts (``name``,
``description``, ``date``, ``quantity``) and required attributes
(``incategory/@category``, id attributes) that feed the initial-jump offsets.
"""

from __future__ import annotations

from repro.dtd.model import Dtd

XMARK_DTD_TEXT = """
<!DOCTYPE site [
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ATTLIST item id ID #REQUIRED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT description (text)>
<!ELEMENT text (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ATTLIST incategory category IDREF #REQUIRED>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT categories (category+)>
<!ELEMENT category (name, description)>
<!ATTLIST category id ID #REQUIRED>
<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ATTLIST edge from IDREF #REQUIRED>
<!ATTLIST edge to IDREF #REQUIRED>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ATTLIST person id ID #REQUIRED>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, province?, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT province (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ATTLIST profile income CDATA #IMPLIED>
<!ELEMENT interest EMPTY>
<!ATTLIST interest category IDREF #REQUIRED>
<!ELEMENT education (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ATTLIST watch open_auction IDREF #REQUIRED>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ATTLIST open_auction id ID #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT personref EMPTY>
<!ATTLIST personref person IDREF #REQUIRED>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ATTLIST itemref item IDREF #REQUIRED>
<!ELEMENT seller EMPTY>
<!ATTLIST seller person IDREF #REQUIRED>
<!ELEMENT annotation (author, description, happiness)>
<!ELEMENT author EMPTY>
<!ATTLIST author person IDREF #REQUIRED>
<!ELEMENT happiness (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation)>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer person IDREF #REQUIRED>
<!ELEMENT price (#PCDATA)>
]>
"""


def xmark_dtd() -> Dtd:
    """Parse and return the XMark-like DTD."""
    return Dtd.parse(XMARK_DTD_TEXT)
