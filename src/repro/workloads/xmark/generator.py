"""Deterministic synthetic XMark-like document generator.

The generator stands in for the XMark ``xmlgen`` tool (the paper benchmarks
10 MB to 5 GB XMark documents).  It produces documents that are valid with
respect to :data:`repro.workloads.xmark.dtd.XMARK_DTD_TEXT`, with the same
qualitative mix as XMark: six regional item lists, a people directory,
open and closed auctions, cross references via id attributes, and free-text
descriptions.  The output is fully deterministic for a given ``(scale,
seed)`` pair so benchmark runs are reproducible.

``scale=1.0`` yields a document of roughly 1 MB; size grows linearly with
the scale factor (as it does for XMark's own scale factor).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

_WORDS = (
    "gold", "silver", "vintage", "portable", "compact", "wireless", "classic",
    "ceramic", "leather", "crystal", "antique", "digital", "analog", "hand",
    "crafted", "limited", "edition", "premium", "rugged", "lightweight",
    "ergonomic", "professional", "studio", "travel", "garden", "kitchen",
    "outdoor", "waterproof", "solar", "rechargeable", "collector", "series",
)

_FIRST_NAMES = (
    "Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Leslie", "John",
    "Tim", "Radia", "Frances", "Niklaus", "Dennis", "Ken", "Bjarne", "Guido",
)

_LAST_NAMES = (
    "Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth", "Lamport",
    "Backus", "BernersLee", "Perlman", "Allen", "Wirth", "Ritchie", "Thompson",
)

_CITIES = (
    "Cairo", "Nairobi", "Tokyo", "Singapore", "Sydney", "Perth", "Berlin",
    "Madrid", "Boston", "Toronto", "Lima", "Santiago", "Helsinki", "Vienna",
)

_COUNTRIES = (
    "Egypt", "Kenya", "Japan", "Singapore", "Australia", "Germany", "Spain",
    "United States", "Canada", "Peru", "Chile", "Finland", "Austria",
)

_PAYMENTS = ("Creditcard", "Cash", "Money order", "Personal Check")
_EDUCATION = ("High School", "College", "Graduate School", "Other")
_HAPPINESS = tuple(str(value) for value in range(1, 11))


@dataclass(frozen=True)
class XmarkProfile:
    """Cardinalities derived from the scale factor (per scale unit)."""

    items_per_region: int = 155
    categories: int = 100
    people: int = 350
    open_auctions: int = 170
    closed_auctions: int = 130

    def scaled(self, scale: float) -> "XmarkProfile":
        """Scale all cardinalities, keeping at least one of everything."""
        def at_least_one(value: float) -> int:
            return max(1, int(round(value)))

        return XmarkProfile(
            items_per_region=at_least_one(self.items_per_region * scale),
            categories=at_least_one(self.categories * scale),
            people=at_least_one(self.people * scale),
            open_auctions=at_least_one(self.open_auctions * scale),
            closed_auctions=at_least_one(self.closed_auctions * scale),
        )


class XmarkGenerator:
    """Generate XMark-like documents as XML text."""

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.profile = XmarkProfile().scaled(scale)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> str:
        """Generate the document text."""
        rng = random.Random(self.seed)
        pieces: list[str] = ["<site>"]
        item_ids = self._append_regions(pieces, rng)
        category_ids = self._append_categories(pieces, rng)
        self._append_catgraph(pieces, rng, category_ids)
        person_ids = self._append_people(pieces, rng, category_ids)
        open_ids = self._append_open_auctions(pieces, rng, item_ids, person_ids)
        self._append_closed_auctions(pieces, rng, item_ids, person_ids)
        del open_ids
        pieces.append("</site>")
        return "".join(pieces)

    # ------------------------------------------------------------------
    # Sections
    # ------------------------------------------------------------------
    def _append_regions(self, pieces: list[str], rng: random.Random) -> list[str]:
        item_ids: list[str] = []
        pieces.append("<regions>")
        serial = 0
        for region in _REGIONS:
            pieces.append(f"<{region}>")
            for _ in range(self.profile.items_per_region):
                item_id = f"item{serial}"
                serial += 1
                item_ids.append(item_id)
                pieces.append(self._item(rng, item_id))
            pieces.append(f"</{region}>")
        pieces.append("</regions>")
        return item_ids

    def _item(self, rng: random.Random, item_id: str) -> str:
        name = self._phrase(rng, 2, 4).title()
        description = self._sentence(rng, 12, 30)
        mails = "".join(self._mail(rng) for _ in range(rng.randint(0, 2)))
        categories = "".join(
            f'<incategory category="category{rng.randint(0, max(0, self.profile.categories - 1))}"/>'
            for _ in range(rng.randint(1, 3))
        )
        return (
            f'<item id="{item_id}">'
            f"<location>{rng.choice(_COUNTRIES)}</location>"
            f"<quantity>{rng.randint(1, 5)}</quantity>"
            f"<name>{name}</name>"
            f"<payment>{rng.choice(_PAYMENTS)}</payment>"
            f"<description><text>{description}</text></description>"
            f"<shipping>Will ship internationally, {rng.choice(_WORDS)} packaging</shipping>"
            f"{categories}"
            f"<mailbox>{mails}</mailbox>"
            "</item>"
        )

    def _mail(self, rng: random.Random) -> str:
        return (
            "<mail>"
            f"<from>{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}</from>"
            f"<to>{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}</to>"
            f"<date>{self._date(rng)}</date>"
            f"<text>{self._sentence(rng, 8, 20)}</text>"
            "</mail>"
        )

    def _append_categories(self, pieces: list[str], rng: random.Random) -> list[str]:
        category_ids: list[str] = []
        pieces.append("<categories>")
        for index in range(self.profile.categories):
            category_id = f"category{index}"
            category_ids.append(category_id)
            pieces.append(
                f'<category id="{category_id}">'
                f"<name>{self._phrase(rng, 1, 3).title()}</name>"
                f"<description><text>{self._sentence(rng, 6, 14)}</text></description>"
                "</category>"
            )
        pieces.append("</categories>")
        return category_ids

    def _append_catgraph(
        self, pieces: list[str], rng: random.Random, category_ids: list[str]
    ) -> None:
        pieces.append("<catgraph>")
        for _ in range(max(1, len(category_ids) // 2)):
            source = rng.choice(category_ids)
            target = rng.choice(category_ids)
            pieces.append(f'<edge from="{source}" to="{target}"/>')
        pieces.append("</catgraph>")

    def _append_people(
        self, pieces: list[str], rng: random.Random, category_ids: list[str]
    ) -> list[str]:
        person_ids: list[str] = []
        pieces.append("<people>")
        for index in range(self.profile.people):
            person_id = f"person{index}"
            person_ids.append(person_id)
            first = rng.choice(_FIRST_NAMES)
            last = rng.choice(_LAST_NAMES)
            optional: list[str] = []
            if rng.random() < 0.6:
                optional.append(f"<phone>+{rng.randint(1, 99)} {rng.randint(1000000, 9999999)}</phone>")
            if rng.random() < 0.7:
                province = (
                    f"<province>{rng.choice(_CITIES)}</province>" if rng.random() < 0.3 else ""
                )
                optional.append(
                    "<address>"
                    f"<street>{rng.randint(1, 99)} {rng.choice(_WORDS).title()} St</street>"
                    f"<city>{rng.choice(_CITIES)}</city>"
                    f"<country>{rng.choice(_COUNTRIES)}</country>"
                    f"{province}"
                    f"<zipcode>{rng.randint(10000, 99999)}</zipcode>"
                    "</address>"
                )
            if rng.random() < 0.5:
                optional.append(f"<homepage>http://www.example.org/~{last.lower()}{index}</homepage>")
            if rng.random() < 0.5:
                optional.append(f"<creditcard>{rng.randint(1000, 9999)} {rng.randint(1000, 9999)}</creditcard>")
            if rng.random() < 0.75:
                interests = "".join(
                    f'<interest category="{rng.choice(category_ids)}"/>'
                    for _ in range(rng.randint(0, 3))
                )
                income = f' income="{rng.randint(9876, 99999)}.{rng.randint(10, 99)}"' if rng.random() < 0.8 else ""
                education = (
                    f"<education>{rng.choice(_EDUCATION)}</education>" if rng.random() < 0.6 else ""
                )
                gender = f"<gender>{rng.choice(('male', 'female'))}</gender>" if rng.random() < 0.7 else ""
                age = f"<age>{rng.randint(18, 80)}</age>" if rng.random() < 0.5 else ""
                optional.append(
                    f"<profile{income}>{interests}{education}{gender}"
                    f"<business>{rng.choice(('Yes', 'No'))}</business>{age}</profile>"
                )
            if rng.random() < 0.5:
                watches = "".join(
                    f'<watch open_auction="openauction{rng.randint(0, max(0, self.profile.open_auctions - 1))}"/>'
                    for _ in range(rng.randint(0, 3))
                )
                optional.append(f"<watches>{watches}</watches>")
            pieces.append(
                f'<person id="{person_id}">'
                f"<name>{first} {last}</name>"
                f"<emailaddress>mailto:{first.lower()}.{last.lower()}@example.org</emailaddress>"
                f"{''.join(optional)}"
                "</person>"
            )
        pieces.append("</people>")
        return person_ids

    def _append_open_auctions(
        self,
        pieces: list[str],
        rng: random.Random,
        item_ids: list[str],
        person_ids: list[str],
    ) -> list[str]:
        auction_ids: list[str] = []
        pieces.append("<open_auctions>")
        for index in range(self.profile.open_auctions):
            auction_id = f"openauction{index}"
            auction_ids.append(auction_id)
            bidders = "".join(self._bidder(rng, person_ids) for _ in range(rng.randint(0, 4)))
            reserve = (
                f"<reserve>{rng.randint(20, 300)}.{rng.randint(10, 99)}</reserve>"
                if rng.random() < 0.4
                else ""
            )
            privacy = "<privacy>Yes</privacy>" if rng.random() < 0.2 else ""
            pieces.append(
                f'<open_auction id="{auction_id}">'
                f"<initial>{rng.randint(1, 100)}.{rng.randint(10, 99)}</initial>"
                f"{reserve}"
                f"{bidders}"
                f"<current>{rng.randint(100, 900)}.{rng.randint(10, 99)}</current>"
                f"{privacy}"
                f'<itemref item="{rng.choice(item_ids)}"/>'
                f'<seller person="{rng.choice(person_ids)}"/>'
                f"{self._annotation(rng, person_ids)}"
                f"<quantity>{rng.randint(1, 3)}</quantity>"
                f"<type>{rng.choice(('Regular', 'Featured'))}</type>"
                f"<interval><start>{self._date(rng)}</start><end>{self._date(rng)}</end></interval>"
                "</open_auction>"
            )
        pieces.append("</open_auctions>")
        return auction_ids

    def _append_closed_auctions(
        self,
        pieces: list[str],
        rng: random.Random,
        item_ids: list[str],
        person_ids: list[str],
    ) -> None:
        pieces.append("<closed_auctions>")
        for _ in range(self.profile.closed_auctions):
            pieces.append(
                "<closed_auction>"
                f'<seller person="{rng.choice(person_ids)}"/>'
                f'<buyer person="{rng.choice(person_ids)}"/>'
                f'<itemref item="{rng.choice(item_ids)}"/>'
                f"<price>{rng.randint(10, 999)}.{rng.randint(10, 99)}</price>"
                f"<date>{self._date(rng)}</date>"
                f"<quantity>{rng.randint(1, 3)}</quantity>"
                f"<type>{rng.choice(('Regular', 'Featured'))}</type>"
                f"{self._annotation(rng, person_ids)}"
                "</closed_auction>"
            )
        pieces.append("</closed_auctions>")

    def _annotation(self, rng: random.Random, person_ids: list[str]) -> str:
        return (
            "<annotation>"
            f'<author person="{rng.choice(person_ids)}"/>'
            f"<description><text>{self._sentence(rng, 10, 24)}</text></description>"
            f"<happiness>{rng.choice(_HAPPINESS)}</happiness>"
            "</annotation>"
        )

    def _bidder(self, rng: random.Random, person_ids: list[str]) -> str:
        return (
            "<bidder>"
            f"<date>{self._date(rng)}</date>"
            f"<time>{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}</time>"
            f'<personref person="{rng.choice(person_ids)}"/>'
            f"<increase>{rng.randint(1, 50)}.{rng.randint(10, 99)}</increase>"
            "</bidder>"
        )

    # ------------------------------------------------------------------
    # Text helpers
    # ------------------------------------------------------------------
    def _phrase(self, rng: random.Random, low: int, high: int) -> str:
        return " ".join(rng.choice(_WORDS) for _ in range(rng.randint(low, high)))

    def _sentence(self, rng: random.Random, low: int, high: int) -> str:
        return self._phrase(rng, low, high) + "."

    def _date(self, rng: random.Random) -> str:
        return f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/{rng.randint(1999, 2007)}"


def generate_xmark_document(scale: float = 1.0, seed: int = 42) -> str:
    """Generate an XMark-like document of roughly ``scale`` megabytes."""
    return XmarkGenerator(scale=scale, seed=seed).generate()


def generate_xmark_document_of_size(target_bytes: int, seed: int = 42) -> str:
    """Generate a document whose size is close to ``target_bytes``.

    The generator's output grows linearly with the scale factor, so a single
    calibration run at a small scale suffices to hit the target within a few
    percent.
    """
    if target_bytes <= 0:
        raise WorkloadError("target_bytes must be positive")
    probe_scale = 0.25
    probe = XmarkGenerator(scale=probe_scale, seed=seed).generate()
    bytes_per_scale = max(1.0, len(probe) / probe_scale)
    scale = max(target_bytes / bytes_per_scale, 0.01)
    return XmarkGenerator(scale=scale, seed=seed).generate()
