"""Synthetic XMark workload: DTD, generator, query specifications."""

from repro.workloads.xmark.dtd import XMARK_DTD_TEXT, xmark_dtd
from repro.workloads.xmark.generator import (
    XmarkGenerator,
    XmarkProfile,
    generate_xmark_document,
    generate_xmark_document_of_size,
)
from repro.workloads.xmark.queries import (
    TBP_COMPARISON_QUERIES,
    XMARK_QUERIES,
    XMARK_QUERY_ORDER,
    xmark_query,
)

__all__ = [
    "TBP_COMPARISON_QUERIES",
    "XMARK_DTD_TEXT",
    "XMARK_QUERIES",
    "XMARK_QUERY_ORDER",
    "XmarkGenerator",
    "XmarkProfile",
    "generate_xmark_document",
    "generate_xmark_document_of_size",
    "xmark_dtd",
    "xmark_query",
]
