"""Synthetic experimental workloads (XMark-like and MEDLINE-like)."""

from repro.workloads.datasets import (
    DEFAULT_DOCUMENT_BYTES,
    DatasetSpec,
    clear_caches,
    default_document_bytes,
    load_dataset,
)

__all__ = [
    "DEFAULT_DOCUMENT_BYTES",
    "DatasetSpec",
    "clear_caches",
    "default_document_bytes",
    "load_dataset",
]
