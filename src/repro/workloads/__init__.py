"""Synthetic experimental workloads: builtin corpora and the generator.

Builtin (XMark-like, MEDLINE-like) corpora load through
:func:`load_dataset`; the generator subsystem (:mod:`.schema`,
:mod:`.generate`, :mod:`.queries`, :mod:`.json_records`,
:mod:`.fuzz`) builds seed-deterministic corpora with matched query sets.
:func:`get` addresses both families uniformly (``"xmark"`` vs
``"gen:depth=12,fanout=4,seed=7"`` vs ``"json:records=8"``).
"""

from repro.workloads.datasets import (
    DEFAULT_DOCUMENT_BYTES,
    DatasetSpec,
    clear_caches,
    default_document_bytes,
    load_dataset,
)
from repro.workloads.registry import Workload, get

__all__ = [
    "DEFAULT_DOCUMENT_BYTES",
    "DatasetSpec",
    "Workload",
    "clear_caches",
    "default_document_bytes",
    "get",
    "load_dataset",
]
