"""The MEDLINE XPath workload M1-M5 of Table II.

The queries are the paper's Table II expressions verbatim; the projection
paths are obtained with :func:`repro.projection.extraction.extract_paths_from_xpath`,
i.e. the spine (flagged) plus the predicate paths (flagged) plus ``/*``.
"""

from __future__ import annotations

from repro.projection.extraction import QuerySpec, spec_from_xpath

_M_QUERIES: tuple[tuple[str, str, str], ...] = (
    (
        "M1",
        "/MedlineCitationSet//CollectionTitle",
        "An element declared in the DTD that never occurs in the data.",
    ),
    (
        "M2",
        '/MedlineCitationSet//DataBank[DataBankName/text()="PDB"]/AccessionNumberList',
        "Accession numbers of PDB data banks (rare records, selective predicate).",
    ),
    (
        "M3",
        "/MedlineCitationSet//PersonalNameSubjectList/PersonalNameSubject["
        'LastName/text()="Hippocrates" or DatesAssociatedWithName="Oct2006"]'
        "/TitleAssociatedWithName",
        "Titles associated with specific personal-name subjects (disjunctive predicate).",
    ),
    (
        "M4",
        '/MedlineCitationSet//CopyrightInformation[contains(text(),"NASA")]',
        "Copyright notes mentioning NASA (contains() over text content).",
    ),
    (
        "M5",
        "/MedlineCitationSet/MedlineCitation["
        'contains(MedlineJournalInfo//text(),"Sterilization")]/DateCompleted',
        "Completion dates of citations whose journal info mentions sterilization.",
    ),
)

MEDLINE_QUERIES: dict[str, QuerySpec] = {
    name: spec_from_xpath(name, query, description)
    for name, query, description in _M_QUERIES
}

#: Query identifiers in the order of Table II.
MEDLINE_QUERY_ORDER: tuple[str, ...] = ("M1", "M2", "M3", "M4", "M5")


def medline_query(name: str) -> QuerySpec:
    """Look up a query spec by its Table II identifier."""
    return MEDLINE_QUERIES[name]
