"""Deterministic synthetic MEDLINE-like document generator.

Stands in for the 656 MB MEDLINE citation dump of Table II.  The generator
produces a ``MedlineCitationSet`` of citation records valid with respect to
:data:`repro.workloads.medline.dtd.MEDLINE_DTD_TEXT`, with selectivities
chosen so the M1-M5 queries behave as in the paper:

* ``CollectionTitle`` never occurs (M1 projects to an empty document),
* ``DataBankList`` / ``PersonalNameSubjectList`` are rare, and the specific
  values the M2 / M3 predicates look for ("PDB", "Hippocrates", "Oct2006")
  occur in a small fraction of those records,
* ``CopyrightInformation`` occasionally mentions "NASA" (M4),
* ``MedlineJournalInfo`` rarely mentions "Sterilization" (M5), while
  ``DateCompleted`` is present for most citations, so the M5 projection is
  comparatively large - mirroring the 47.4 MB of Table II.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError

_JOURNAL_TITLES = (
    "Journal of Synthetic Data", "Annals of Reproducible Research",
    "Archives of Experimental Informatics", "Clinical Benchmarking Letters",
    "International Review of Stream Processing", "Acta Simulata",
)

_MEDICAL_WORDS = (
    "analysis", "clinical", "randomized", "cohort", "protein", "sequence",
    "therapy", "diagnosis", "treatment", "receptor", "antibody", "enzyme",
    "infection", "chronic", "acute", "syndrome", "pathology", "genome",
    "expression", "regulation", "metabolism", "inflammation", "screening",
)

_LAST_NAMES = (
    "Smith", "Nguyen", "Garcia", "Kim", "Patel", "Mueller", "Rossi", "Sato",
    "Kowalski", "Johnson", "Hippocrates", "Andersson", "Silva", "Haddad",
)

_FORE_NAMES = (
    "Alex", "Maria", "Chen", "Priya", "Lars", "Giulia", "Yuki", "Anna",
    "Omar", "Lucia", "Pavel", "Ingrid",
)

_COUNTRIES = (
    "United States", "Germany", "Japan", "Brazil", "India", "Sweden",
    "Egypt", "Australia", "Canada", "France",
)

_DATABANKS = ("GENBANK", "PDB", "SWISSPROT", "OMIM", "PIR")


class MedlineGenerator:
    """Generate MEDLINE-like citation sets as XML text."""

    def __init__(self, citations: int = 2000, seed: int = 7) -> None:
        if citations <= 0:
            raise WorkloadError("citations must be positive")
        self.citations = citations
        self.seed = seed

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> str:
        """Generate the document text."""
        rng = random.Random(self.seed)
        pieces: list[str] = ["<MedlineCitationSet>"]
        for index in range(self.citations):
            pieces.append(self._citation(rng, index))
        pieces.append("</MedlineCitationSet>")
        return "".join(pieces)

    # ------------------------------------------------------------------
    # Record parts
    # ------------------------------------------------------------------
    def _citation(self, rng: random.Random, index: int) -> str:
        optional: list[str] = []
        date_completed = (
            f"<DateCompleted>{self._date(rng)}</DateCompleted>" if rng.random() < 0.85 else ""
        )
        if rng.random() < 0.55:
            optional.append(self._chemical_list(rng))
        if rng.random() < 0.7:
            optional.append(self._mesh_list(rng))
        if rng.random() < 0.04:
            optional.append(self._databank_list(rng))
        if rng.random() < 0.03:
            optional.append(self._personal_name_subjects(rng))
        if rng.random() < 0.1:
            optional.append(f"<GeneralNote>{self._sentence(rng, 6, 14)}</GeneralNote>")
        return (
            f'<MedlineCitation Status="{rng.choice(("MEDLINE", "In-Process"))}">'
            f"<PMID>{10_000_000 + index}</PMID>"
            f"<DateCreated>{self._date(rng)}</DateCreated>"
            f"{date_completed}"
            f"{self._article(rng)}"
            f"{self._journal_info(rng)}"
            f"{''.join(optional)}"
            "</MedlineCitation>"
        )

    def _article(self, rng: random.Random) -> str:
        abstract = ""
        if rng.random() < 0.8:
            copyright_info = ""
            if rng.random() < 0.3:
                holder = "NASA" if rng.random() < 0.05 else "Elsevier"
                copyright_info = (
                    f"<CopyrightInformation>Copyright {rng.randint(1995, 2006)} "
                    f"{holder}. All rights reserved.</CopyrightInformation>"
                )
            abstract = (
                f"<Abstract><AbstractText>{self._sentence(rng, 40, 120)}</AbstractText>"
                f"{copyright_info}</Abstract>"
            )
        pagination = (
            f"<Pagination><MedlinePgn>{rng.randint(1, 900)}-{rng.randint(901, 1400)}</MedlinePgn></Pagination>"
            if rng.random() < 0.8
            else ""
        )
        affiliation = (
            f"<Affiliation>Department of {rng.choice(_MEDICAL_WORDS).title()}, "
            f"{rng.choice(_COUNTRIES)}</Affiliation>"
            if rng.random() < 0.6
            else ""
        )
        authors = self._author_list(rng) if rng.random() < 0.95 else ""
        publication_types = (
            "<PublicationTypeList>"
            + "".join(
                f"<PublicationType>{kind}</PublicationType>"
                for kind in rng.sample(("Journal Article", "Review", "Clinical Trial", "Letter"),
                                       k=rng.randint(1, 2))
            )
            + "</PublicationTypeList>"
            if rng.random() < 0.8
            else ""
        )
        return (
            "<Article>"
            f"{self._journal(rng)}"
            f"<ArticleTitle>{self._sentence(rng, 8, 18).title()}</ArticleTitle>"
            f"{pagination}"
            f"{abstract}"
            f"{affiliation}"
            f"{authors}"
            f"<Language>{rng.choice(('eng', 'ger', 'fre', 'jpn'))}</Language>"
            f"{publication_types}"
            "</Article>"
        )

    def _journal(self, rng: random.Random) -> str:
        issn = f"<ISSN>{rng.randint(1000, 9999)}-{rng.randint(1000, 9999)}</ISSN>" if rng.random() < 0.8 else ""
        volume = f"<Volume>{rng.randint(1, 120)}</Volume>" if rng.random() < 0.9 else ""
        issue = f"<Issue>{rng.randint(1, 12)}</Issue>" if rng.random() < 0.8 else ""
        title = rng.choice(_JOURNAL_TITLES)
        iso = f"<ISOAbbreviation>{''.join(word[0] for word in title.split())}.</ISOAbbreviation>"
        return (
            "<Journal>"
            f"{issn}"
            f"<JournalIssue>{volume}{issue}<PubDate>{self._date(rng, month_optional=True)}</PubDate></JournalIssue>"
            f"<Title>{title}</Title>"
            f"{iso}"
            "</Journal>"
        )

    def _author_list(self, rng: random.Random) -> str:
        authors = []
        for _ in range(rng.randint(1, 6)):
            fore = rng.choice(_FORE_NAMES)
            last = rng.choice(_LAST_NAMES)
            initials = f"<Initials>{fore[0]}</Initials>"
            authors.append(
                f"<Author><LastName>{last}</LastName><ForeName>{fore}</ForeName>{initials}</Author>"
            )
        return f'<AuthorList CompleteYN="Y">{"".join(authors)}</AuthorList>'

    def _journal_info(self, rng: random.Random) -> str:
        country = f"<Country>{rng.choice(_COUNTRIES)}</Country>" if rng.random() < 0.9 else ""
        topic = "Sterilization" if rng.random() < 0.02 else rng.choice(_MEDICAL_WORDS).title()
        return (
            "<MedlineJournalInfo>"
            f"{country}"
            f"<MedlineTA>{topic} research abstracts</MedlineTA>"
            f"<NlmUniqueID>{rng.randint(100000, 999999)}</NlmUniqueID>"
            "</MedlineJournalInfo>"
        )

    def _chemical_list(self, rng: random.Random) -> str:
        chemicals = "".join(
            "<Chemical>"
            f"<RegistryNumber>{rng.randint(0, 99999)}-{rng.randint(10, 99)}-{rng.randint(0, 9)}</RegistryNumber>"
            f"<NameOfSubstance>{rng.choice(_MEDICAL_WORDS).title()} {rng.choice(_MEDICAL_WORDS)}</NameOfSubstance>"
            "</Chemical>"
            for _ in range(rng.randint(1, 4))
        )
        return f"<ChemicalList>{chemicals}</ChemicalList>"

    def _mesh_list(self, rng: random.Random) -> str:
        headings = "".join(
            "<MeshHeading>"
            f"<DescriptorName>{rng.choice(_MEDICAL_WORDS).title()}</DescriptorName>"
            + "".join(
                f"<QualifierName>{rng.choice(_MEDICAL_WORDS)}</QualifierName>"
                for _ in range(rng.randint(0, 2))
            )
            + "</MeshHeading>"
            for _ in range(rng.randint(1, 6))
        )
        return f"<MeshHeadingList>{headings}</MeshHeadingList>"

    def _databank_list(self, rng: random.Random) -> str:
        banks = []
        for _ in range(rng.randint(1, 2)):
            name = rng.choice(_DATABANKS)
            accessions = "".join(
                f"<AccessionNumber>{name[:2]}{rng.randint(10000, 99999)}</AccessionNumber>"
                for _ in range(rng.randint(1, 3))
            )
            banks.append(
                f"<DataBank><DataBankName>{name}</DataBankName>"
                f"<AccessionNumberList>{accessions}</AccessionNumberList></DataBank>"
            )
        return f"<DataBankList>{''.join(banks)}</DataBankList>"

    def _personal_name_subjects(self, rng: random.Random) -> str:
        subjects = []
        for _ in range(rng.randint(1, 2)):
            last = "Hippocrates" if rng.random() < 0.2 else rng.choice(_LAST_NAMES)
            if rng.random() < 0.3:
                date_text = "Oct2006"
            else:
                month = rng.choice(("Jan", "Mar", "May", "Jul", "Sep", "Nov"))
                date_text = f"{month}{rng.randint(1990, 2005)}"
            dates = f"<DatesAssociatedWithName>{date_text}</DatesAssociatedWithName>"
            title = (
                f"<TitleAssociatedWithName>{self._sentence(rng, 3, 7).title()}</TitleAssociatedWithName>"
                if rng.random() < 0.8
                else ""
            )
            subjects.append(
                "<PersonalNameSubject>"
                f"<LastName>{last}</LastName>"
                f"<ForeName>{rng.choice(_FORE_NAMES)}</ForeName>"
                f"{dates}{title}"
                "</PersonalNameSubject>"
            )
        return f"<PersonalNameSubjectList>{''.join(subjects)}</PersonalNameSubjectList>"

    # ------------------------------------------------------------------
    # Text helpers
    # ------------------------------------------------------------------
    def _sentence(self, rng: random.Random, low: int, high: int) -> str:
        return " ".join(rng.choice(_MEDICAL_WORDS) for _ in range(rng.randint(low, high))) + "."

    def _date(self, rng: random.Random, month_optional: bool = False) -> str:
        year = f"<Year>{rng.randint(1990, 2006)}</Year>"
        if month_optional and rng.random() < 0.3:
            return year
        return (
            f"{year}<Month>{rng.randint(1, 12):02d}</Month><Day>{rng.randint(1, 28):02d}</Day>"
        )


def generate_medline_document(citations: int = 2000, seed: int = 7) -> str:
    """Generate a MEDLINE-like citation set with ``citations`` records."""
    return MedlineGenerator(citations=citations, seed=seed).generate()


def generate_medline_document_of_size(target_bytes: int, seed: int = 7) -> str:
    """Generate a citation set whose size is close to ``target_bytes``."""
    if target_bytes <= 0:
        raise WorkloadError("target_bytes must be positive")
    probe_count = 50
    probe = MedlineGenerator(citations=probe_count, seed=seed).generate()
    bytes_per_citation = max(1.0, len(probe) / probe_count)
    citations = max(1, int(target_bytes / bytes_per_citation))
    return MedlineGenerator(citations=citations, seed=seed).generate()
