"""A MEDLINE-like DTD with the features the paper's Table II exercises.

The real MEDLINE citation DTD is far larger; this schema keeps the parts the
M1-M5 queries touch plus the structural properties the paper highlights:

* long tag names (which enlarge Boyer-Moore shifts, see the Table II
  discussion of the average shift size),
* the ``Abstract`` / ``AbstractText`` tag-name prefix pair that requires the
  runtime's extra verification step (Section II), with
  ``Title`` / ``TitleAssociatedWithName`` as a second such pair,
* mostly *optional* elements, which is why the paper observes no useful
  initial jumps for M1-M4,
* rarely occurring record parts (``DataBankList``,
  ``PersonalNameSubjectList``) and one element that is declared but never
  generated (``CollectionTitle``), matching the paper's observation that M1
  produces an empty projection.
"""

from __future__ import annotations

from repro.dtd.model import Dtd

MEDLINE_DTD_TEXT = """
<!DOCTYPE MedlineCitationSet [
<!ELEMENT MedlineCitationSet (MedlineCitation*)>
<!ELEMENT MedlineCitation (PMID, DateCreated, DateCompleted?, Article,
                           MedlineJournalInfo, ChemicalList?, MeshHeadingList?,
                           DataBankList?, PersonalNameSubjectList?,
                           CollectionTitle?, GeneralNote*)>
<!ATTLIST MedlineCitation Status CDATA #REQUIRED>
<!ELEMENT PMID (#PCDATA)>
<!ELEMENT DateCreated (Year, Month, Day)>
<!ELEMENT DateCompleted (Year, Month, Day)>
<!ELEMENT Year (#PCDATA)>
<!ELEMENT Month (#PCDATA)>
<!ELEMENT Day (#PCDATA)>
<!ELEMENT Article (Journal, ArticleTitle, Pagination?, Abstract?, Affiliation?,
                   AuthorList?, Language, PublicationTypeList?)>
<!ELEMENT Journal (ISSN?, JournalIssue, Title, ISOAbbreviation?)>
<!ELEMENT ISSN (#PCDATA)>
<!ELEMENT JournalIssue (Volume?, Issue?, PubDate)>
<!ELEMENT Volume (#PCDATA)>
<!ELEMENT Issue (#PCDATA)>
<!ELEMENT PubDate (Year, Month?, Day?)>
<!ELEMENT Title (#PCDATA)>
<!ELEMENT ISOAbbreviation (#PCDATA)>
<!ELEMENT ArticleTitle (#PCDATA)>
<!ELEMENT Pagination (MedlinePgn)>
<!ELEMENT MedlinePgn (#PCDATA)>
<!ELEMENT Abstract (AbstractText, CopyrightInformation?)>
<!ELEMENT AbstractText (#PCDATA)>
<!ELEMENT CopyrightInformation (#PCDATA)>
<!ELEMENT Affiliation (#PCDATA)>
<!ELEMENT AuthorList (Author+)>
<!ATTLIST AuthorList CompleteYN CDATA #IMPLIED>
<!ELEMENT Author (LastName, ForeName?, Initials?)>
<!ELEMENT LastName (#PCDATA)>
<!ELEMENT ForeName (#PCDATA)>
<!ELEMENT Initials (#PCDATA)>
<!ELEMENT Language (#PCDATA)>
<!ELEMENT PublicationTypeList (PublicationType+)>
<!ELEMENT PublicationType (#PCDATA)>
<!ELEMENT MedlineJournalInfo (Country?, MedlineTA, NlmUniqueID?)>
<!ELEMENT Country (#PCDATA)>
<!ELEMENT MedlineTA (#PCDATA)>
<!ELEMENT NlmUniqueID (#PCDATA)>
<!ELEMENT ChemicalList (Chemical+)>
<!ELEMENT Chemical (RegistryNumber, NameOfSubstance)>
<!ELEMENT RegistryNumber (#PCDATA)>
<!ELEMENT NameOfSubstance (#PCDATA)>
<!ELEMENT MeshHeadingList (MeshHeading+)>
<!ELEMENT MeshHeading (DescriptorName, QualifierName*)>
<!ELEMENT DescriptorName (#PCDATA)>
<!ELEMENT QualifierName (#PCDATA)>
<!ELEMENT DataBankList (DataBank+)>
<!ELEMENT DataBank (DataBankName, AccessionNumberList?)>
<!ELEMENT DataBankName (#PCDATA)>
<!ELEMENT AccessionNumberList (AccessionNumber+)>
<!ELEMENT AccessionNumber (#PCDATA)>
<!ELEMENT PersonalNameSubjectList (PersonalNameSubject+)>
<!ELEMENT PersonalNameSubject (LastName, ForeName?, DatesAssociatedWithName?,
                               TitleAssociatedWithName?)>
<!ELEMENT DatesAssociatedWithName (#PCDATA)>
<!ELEMENT TitleAssociatedWithName (#PCDATA)>
<!ELEMENT CollectionTitle (#PCDATA)>
<!ELEMENT GeneralNote (#PCDATA)>
]>
"""


def medline_dtd() -> Dtd:
    """Parse and return the MEDLINE-like DTD."""
    return Dtd.parse(MEDLINE_DTD_TEXT)
