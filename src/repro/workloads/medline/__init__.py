"""Synthetic MEDLINE workload: DTD, generator, query specifications."""

from repro.workloads.medline.dtd import MEDLINE_DTD_TEXT, medline_dtd
from repro.workloads.medline.generator import (
    MedlineGenerator,
    generate_medline_document,
    generate_medline_document_of_size,
)
from repro.workloads.medline.queries import (
    MEDLINE_QUERIES,
    MEDLINE_QUERY_ORDER,
    medline_query,
)

__all__ = [
    "MEDLINE_DTD_TEXT",
    "MEDLINE_QUERIES",
    "MEDLINE_QUERY_ORDER",
    "MedlineGenerator",
    "generate_medline_document",
    "generate_medline_document_of_size",
    "medline_dtd",
    "medline_query",
]
