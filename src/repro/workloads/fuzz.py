"""Differential fuzzing across all execution paths of the engine.

The engine has four execution paths — whole-document, chunked (any split),
shared multi-query scan, and parallel corpus — times up to three token
delivery tiers (``pertoken``, ``batched``, ``accel``), and they must all
be byte-identical with equal statistics.  This driver turns the generator
subsystem into an automated equivalence obligation: every generated
(record, query) pair runs through the whole matrix and any disagreement is
reported with a seed-addressable repro line.

A *case* is fully determined by ``(scenario, case_seed)``: the scenario
names fixed schema/document/query parameters (deep unrolled recursion,
huge attributes, pathological keyword overlap, dense multi-byte UTF-8,
CDATA/comment/DOCTYPE markup, many-record corpora...), the case seed feeds
every RNG.  ``run_fuzz`` derives case seeds deterministically from the
master seed, so ``python -m repro fuzz --seed S --budget N`` is exactly
reproducible, and each reported divergence carries the one-case repro line
``python -m repro fuzz --only <scenario> --case-seed <case_seed>``.

Comparison contract (matching the repository's equivalence tests):

- whole vs chunked vs every delivery, single query: byte-identical output
  and an equal 11-field statistics tuple (:data:`STATS_FIELDS`);
- shared multi-query scan vs single-query search: byte-identical per-query
  output and equal *structural* statistics (:data:`STRUCTURAL_FIELDS`) —
  the shared scan pays character comparisons once on the scan, so the
  per-query matcher counters legitimately differ;
- sequential corpus vs ``Engine(mode="parallel")``: byte-identical
  per-query aggregate output and equal merged statistics, and the
  sequential aggregate must equal the concatenation of the per-record
  reference outputs.

``inject_seed`` deliberately corrupts the chunked view of the last record
(via :func:`repro.faults.flip_bits`) **without** touching the reference —
a known divergence that the driver must catch, used by the test suite to
prove the harness actually detects disagreements.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from random import Random

from repro.accel import accel_available
from repro.api import Engine, Query, Source
from repro.core.multi import MultiQueryEngine
from repro.core.prefilter import SmpPrefilter
from repro.errors import ReproError, WorkloadError
from repro.faults import flip_bits
from repro.workloads.generate import DocumentSpec, generate_records
from repro.workloads.queries import generate_queries
from repro.workloads.schema import SchemaSpec, build_schema, parse_kv

#: The full statistics tuple that must agree across chunkings and
#: deliveries of the same single-query run.
STATS_FIELDS = (
    "input_size", "output_size", "char_comparisons", "local_scan_chars",
    "shifts", "shift_total", "initial_jumps", "initial_jump_chars",
    "tokens_matched", "tokens_copied", "regions_copied",
)

#: The structural subset that must agree between the searching path and
#: the shared multi-query scan (whose per-query matcher counters are zero
#: because the scan pays them once).
STRUCTURAL_FIELDS = (
    "input_size", "output_size", "tokens_matched", "tokens_copied",
    "regions_copied", "initial_jumps", "initial_jump_chars",
    "local_scan_chars",
)

#: Adversarial chunk-split flavours.
CHUNK_FLAVORS = ("tiny", "midtag", "midutf8", "mixed")


@dataclass(frozen=True)
class Scenario:
    """One named point of the fuzz matrix (seedless; the case adds seeds)."""

    name: str
    schema: str          # SchemaSpec kv string, without seed
    document: str        # DocumentSpec kv string, without seed
    query_count: int
    flavors: tuple[str, ...]
    description: str


#: The scenario matrix.  Record sizes are deliberately small: the value of
#: a fuzz case is in its shape, and small records buy more (record, query)
#: pairs per CPU second.
SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario for scenario in (
        Scenario(
            "baseline", "depth=4,fanout=3", "records=4,record_bytes=600",
            6, ("tiny", "midtag", "mixed"),
            "Moderate tree, all query families.",
        ),
        Scenario(
            "deep", "depth=12,fanout=2,chain=8",
            "records=3,record_bytes=800",
            6, ("tiny", "midtag"),
            "Deep nesting plus an unrolled-recursion chain.",
        ),
        Scenario(
            "wide", "depth=3,fanout=7", "records=3,record_bytes=800",
            6, ("tiny", "midtag"),
            "Shallow but wide content models.",
        ),
        Scenario(
            "huge_attributes", "depth=4,fanout=3,attr_density=0.9",
            "records=3,attr_bytes=1500",
            6, ("tiny", "midtag"),
            "Attribute payloads dwarf the element structure.",
        ),
        Scenario(
            "overlap", "depth=6,fanout=3,alphabet=overlap",
            "records=3,record_bytes=800",
            6, ("tiny", "midtag"),
            "Pathological keyword overlap: tags are prefixes of each other.",
        ),
        Scenario(
            "longnames", "depth=4,fanout=2,alphabet=long",
            "records=3,record_bytes=700",
            4, ("midtag",),
            "24+-character tag keywords dominate the byte stream.",
        ),
        Scenario(
            "utf8", "depth=4,fanout=3",
            "records=3,record_bytes=700,utf8=0.35",
            6, ("tiny", "midutf8", "mixed"),
            "Dense multi-byte text; splits land inside encoded characters.",
        ),
        Scenario(
            "markup", "depth=4,fanout=3",
            "records=3,record_bytes=700,cdata=0.3,comments=0.25,doctype=1",
            6, ("tiny", "midtag"),
            "CDATA sections, comments and DOCTYPE prologues per record.",
        ),
        Scenario(
            "records", "depth=3,fanout=3",
            "records=10,record_bytes=400",
            4, ("mixed",),
            "Many small records: corpus splitting and parallel sharding.",
        ),
        Scenario(
            "json", "", "records=8,utf8=0.2,note_density=0.6",
            7, ("tiny", "mixed"),
            "Second grammar: JSONL records mapped onto the XML runtime.",
        ),
    )
}


def available_deliveries() -> tuple[str, ...]:
    """The token-delivery tiers importable in this process."""
    tiers = ["pertoken", "batched"]
    if accel_available():
        tiers.append("accel")
    return tuple(tiers)


# ----------------------------------------------------------------------
# Adversarial chunk splits
# ----------------------------------------------------------------------
def adversarial_chunks(data: bytes, flavor: str,
                       rng: Random | None = None) -> list[bytes]:
    """Split ``data`` adversarially; concatenation is always ``data``."""
    if flavor == "tiny":
        # 1-3 byte chunks: every carry-over path runs on every feed.
        chunks, position, size = [], 0, 1
        while position < len(data):
            chunks.append(data[position:position + size])
            position += size
            size = size % 3 + 1
        return chunks
    if flavor == "midtag":
        # A boundary immediately after every '<': each tag keyword is cut.
        cuts = [i + 1 for i, byte in enumerate(data) if byte == 0x3C]
    elif flavor == "midutf8":
        # Boundaries on UTF-8 continuation bytes: splits inside characters.
        cuts = [i for i, byte in enumerate(data) if byte & 0xC0 == 0x80]
    elif flavor == "mixed":
        if rng is None:
            raise WorkloadError("flavor 'mixed' needs an rng")
        cuts = sorted(rng.sample(range(1, len(data)),
                                 min(len(data) - 1, max(1, len(data) // 41))))
    else:
        raise WorkloadError(
            f"unknown chunk flavor {flavor!r}; expected one of {CHUNK_FLAVORS}"
        )
    chunks, previous = [], 0
    for cut in cuts:
        if cut <= previous or cut >= len(data):
            continue
        chunks.append(data[previous:cut])
        previous = cut
    chunks.append(data[previous:])
    return chunks


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Divergence:
    """One disagreement between execution paths, seed-addressable."""

    scenario: str
    case_seed: int
    query: str
    record: int
    comparison: str
    detail: str
    inject_seed: int | None = None

    @property
    def repro(self) -> str:
        if self.scenario.startswith("kill-resume"):
            return (f"python -m repro fuzz --kill-resume "
                    f"--case-seed {self.case_seed}")
        line = (f"python -m repro fuzz --only {self.scenario} "
                f"--case-seed {self.case_seed}")
        if self.inject_seed is not None:
            line += f" --inject-seed {self.inject_seed}"
        return line

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "case_seed": self.case_seed,
            "query": self.query,
            "record": self.record,
            "comparison": self.comparison,
            "detail": self.detail,
            "inject_seed": self.inject_seed,
            "repro": self.repro,
        }


@dataclass
class CaseResult:
    """One executed (scenario, case_seed) cell of the matrix."""

    scenario: str
    case_seed: int
    pairs: int = 0
    queries: tuple[str, ...] = ()
    divergences: list[Divergence] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "case_seed": self.case_seed,
            "pairs": self.pairs,
            "queries": list(self.queries),
            "divergences": [d.to_dict() for d in self.divergences],
        }


@dataclass
class FuzzReport:
    """The whole run: deterministic in (seed, budget, scenario selection)."""

    seed: int
    budget: int
    deliveries: tuple[str, ...]
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def pairs(self) -> int:
        return sum(case.pairs for case in self.cases)

    @property
    def divergences(self) -> list[Divergence]:
        return [d for case in self.cases for d in case.divergences]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "deliveries": list(self.deliveries),
            "pairs": self.pairs,
            "cases": [case.to_dict() for case in self.cases],
            "divergence_count": len(self.divergences),
            "ok": self.ok,
        }


def _stats_tuple(stats, fields=STATS_FIELDS) -> tuple:
    return tuple(getattr(stats, name) for name in fields)


def _first_difference(left: bytes, right: bytes) -> str:
    if len(left) != len(right):
        prefix = f"lengths {len(left)} != {len(right)}; "
    else:
        prefix = ""
    limit = min(len(left), len(right))
    for offset in range(limit):
        if left[offset] != right[offset]:
            return (f"{prefix}first differing byte at offset {offset}: "
                    f"{left[offset]:#x} != {right[offset]:#x}")
    return prefix + f"one output is a prefix of the other (at {limit})"


def _stats_difference(left, right, fields) -> str | None:
    for name in fields:
        a, b = getattr(left, name), getattr(right, name)
        if a != b:
            return f"stats field {name}: {a} != {b}"
    return None


# ----------------------------------------------------------------------
# One case
# ----------------------------------------------------------------------
class _CaseRunner:
    def __init__(self, scenario: Scenario, case_seed: int, *,
                 deliveries: tuple[str, ...], jobs: int,
                 inject_seed: int | None) -> None:
        self._scenario = scenario
        self._seed = case_seed
        self._deliveries = deliveries
        self._jobs = jobs
        self._inject_seed = inject_seed
        self._result = CaseResult(scenario.name, case_seed)
        self._rng = Random(("case", scenario.name, case_seed).__repr__())
        self._prepare()
        self._result.queries = tuple(q.name for q in self._queries)

    def _prepare(self) -> None:
        """Build records, queries and plans (the XML generator path)."""
        scenario, case_seed = self._scenario, self._seed
        schema_kwargs = parse_kv(scenario.schema, SchemaSpec)
        schema_kwargs["seed"] = case_seed
        self._schema = build_schema(SchemaSpec(**schema_kwargs))
        document_kwargs = parse_kv(scenario.document, DocumentSpec)
        document_kwargs["seed"] = case_seed
        self._document_spec = DocumentSpec(**document_kwargs)
        self._records = generate_records(self._schema, self._document_spec)
        self._queries = generate_queries(
            self._schema, seed=case_seed, count=scenario.query_count
        )
        self._dtd = self._schema.dtd
        self._plans = [
            SmpPrefilter.cached_for_query(
                self._dtd, query.spec(), backend="native"
            )
            for query in self._queries
        ]

    def _corpus_source(self) -> Source:
        """A fresh corpus Source over the generated records (one-shot)."""
        stream = b"\n".join(self._records) + b"\n"
        return Source.from_records(
            stream, end_tag=self._schema.end_tag, chunk_size=173
        )

    # ------------------------------------------------------------------
    def run(self) -> CaseResult:
        references = self._single_query_matrix()
        self._shared_scan(references)
        self._corpus(references)
        return self._result

    def _diverge(self, query: str, record: int, comparison: str,
                 detail: str) -> None:
        self._result.divergences.append(Divergence(
            scenario=self._scenario.name,
            case_seed=self._seed,
            query=query,
            record=record,
            comparison=comparison,
            detail=detail,
            inject_seed=self._inject_seed,
        ))

    def _chunked_view(self, index: int) -> bytes:
        """The bytes the chunked paths see (the injection target)."""
        data = self._records[index]
        if (self._inject_seed is not None
                and index == len(self._records) - 1):
            data = flip_bits(data, seed=self._inject_seed, flips=3)
        return data

    def _run_single(self, plan: SmpPrefilter, chunks: list[bytes],
                    delivery: str):
        session = plan.session(binary=True, delivery=delivery)
        return session.run(chunks)

    # ------------------------------------------------------------------
    def _single_query_matrix(self) -> list[list]:
        """Whole vs chunked vs deliveries; returns per-query per-record
        reference (pertoken, whole-document) runs."""
        flavors = self._scenario.flavors
        references: list[list] = []
        for query, plan in zip(self._queries, self._plans):
            per_record = []
            for index, record in enumerate(self._records):
                self._result.pairs += 1
                reference = self._run_single(plan, [record], "pertoken")
                per_record.append(reference)
                chunked_data = self._chunked_view(index)
                for delivery in self._deliveries:
                    if delivery != "pertoken":
                        self._compare_single(
                            query.name, index, reference,
                            plan, [record], delivery,
                            comparison=f"whole[pertoken] vs whole[{delivery}]",
                        )
                    for flavor in flavors:
                        chunks = adversarial_chunks(
                            chunked_data, flavor, self._rng
                        )
                        self._compare_single(
                            query.name, index, reference,
                            plan, chunks, delivery,
                            comparison=(f"whole[pertoken] vs "
                                        f"chunked[{delivery}]/{flavor}"),
                        )
            references.append(per_record)
        return references

    def _compare_single(self, query: str, record: int, reference,
                        plan, chunks, delivery, *, comparison: str) -> None:
        try:
            run = self._run_single(plan, chunks, delivery)
        except ReproError as error:
            self._diverge(query, record, comparison,
                          f"{type(error).__name__}: {error}")
            return
        if run.output != reference.output:
            self._diverge(query, record, comparison,
                          _first_difference(run.output, reference.output))
            return
        detail = _stats_difference(run.stats, reference.stats, STATS_FIELDS)
        if detail is not None:
            self._diverge(query, record, comparison, detail)

    # ------------------------------------------------------------------
    def _shared_scan(self, references) -> None:
        """Shared multi-query sessions vs the single-query references."""
        engine = MultiQueryEngine(
            self._dtd, list(self._plans), backend="native"
        )
        flavors = self._scenario.flavors
        for index, record in enumerate(self._records):
            for delivery in self._deliveries:
                flavor = flavors[index % len(flavors)]
                for chunks, label in (
                    ([record], f"shared-whole[{delivery}]"),
                    (adversarial_chunks(record, flavor, self._rng),
                     f"shared-chunked[{delivery}]/{flavor}"),
                ):
                    self._compare_shared(
                        engine, chunks, delivery, index, references, label
                    )

    def _compare_shared(self, engine, chunks, delivery, index,
                        references, label) -> None:
        comparison = f"whole[pertoken] vs {label}"
        try:
            session = engine.session(binary=True, delivery=delivery)
            pieces: list[list[bytes]] = [[] for _ in self._queries]
            for chunk in chunks:
                for position, piece in enumerate(session.feed(chunk)):
                    pieces[position].append(piece)
            for position, piece in enumerate(session.finish()):
                pieces[position].append(piece)
        except ReproError as error:
            self._diverge("*", index, comparison,
                          f"{type(error).__name__}: {error}")
            return
        for position, query in enumerate(self._queries):
            reference = references[position][index]
            output = b"".join(pieces[position])
            if output != reference.output:
                self._diverge(query.name, index, comparison,
                              _first_difference(output, reference.output))
                continue
            detail = _stats_difference(
                session.stats[position], reference.stats, STRUCTURAL_FIELDS
            )
            if detail is not None:
                self._diverge(query.name, index, comparison, detail)

    # ------------------------------------------------------------------
    def _corpus(self, references) -> None:
        """Sequential corpus vs parallel corpus vs concatenated references."""
        queries = [
            Query.from_plan(plan, label=query.name)
            for query, plan in zip(self._queries, self._plans)
        ]
        try:
            sequential = Engine(queries).run(
                self._corpus_source(), binary=True
            )
            parallel = Engine(queries, mode="parallel", jobs=self._jobs).run(
                self._corpus_source(), binary=True
            )
        except ReproError as error:
            self._diverge("*", -1, "corpus sequential vs parallel",
                          f"{type(error).__name__}: {error}")
            return
        for position, query in enumerate(self._queries):
            concatenated = b"".join(
                run.output for run in references[position]
            )
            seq_result = sequential.results[position]
            par_result = parallel.results[position]
            if seq_result.output != concatenated:
                self._diverge(
                    query.name, -1,
                    "concatenated whole[pertoken] vs corpus-sequential",
                    _first_difference(seq_result.output, concatenated),
                )
            if par_result.output != seq_result.output:
                self._diverge(
                    query.name, -1, "corpus-sequential vs corpus-parallel",
                    _first_difference(par_result.output, seq_result.output),
                )
                continue
            detail = _stats_difference(
                par_result.stats, seq_result.stats, STATS_FIELDS
            )
            if detail is not None:
                self._diverge(query.name, -1,
                              "corpus-sequential vs corpus-parallel", detail)


class _JsonCaseRunner(_CaseRunner):
    """The second-grammar cell: JSONL records mapped onto the runtime.

    Records are generated as JSON, mapped to XML with the
    :mod:`repro.workloads.json_records` mapping, and held to the same
    differential obligations; the corpus leg additionally exercises
    ``Source.from_jsonl`` (JSONL line splitting + per-record transform)
    instead of end-tag splitting.
    """

    def _prepare(self) -> None:
        from repro.workloads import json_records

        kwargs = parse_kv(self._scenario.document, json_records.JsonSpec)
        kwargs["seed"] = self._seed
        self._json_spec = json_records.JsonSpec(**kwargs)
        self._records = json_records.xml_records(self._json_spec)
        self._jsonl = json_records.generate_jsonl(self._json_spec)
        self._queries = json_records.json_queries()
        self._dtd = json_records.json_dtd()
        self._schema = None
        self._plans = [
            SmpPrefilter.cached_for_query(
                self._dtd, query.spec(), backend="native"
            )
            for query in self._queries
        ]

    def _corpus_source(self) -> Source:
        from repro.workloads.json_records import json_record_to_xml

        return Source.from_jsonl(
            self._jsonl, transform=json_record_to_xml, chunk_size=173
        )


def run_case(scenario: "Scenario | str", case_seed: int, *,
             deliveries: tuple[str, ...] | None = None,
             jobs: int = 2, inject_seed: int | None = None) -> CaseResult:
    """Execute one fully-determined fuzz case."""
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise WorkloadError(
                f"unknown scenario {scenario!r}; expected one of "
                f"{sorted(SCENARIOS)}"
            ) from None
    runner_type = _JsonCaseRunner if scenario.name == "json" else _CaseRunner
    runner = runner_type(
        scenario, case_seed,
        deliveries=deliveries or available_deliveries(),
        jobs=jobs, inject_seed=inject_seed,
    )
    return runner.run()


def run_fuzz(*, seed: int, budget: int = 200,
             scenarios: "tuple[str, ...] | None" = None,
             case_seed: int | None = None,
             deliveries: tuple[str, ...] | None = None,
             jobs: int = 2, inject_seed: int | None = None,
             progress=None) -> FuzzReport:
    """Run the scenario matrix until ``budget`` (record, query) pairs ran.

    Fully deterministic in ``(seed, budget, scenarios, case_seed)``: case
    seeds derive from the master seed per (scenario, round) and every
    generator downstream is seeded from them.  With ``case_seed`` the
    selected scenarios run exactly once with that seed (the repro mode the
    divergence lines point at) and ``budget`` is ignored.
    """
    names = tuple(scenarios) if scenarios else tuple(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise WorkloadError(
                f"unknown scenario {name!r}; expected one of "
                f"{sorted(SCENARIOS)}"
            )
    resolved = deliveries or available_deliveries()
    report = FuzzReport(seed=seed, budget=budget, deliveries=resolved)
    if case_seed is not None:
        for name in names:
            report.cases.append(run_case(
                name, case_seed, deliveries=resolved, jobs=jobs,
                inject_seed=inject_seed,
            ))
            if progress is not None:
                progress(report.cases[-1])
        return report
    round_number = 0
    while report.pairs < budget:
        for name in names:
            derived = Random(
                ("fuzz-case", seed, name, round_number).__repr__()
            ).getrandbits(32)
            report.cases.append(run_case(
                name, derived, deliveries=resolved, jobs=jobs,
                inject_seed=inject_seed,
            ))
            if progress is not None:
                progress(report.cases[-1])
            if report.pairs >= budget:
                break
        round_number += 1
    return report


# ----------------------------------------------------------------------
# Kill-and-resume: SIGKILL at a seeded offset, resume, assert identity
# ----------------------------------------------------------------------
#: The workloads of the kill-and-resume matrix: the MEDLINE dataset, the
#: generated-XML grammar and the JSONL second grammar.
KILL_RESUME_WORKLOADS = ("medline", "gen:", "json:")

#: Chunk flavours with bounded chunk counts (every chunk boundary is a
#: potential checkpoint, so "tiny" would mean thousands of fsyncs).
KILL_RESUME_FLAVORS = ("midtag", "mixed")


def _kill_resume_setup(workload: str, case_seed: int, backend: str):
    """Deterministically rebuild (document bytes, compiled plan) for a
    kill-and-resume case — called identically in parent and child."""
    if workload == "medline":
        from repro.workloads.datasets import load_dataset
        from repro.workloads.medline import (
            MEDLINE_QUERIES, MEDLINE_QUERY_ORDER, medline_dtd,
        )

        document = load_dataset(
            "medline", size_bytes=16_000 + (case_seed % 5) * 1000
        ).encode("utf-8")
        order = [n for n in MEDLINE_QUERY_ORDER if n != "M1"]
        spec = MEDLINE_QUERIES[order[case_seed % len(order)]]
        dtd = medline_dtd()
    elif workload.startswith("gen:"):
        schema = build_schema(SchemaSpec(depth=5, fanout=3, seed=case_seed))
        records = generate_records(schema, DocumentSpec(
            records=1, record_bytes=12_000, seed=case_seed,
        ))
        document = records[0]
        queries = generate_queries(schema, seed=case_seed, count=4)
        spec = queries[case_seed % len(queries)].spec()
        dtd = schema.dtd
    elif workload.startswith("json:"):
        from repro.workloads import json_records

        json_spec = json_records.JsonSpec(
            records=1, seed=case_seed, note_density=0.5,
        )
        document = json_records.xml_records(json_spec)[0]
        queries = json_records.json_queries()
        spec = queries[case_seed % len(queries)].spec()
        dtd = json_records.json_dtd()
    else:
        raise WorkloadError(
            f"unknown kill-resume workload {workload!r}; expected one of "
            f"{KILL_RESUME_WORKLOADS}"
        )
    plan = SmpPrefilter.cached_for_query(dtd, spec, backend=backend)
    return document, plan


def _kill_resume_chunks(document: bytes, flavor: str, case_seed: int):
    """The adversarial chunking of a case (same split in parent & child)."""
    rng = Random(("kill-resume-chunks", case_seed, flavor).__repr__())
    return adversarial_chunks(document, flavor, rng)


def _kill_resume_child(config: dict) -> None:
    """Child-process body: filter + checkpoint, then SIGKILL itself.

    Runs in a spawned process.  Feeds the case's adversarial chunks into a
    streaming session whose projected bytes go straight to the output
    file; every ``interval``-th chunk boundary flushes the file and writes
    an atomic checkpoint.  At the seeded kill chunk the process SIGKILLs
    itself — either *before* the boundary's checkpoint (resume must replay
    from the previous one) or right *after* it (resume starts exactly at
    the boundary), so both torn-progress shapes are exercised.
    """
    import signal

    from repro.checkpoint import write_checkpoint

    document, plan = _kill_resume_setup(
        config["workload"], config["case_seed"], config["backend"]
    )
    chunks = _kill_resume_chunks(
        document, config["flavor"], config["case_seed"]
    )
    kill_index = config["kill_index"]
    kill_phase = config["kill_phase"]
    interval = config["interval"]
    with open(config["output_path"], "wb") as out:
        session = plan.session(
            sink=out.write, binary=True, delivery=config["delivery"]
        )
        consumed = 0
        for index, chunk in enumerate(chunks):
            session.feed(chunk)
            consumed += len(chunk)
            boundary = index % interval == 0
            if boundary and kill_phase == "before" and index >= kill_index:
                os.kill(os.getpid(), signal.SIGKILL)
            if boundary:
                out.flush()
                state = session.export_state()
                write_checkpoint(config["checkpoint_path"], {
                    "kind": "fuzz-stream",
                    "input_offset": consumed,
                    "output_size": state["emitted_bytes"],
                    "delivery": session.delivery,
                    "state": state,
                })
            if boundary and kill_phase == "after" and index >= kill_index:
                os.kill(os.getpid(), signal.SIGKILL)
    # Not reached: kill_index always fires.  Exit loudly if it did not.
    os._exit(86)


def _resume_killed_case(config: dict):
    """Parent-side recovery: load the checkpoint, resume, run to the end.

    Returns ``(output bytes, RunStatistics)`` of the recovered run.
    """
    from repro.checkpoint import read_checkpoint, resume_chunks

    document, plan = _kill_resume_setup(
        config["workload"], config["case_seed"], config["backend"]
    )
    chunks = _kill_resume_chunks(
        document, config["flavor"], config["case_seed"]
    )
    snapshot = read_checkpoint(config["checkpoint_path"])
    if snapshot.get("kind") != "fuzz-stream":
        raise WorkloadError("unexpected checkpoint kind in kill-resume case")
    with open(config["output_path"], "r+b") as out:
        out.truncate(int(snapshot["output_size"]))
        out.seek(int(snapshot["output_size"]))
        session = plan.session(
            sink=out.write, binary=True, delivery=snapshot["delivery"]
        )
        session.import_state(snapshot["state"])
        for chunk in resume_chunks(chunks, int(snapshot["input_offset"])):
            session.feed(chunk)
        session.finish()
        out.flush()
    with open(config["output_path"], "rb") as out:
        output = out.read()
    return output, session.stats


def run_kill_resume(*, seed: int, case_seed: int | None = None,
                    workloads: tuple[str, ...] = KILL_RESUME_WORKLOADS,
                    deliveries: tuple[str, ...] | None = None,
                    rounds: int = 1, progress=None) -> list[CaseResult]:
    """The kill-and-resume chaos matrix: workloads × deliveries × flavours.

    Each cell: an uninterrupted reference run; then a spawned child that
    filters the same adversarial chunk stream, checkpoints at chunk
    boundaries and SIGKILLs itself at a seeded offset; then an in-process
    resume from the surviving checkpoint.  The recovered output bytes and
    the full 11-field statistics tuple (:data:`STATS_FIELDS`) must be
    identical to the uninterrupted run.  Backends alternate between
    ``native`` and ``instrumented`` per cell.
    """
    import multiprocessing
    import tempfile

    resolved = deliveries or available_deliveries()
    spawn = multiprocessing.get_context("spawn")
    cases: list[CaseResult] = []
    for round_number in range(max(1, rounds)):
        if case_seed is not None and round_number:
            break
        derived = case_seed if case_seed is not None else Random(
            ("kill-resume", seed, round_number).__repr__()
        ).getrandbits(32)
        for workload in workloads:
            case = CaseResult(f"kill-resume:{workload}", derived)
            rng = Random(("kill-resume-case", derived, workload).__repr__())
            for delivery in resolved:
                for flavor in KILL_RESUME_FLAVORS:
                    case.pairs += 1
                    backend = ("native", "instrumented")[case.pairs % 2]
                    detail = _run_one_kill_resume(
                        workload, derived, delivery, flavor, backend,
                        rng, spawn, tempfile,
                    )
                    if detail is not None:
                        case.divergences.append(Divergence(
                            scenario=case.scenario,
                            case_seed=derived,
                            query="*",
                            record=0,
                            comparison=(f"uninterrupted vs kill+resume"
                                        f"[{delivery}]/{flavor}/{backend}"),
                            detail=detail,
                        ))
            if progress is not None:
                progress(case)
            cases.append(case)
    return cases


def _run_one_kill_resume(workload, derived, delivery, flavor, backend,
                         rng, spawn, tempfile) -> "str | None":
    """One cell of the kill-and-resume matrix; returns a detail string on
    divergence (or harness failure), None when byte-identical."""
    document, plan = _kill_resume_setup(workload, derived, backend)
    chunks = _kill_resume_chunks(document, flavor, derived)
    if len(chunks) < 4:
        return None  # degenerate split; nothing to kill mid-stream
    interval = max(1, len(chunks) // 32)
    kill_index = rng.randrange(interval, len(chunks) - 1)
    kill_phase = rng.choice(("before", "after"))

    reference = plan.session(binary=True, delivery=delivery).run(chunks)

    with tempfile.TemporaryDirectory(prefix="kill-resume-") as tmp:
        config = {
            "workload": workload,
            "case_seed": derived,
            "backend": backend,
            "delivery": delivery,
            "flavor": flavor,
            "kill_index": kill_index,
            "kill_phase": kill_phase,
            "interval": interval,
            "checkpoint_path": os.path.join(tmp, "stream.ckpt"),
            "output_path": os.path.join(tmp, "projected.xml"),
        }
        child = spawn.Process(target=_kill_resume_child, args=(config,))
        child.start()
        child.join(timeout=120)
        if child.is_alive():
            child.kill()
            child.join()
            return "child did not die at the seeded kill offset"
        if child.exitcode != -9:
            return (f"child exited with {child.exitcode}, "
                    f"expected SIGKILL (-9)")
        try:
            output, stats = _resume_killed_case(config)
        except ReproError as error:
            return f"resume failed: {type(error).__name__}: {error}"
    if output != reference.output:
        return "resumed output differs: " + _first_difference(
            output, reference.output
        )
    return _stats_difference(stats, reference.stats, STATS_FIELDS)


# ----------------------------------------------------------------------
# CLI: python -m repro fuzz ...
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """``python -m repro fuzz`` — exit 0 when all paths agree, 4 otherwise."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description=(
            "Differential fuzzing: generated corpora and matched queries "
            "through whole-document, chunked, shared and parallel "
            "execution on every delivery tier."
        ),
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (default 0)")
    parser.add_argument("--budget", type=int, default=200,
                        help="minimum (record, query) pairs to run "
                             "(default 200)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="SCENARIO",
                        help="restrict to a scenario (repeatable); one of: "
                             + ", ".join(SCENARIOS))
    parser.add_argument("--case-seed", type=int, default=None,
                        help="run the selected scenarios exactly once with "
                             "this case seed (repro mode)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the parallel leg "
                             "(default 2)")
    parser.add_argument("--inject-seed", type=int, default=None,
                        help="corrupt the chunked view of the last record "
                             "with this fault seed (harness self-test)")
    parser.add_argument("--kill-resume", action="store_true",
                        help="additionally run the kill-and-resume chaos "
                             "matrix: a child process SIGKILLs itself at a "
                             "seeded offset mid-stream and the parent "
                             "resumes from the last checkpoint; output and "
                             "statistics must be byte-identical to an "
                             "uninterrupted run")
    parser.add_argument("--kill-rounds", type=int, default=1,
                        help="rounds of the kill-and-resume matrix "
                             "(default 1; each round uses a fresh derived "
                             "case seed)")
    parser.add_argument("--kill-resume-only", action="store_true",
                        help="run only the kill-and-resume matrix, skipping "
                             "the differential scenarios")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the full JSON report to PATH")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress lines")
    options = parser.parse_args(argv)

    def progress(case: CaseResult) -> None:
        if options.quiet:
            return
        status = ("ok" if not case.divergences
                  else f"{len(case.divergences)} DIVERGENCES")
        print(f"[fuzz] {case.scenario:<16} case_seed={case.case_seed:<12}"
              f" pairs={case.pairs:<4} {status}")

    try:
        if options.kill_resume_only:
            report = FuzzReport(
                seed=options.seed, budget=0,
                deliveries=available_deliveries(),
            )
        else:
            report = run_fuzz(
                seed=options.seed,
                budget=options.budget,
                scenarios=tuple(options.only) if options.only else None,
                case_seed=options.case_seed,
                jobs=options.jobs,
                inject_seed=options.inject_seed,
                progress=progress,
            )
        if options.kill_resume or options.kill_resume_only:
            report.cases.extend(run_kill_resume(
                seed=options.seed,
                case_seed=options.case_seed,
                rounds=options.kill_rounds,
                progress=progress,
            ))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if options.report:
        with open(options.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    print(f"[fuzz] seed={report.seed} pairs={report.pairs} "
          f"cases={len(report.cases)} deliveries={','.join(report.deliveries)}"
          f" divergences={len(report.divergences)}")
    for divergence in report.divergences:
        print(f"[fuzz] DIVERGENCE {divergence.scenario}"
              f"/{divergence.query} record={divergence.record} "
              f"{divergence.comparison}: {divergence.detail}")
        print(f"[fuzz]   repro: {divergence.repro}")
    return 0 if report.ok else 4


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
