"""Matched XPath query generation over generated schemas.

Queries are drawn from the schema's feasibility matrix
(:meth:`~repro.workloads.schema.GeneratedSchema.matrix`), so every
*satisfiable* query targets a path that the coverage record of every
generated corpus realises, and every predicate compares against a
sentinel token the coverage record plants as exact text.  Deliberately
unsatisfiable controls come in two flavours:

``phantom``
    Targets a declared-but-never-emitted element — the M1 shape: the
    prefilter's static analysis admits the path, the data never does, and
    the output must be empty.
``never``
    A structurally-satisfiable path guarded by a predicate comparing
    against the schema's ``never_token``, which no document contains.
    Prefiltering is conservative, so output need not be empty — these are
    differential controls only (all execution paths must still agree).

The ``overlap`` family targets element-name groups where one tag keyword
is a prefix of another (the paper's ``Abstract``/``AbstractText``
pathology), which stresses longest-match verification in the matchers and
prefix expansion in the shared scan.

Every generated XPath string is parsed at generation time
(:func:`repro.projection.extraction.spec_from_xpath`), so a grammar
mismatch fails in the generator, not in the consumer.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.errors import WorkloadError
from repro.projection.extraction import QuerySpec, spec_from_xpath
from repro.workloads.schema import GeneratedSchema

#: Query families, in the deterministic round-robin order the generator
#: cycles through when building a mixed set.
FAMILIES = (
    "spine", "descendant", "predicate", "contains", "disjunction",
    "attribute", "overlap",
)

#: Unsatisfiable-control families.
CONTROL_FAMILIES = ("phantom", "never")


@dataclass(frozen=True)
class GeneratedQuery:
    """One generated query: XPath text plus its provenance."""

    name: str
    xpath: str
    family: str
    satisfiable: bool

    def spec(self) -> QuerySpec:
        """The executable :class:`QuerySpec` (parses and validates)."""
        return spec_from_xpath(
            self.name,
            self.xpath,
            f"generated {self.family} query "
            f"({'satisfiable' if self.satisfiable else 'control'})",
        )


def generate_queries(schema: GeneratedSchema, *, seed: int, count: int,
                     unsat_ratio: float = 0.2) -> list[GeneratedQuery]:
    """``count`` queries over ``schema``, deterministic in ``seed``.

    Roughly ``unsat_ratio`` of the set are unsatisfiable controls
    (alternating phantom/never); the rest cycle through :data:`FAMILIES`.
    Duplicate XPath strings are skipped, so the returned set may be
    shorter than ``count`` on tiny schemas — callers that need an exact
    count should check ``len()``.
    """
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    if not 0.0 <= unsat_ratio <= 1.0:
        raise WorkloadError(
            f"unsat_ratio must be in [0, 1], got {unsat_ratio}"
        )
    rng = Random(("queries", schema.spec.key(), seed).__repr__())
    builder = _QueryBuilder(schema, rng)
    controls = int(round(count * unsat_ratio))
    plan = [CONTROL_FAMILIES[index % len(CONTROL_FAMILIES)]
            for index in range(controls)]
    plan += [FAMILIES[index % len(FAMILIES)]
             for index in range(count - controls)]
    queries: list[GeneratedQuery] = []
    seen: set[str] = set()

    def draw(family: str) -> str | None:
        for _ in range(8):
            xpath = builder.build(family)
            if xpath is not None and xpath not in seen:
                return xpath
        return None

    for planned in plan:
        # A family can run dry on tiny schemas (one phantom element means
        # one distinct phantom query); fall back to related families so
        # the set still reaches ``count`` whenever distinct queries exist.
        fallbacks = (CONTROL_FAMILIES if planned in CONTROL_FAMILIES
                     else FAMILIES)
        candidates = (planned,) + tuple(
            name for name in fallbacks if name != planned
        ) + (FAMILIES if planned in CONTROL_FAMILIES else ())
        for family in candidates:
            xpath = draw(family)
            if xpath is None:
                continue
            seen.add(xpath)
            name = f"G{len(queries):03d}_{family}"
            query = GeneratedQuery(
                name=name,
                xpath=xpath,
                family=family,
                satisfiable=family not in CONTROL_FAMILIES,
            )
            query.spec()  # parse now: grammar drift fails in the generator
            queries.append(query)
            break
    return queries


class _QueryBuilder:
    """Draws one query per family from the feasibility matrix."""

    def __init__(self, schema: GeneratedSchema, rng: Random) -> None:
        self._schema = schema
        self._rng = rng
        matrix = schema.matrix()
        self._paths = matrix["paths"]
        self._emitted = sorted(matrix["emitted"])
        self._sentinels = matrix["sentinels"]
        self._never = matrix["never_token"]
        self._overlap = [
            tuple(name for name in group if name in matrix["emitted"])
            for group in matrix["overlap_groups"]
        ]
        self._overlap = [group for group in self._overlap if group]
        elements = schema.elements
        #: (parent, text-leaf-child) pairs — predicate targets.
        self._predicate_sites = [
            (name, child.name)
            for name in self._emitted
            for child in elements[name].children
            if elements[child.name].has_text
            and child.name in self._sentinels
        ]
        #: (parent, empty-child-with-attribute) pairs.
        self._attribute_sites = [
            (name, child.name, elements[child.name].attribute)
            for name in self._emitted
            for child in elements[name].children
            if elements[child.name].attribute is not None
        ]
        self._text_leaves = sorted(
            name for name in self._emitted
            if elements[name].has_text and name in self._sentinels
        )

    # ------------------------------------------------------------------
    def build(self, family: str) -> str | None:
        try:
            return getattr(self, f"_build_{family}")()
        except AttributeError:  # pragma: no cover - family list is closed
            raise WorkloadError(f"unknown query family {family!r}") from None

    def _abs_path(self, name: str) -> str:
        """A random absolute child-axis path to ``name``."""
        return "/" + "/".join(self._rng.choice(self._paths[name]))

    def _abs_descendant(self, name: str) -> str:
        """An absolute path to ``name`` with a descendant shortcut."""
        path = list(self._rng.choice(self._paths[name]))
        if len(path) <= 2:
            return f"/{path[0]}//{path[-1]}" if len(path) == 2 else "/" + path[0]
        # Cut the middle: /root//tail, keeping a realised suffix.
        cut = self._rng.randrange(1, len(path) - 1)
        keep = self._rng.randrange(cut + 1, len(path))
        head = "/".join(path[:cut])
        tail = "/".join(path[keep:])
        return f"/{head}//{tail}"

    def _pick(self, options):
        return self._rng.choice(options) if options else None

    # Families ---------------------------------------------------------
    def _build_spine(self) -> str:
        return self._abs_path(self._rng.choice(self._emitted))

    def _build_descendant(self) -> str:
        return self._abs_descendant(self._rng.choice(self._emitted))

    def _build_predicate(self) -> str | None:
        site = self._pick(self._predicate_sites)
        if site is None:
            return None
        parent, leaf = site
        sentinel = self._sentinels[leaf]
        base = (self._abs_descendant(parent) if self._rng.random() < 0.5
                else self._abs_path(parent))
        suffixes = [
            child.name for child in self._schema.elements[parent].children
            if child.name != leaf
            and child.name not in self._schema.phantom_names
        ]
        suffix = f"/{self._rng.choice(suffixes)}" if (
            suffixes and self._rng.random() < 0.5) else ""
        return f'{base}[{leaf}/text()="{sentinel}"]{suffix}'

    def _build_contains(self) -> str | None:
        leaf = self._pick(self._text_leaves)
        if leaf is None:
            return None
        sentinel = self._sentinels[leaf]
        return f'{self._abs_descendant(leaf)}[contains(text(),"{sentinel}")]'

    def _build_disjunction(self) -> str | None:
        site = self._pick(self._predicate_sites)
        if site is None:
            return None
        parent, leaf = site
        sentinel = self._sentinels[leaf]
        other = self._pick(self._text_leaves)
        if other is None:
            return None
        clause = f'{leaf}/text()="{sentinel}"'
        alt = f'{leaf}/text()="{self._never}"'
        if self._rng.random() < 0.5:
            return f"{self._abs_path(parent)}[{clause} or {alt}]"
        return f"{self._abs_path(parent)}[{alt} or {clause}]"

    def _build_attribute(self) -> str | None:
        site = self._pick(self._attribute_sites)
        if site is None:
            return None
        parent, child, attribute = site
        base = self._abs_path(parent)
        if self._rng.random() < 0.5:
            return f"{base}/{child}[@{attribute}]"
        return f"{base}[{child}]/{child}"

    def _build_overlap(self) -> str | None:
        group = self._pick(self._overlap)
        if group is None:
            return None
        name = self._rng.choice(group)
        return self._abs_descendant(name)

    # Controls ---------------------------------------------------------
    def _build_phantom(self) -> str | None:
        if not self._schema.phantom_names:
            return None
        phantom = self._rng.choice(self._schema.phantom_names)
        return f"/{self._schema.root}//{phantom}"

    def _build_never(self) -> str | None:
        leaf = self._pick(self._text_leaves)
        if leaf is None:
            return None
        base = self._abs_descendant(leaf)
        if self._rng.random() < 0.5:
            return f'{base}[text()="{self._never}"]'
        return f'{base}[contains(text(),"{self._never}")]'
