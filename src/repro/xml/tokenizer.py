"""Streaming XML tokenizer (the SAX-parser baseline of the paper).

The tokenizer plays the role Xerces plays in Figure 7(c): it turns the input
into a stream of tokens by inspecting *every* character.  It is deliberately
written as a single forward scan with no skipping so that comparing it with
the SMP runtime reproduces the paper's claim that "prefiltering systems that
rely on a tokenization of their input cannot compete" with string-matching
based prefiltering.

The parser is non-validating but checks well-formedness of what it sees:
balanced tags, properly quoted attributes, legal names.  DOCTYPE declarations
(including an internal subset), comments, CDATA sections, processing
instructions and the XML declaration are recognised and reported as their own
token kinds.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import XmlSyntaxError
from repro.xml.escape import is_name_char, is_name_start_char
from repro.xml.tokens import Token, TokenKind

_WHITESPACE = " \t\r\n"


class TokenizerStatistics:
    """Counters describing the work performed by the tokenizer."""

    def __init__(self) -> None:
        self.characters_read = 0
        self.tokens_emitted = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "characters_read": self.characters_read,
            "tokens_emitted": self.tokens_emitted,
        }


class XmlTokenizer:
    """Tokenize an XML document held in a string.

    Parameters
    ----------
    text:
        The document text.
    track_positions:
        When True (default) each token records its source offsets.
    """

    def __init__(self, text: str, track_positions: bool = True) -> None:
        self._text = text
        self._length = len(text)
        self._track_positions = track_positions
        self.stats = TokenizerStatistics()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        """Yield the document's tokens in order."""
        text = self._text
        length = self._length
        position = 0
        open_elements: list[str] = []
        seen_root = False
        while position < length:
            if text[position] == "<":
                token, position = self._read_markup(position)
                if token is None:
                    continue
                if token.kind is TokenKind.START_TAG:
                    if not open_elements:
                        if seen_root:
                            raise XmlSyntaxError("multiple root elements", token.start)
                        seen_root = True
                    open_elements.append(token.name)
                elif token.kind is TokenKind.EMPTY_TAG:
                    if not open_elements:
                        if seen_root:
                            raise XmlSyntaxError("multiple root elements", token.start)
                        seen_root = True
                elif token.kind is TokenKind.END_TAG:
                    if not open_elements:
                        raise XmlSyntaxError(
                            f"closing tag </{token.name}> without matching opening tag",
                            token.start,
                        )
                    expected = open_elements.pop()
                    if expected != token.name:
                        raise XmlSyntaxError(
                            f"mismatched closing tag </{token.name}>, expected </{expected}>",
                            token.start,
                        )
                self.stats.tokens_emitted += 1
                yield token
            else:
                token, position = self._read_text(position)
                if token.text.strip() and not open_elements:
                    raise XmlSyntaxError(
                        "character data outside of the root element", token.start
                    )
                self.stats.tokens_emitted += 1
                yield token
        if open_elements:
            raise XmlSyntaxError(
                f"unexpected end of document; unclosed element <{open_elements[-1]}>",
                length,
            )
        self.stats.characters_read = length

    # ------------------------------------------------------------------
    # Markup
    # ------------------------------------------------------------------
    def _read_markup(self, position: int) -> tuple[Token | None, int]:
        text = self._text
        length = self._length
        start = position
        if position + 1 >= length:
            raise XmlSyntaxError("unexpected end of document after '<'", position)
        nxt = text[position + 1]
        if nxt == "?":
            return self._read_processing_instruction(position)
        if nxt == "!":
            if text.startswith("<!--", position):
                return self._read_comment(position)
            if text.startswith("<![CDATA[", position):
                return self._read_cdata(position)
            if text.startswith("<!DOCTYPE", position):
                return self._read_doctype(position)
            raise XmlSyntaxError("unrecognised markup declaration", position)
        if nxt == "/":
            return self._read_end_tag(position)
        return self._read_start_tag(position, start)

    def _read_processing_instruction(self, position: int) -> tuple[Token, int]:
        text = self._text
        end = text.find("?>", position + 2)
        if end < 0:
            raise XmlSyntaxError("unterminated processing instruction", position)
        content = text[position + 2:end]
        target, _, rest = content.partition(" ")
        kind = (
            TokenKind.XML_DECLARATION
            if target.lower() == "xml"
            else TokenKind.PROCESSING_INSTRUCTION
        )
        token = Token(
            kind=kind,
            name=target,
            text=rest,
            start=position if self._track_positions else 0,
            end=end + 2 if self._track_positions else 0,
        )
        return token, end + 2

    def _read_comment(self, position: int) -> tuple[Token, int]:
        text = self._text
        end = text.find("-->", position + 4)
        if end < 0:
            raise XmlSyntaxError("unterminated comment", position)
        token = Token(
            kind=TokenKind.COMMENT,
            text=text[position + 4:end],
            start=position if self._track_positions else 0,
            end=end + 3 if self._track_positions else 0,
        )
        return token, end + 3

    def _read_cdata(self, position: int) -> tuple[Token, int]:
        text = self._text
        end = text.find("]]>", position + 9)
        if end < 0:
            raise XmlSyntaxError("unterminated CDATA section", position)
        token = Token(
            kind=TokenKind.CDATA,
            text=text[position + 9:end],
            start=position if self._track_positions else 0,
            end=end + 3 if self._track_positions else 0,
        )
        return token, end + 3

    def _read_doctype(self, position: int) -> tuple[Token, int]:
        text = self._text
        length = self._length
        cursor = position + len("<!DOCTYPE")
        depth = 0
        while cursor < length:
            character = text[cursor]
            if character == "[":
                depth += 1
            elif character == "]":
                depth -= 1
            elif character == ">" and depth <= 0:
                token = Token(
                    kind=TokenKind.DOCTYPE,
                    text=text[position + len("<!DOCTYPE"):cursor].strip(),
                    start=position if self._track_positions else 0,
                    end=cursor + 1 if self._track_positions else 0,
                )
                return token, cursor + 1
            cursor += 1
        raise XmlSyntaxError("unterminated DOCTYPE declaration", position)

    def _read_end_tag(self, position: int) -> tuple[Token, int]:
        text = self._text
        length = self._length
        cursor = position + 2
        name_start = cursor
        cursor = self._scan_name(cursor, "closing tag")
        name = text[name_start:cursor]
        while cursor < length and text[cursor] in _WHITESPACE:
            cursor += 1
        if cursor >= length or text[cursor] != ">":
            raise XmlSyntaxError(f"malformed closing tag </{name}", position)
        token = Token(
            kind=TokenKind.END_TAG,
            name=name,
            start=position if self._track_positions else 0,
            end=cursor + 1 if self._track_positions else 0,
        )
        return token, cursor + 1

    def _read_start_tag(self, position: int, start: int) -> tuple[Token, int]:
        text = self._text
        length = self._length
        cursor = position + 1
        name_start = cursor
        cursor = self._scan_name(cursor, "opening tag")
        name = text[name_start:cursor]
        attributes: list[tuple[str, str]] = []
        while True:
            while cursor < length and text[cursor] in _WHITESPACE:
                cursor += 1
            if cursor >= length:
                raise XmlSyntaxError(f"unterminated tag <{name}", position)
            character = text[cursor]
            if character == ">":
                token = Token(
                    kind=TokenKind.START_TAG,
                    name=name,
                    attributes=tuple(attributes),
                    start=start if self._track_positions else 0,
                    end=cursor + 1 if self._track_positions else 0,
                )
                return token, cursor + 1
            if character == "/":
                if cursor + 1 >= length or text[cursor + 1] != ">":
                    raise XmlSyntaxError(f"malformed empty-element tag <{name}", position)
                token = Token(
                    kind=TokenKind.EMPTY_TAG,
                    name=name,
                    attributes=tuple(attributes),
                    start=start if self._track_positions else 0,
                    end=cursor + 2 if self._track_positions else 0,
                )
                return token, cursor + 2
            attribute_start = cursor
            cursor = self._scan_name(cursor, "attribute")
            attribute_name = text[attribute_start:cursor]
            while cursor < length and text[cursor] in _WHITESPACE:
                cursor += 1
            if cursor >= length or text[cursor] != "=":
                raise XmlSyntaxError(
                    f"attribute {attribute_name!r} in <{name}> has no value", position
                )
            cursor += 1
            while cursor < length and text[cursor] in _WHITESPACE:
                cursor += 1
            if cursor >= length or text[cursor] not in ("'", '"'):
                raise XmlSyntaxError(
                    f"attribute {attribute_name!r} in <{name}> is not quoted", position
                )
            quote = text[cursor]
            value_end = text.find(quote, cursor + 1)
            if value_end < 0:
                raise XmlSyntaxError(
                    f"unterminated attribute value for {attribute_name!r}", position
                )
            attributes.append((attribute_name, text[cursor + 1:value_end]))
            cursor = value_end + 1

    def _scan_name(self, cursor: int, context: str) -> int:
        text = self._text
        length = self._length
        if cursor >= length or not is_name_start_char(text[cursor]):
            raise XmlSyntaxError(f"invalid {context} name", cursor)
        cursor += 1
        while cursor < length and is_name_char(text[cursor]):
            cursor += 1
        return cursor

    # ------------------------------------------------------------------
    # Character data
    # ------------------------------------------------------------------
    def _read_text(self, position: int) -> tuple[Token, int]:
        text = self._text
        end = text.find("<", position)
        if end < 0:
            end = self._length
        content = text[position:end]
        token = Token(
            kind=TokenKind.TEXT,
            text=content,
            start=position if self._track_positions else 0,
            end=end if self._track_positions else 0,
        )
        return token, end


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` and return the full token list."""
    return list(XmlTokenizer(text).tokens())


def structural_tokens(text: str) -> list[Token]:
    """Tokenize ``text`` keeping only tags and character data.

    This is the token sequence the paper's projection semantics is defined
    over (Section III).
    """
    return [token for token in XmlTokenizer(text).tokens() if token.is_structural]


def iter_tokens(chunks: Iterable[str]) -> Iterator[Token]:
    """Tokenize a document provided as an iterable of string chunks.

    The chunks are concatenated before tokenization; the helper exists so the
    streaming engines and the benchmarks share a single entry point for
    chunked inputs.
    """
    return XmlTokenizer("".join(chunks)).tokens()
