"""Streaming XML tokenizer (the SAX-parser baseline of the paper).

The tokenizer plays the role Xerces plays in Figure 7(c): it turns the input
into a stream of tokens by inspecting *every* character.  It is deliberately
written as a single forward scan with no skipping so that comparing it with
the SMP runtime reproduces the paper's claim that "prefiltering systems that
rely on a tokenization of their input cannot compete" with string-matching
based prefiltering.

The parser is non-validating but checks well-formedness of what it sees:
balanced tags, properly quoted attributes, legal names.  DOCTYPE declarations
(including an internal subset), comments, CDATA sections, processing
instructions and the XML declaration are recognised and reported as their own
token kinds.
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Iterable, Iterator

from repro.accel import load_accel
from repro.errors import XmlSyntaxError
from repro.xml.escape import is_name_char, is_name_start_char
from repro.xml.tokens import Token, TokenKind

_WHITESPACE = " \t\r\n"

#: ASCII run of XML name characters -- exactly the characters for which
#: :func:`is_name_char` is true in the ASCII range.  The predicate itself
#: accepts non-ASCII alphanumerics (``str.isalnum``), which no regex class
#: reproduces, so :meth:`XmlTokenizer._scan_name` consumes ASCII runs with
#: this pattern and falls back to the per-character predicate only on
#: non-ASCII name characters.
_ASCII_NAME_RUN = re.compile(r"[0-9A-Za-z_:.\-]*")


class TokenizerStatistics:
    """Counters describing the work performed by the tokenizer."""

    def __init__(self) -> None:
        self.characters_read = 0
        self.tokens_emitted = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "characters_read": self.characters_read,
            "tokens_emitted": self.tokens_emitted,
        }


def _register_token(
    token: Token, open_elements: list[str], seen_root: bool
) -> bool:
    """Well-formedness bookkeeping shared by the batch and session tokenizers.

    Maintains the ``open_elements`` stack in place and returns the updated
    ``seen_root`` flag; raises :class:`XmlSyntaxError` on structural errors.
    """
    kind = token.kind
    if kind is TokenKind.START_TAG:
        if not open_elements:
            if seen_root:
                raise XmlSyntaxError("multiple root elements", token.start)
            seen_root = True
        open_elements.append(token.name)
    elif kind is TokenKind.EMPTY_TAG:
        if not open_elements:
            if seen_root:
                raise XmlSyntaxError("multiple root elements", token.start)
            seen_root = True
    elif kind is TokenKind.END_TAG:
        if not open_elements:
            raise XmlSyntaxError(
                f"closing tag </{token.name}> without matching opening tag",
                token.start,
            )
        expected = open_elements.pop()
        if expected != token.name:
            raise XmlSyntaxError(
                f"mismatched closing tag </{token.name}>, expected </{expected}>",
                token.start,
            )
    elif kind is TokenKind.TEXT:
        if token.text.strip() and not open_elements:
            raise XmlSyntaxError(
                "character data outside of the root element", token.start
            )
    return seen_root


class XmlTokenizer:
    """Tokenize an XML document held in a string.

    Parameters
    ----------
    text:
        The document text.
    track_positions:
        When True (default) each token records its source offsets.
    """

    def __init__(self, text: str, track_positions: bool = True) -> None:
        self._text = text
        self._length = len(text)
        self._track_positions = track_positions
        self.stats = TokenizerStatistics()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        """Yield the document's tokens in order."""
        text = self._text
        length = self._length
        position = 0
        open_elements: list[str] = []
        seen_root = False
        while position < length:
            if text[position] == "<":
                token, position = self._read_markup(position)
                if token is None:
                    continue
            else:
                token, position = self._read_text(position)
            seen_root = _register_token(token, open_elements, seen_root)
            self.stats.tokens_emitted += 1
            yield token
        if open_elements:
            raise XmlSyntaxError(
                f"unexpected end of document; unclosed element <{open_elements[-1]}>",
                length,
            )
        self.stats.characters_read = length

    # ------------------------------------------------------------------
    # Markup
    # ------------------------------------------------------------------
    def _read_markup(self, position: int) -> tuple[Token | None, int]:
        text = self._text
        length = self._length
        start = position
        if position + 1 >= length:
            raise XmlSyntaxError("unexpected end of document after '<'", position)
        nxt = text[position + 1]
        if nxt == "?":
            return self._read_processing_instruction(position)
        if nxt == "!":
            if text.startswith("<!--", position):
                return self._read_comment(position)
            if text.startswith("<![CDATA[", position):
                return self._read_cdata(position)
            if text.startswith("<!DOCTYPE", position):
                return self._read_doctype(position)
            raise XmlSyntaxError("unrecognised markup declaration", position)
        if nxt == "/":
            return self._read_end_tag(position)
        return self._read_start_tag(position, start)

    def _read_processing_instruction(self, position: int) -> tuple[Token, int]:
        text = self._text
        end = text.find("?>", position + 2)
        if end < 0:
            raise XmlSyntaxError("unterminated processing instruction", position)
        content = text[position + 2:end]
        target, _, rest = content.partition(" ")
        kind = (
            TokenKind.XML_DECLARATION
            if target.lower() == "xml"
            else TokenKind.PROCESSING_INSTRUCTION
        )
        token = Token(
            kind=kind,
            name=target,
            text=rest,
            start=position if self._track_positions else 0,
            end=end + 2 if self._track_positions else 0,
        )
        return token, end + 2

    def _read_comment(self, position: int) -> tuple[Token, int]:
        text = self._text
        end = text.find("-->", position + 4)
        if end < 0:
            raise XmlSyntaxError("unterminated comment", position)
        token = Token(
            kind=TokenKind.COMMENT,
            text=text[position + 4:end],
            start=position if self._track_positions else 0,
            end=end + 3 if self._track_positions else 0,
        )
        return token, end + 3

    def _read_cdata(self, position: int) -> tuple[Token, int]:
        text = self._text
        end = text.find("]]>", position + 9)
        if end < 0:
            raise XmlSyntaxError("unterminated CDATA section", position)
        token = Token(
            kind=TokenKind.CDATA,
            text=text[position + 9:end],
            start=position if self._track_positions else 0,
            end=end + 3 if self._track_positions else 0,
        )
        return token, end + 3

    def _read_doctype(self, position: int) -> tuple[Token, int]:
        # Vectorized bracket-depth scan: candidate delimiters come from
        # C-level ``find`` instead of a per-character loop, processed in
        # text order so the depth bookkeeping is unchanged.
        text = self._text
        length = self._length
        cursor = position + len("<!DOCTYPE")
        depth = 0
        while True:
            gt = text.find(">", cursor)
            limit = length if gt < 0 else gt
            lb = text.find("[", cursor, limit)
            rb = text.find("]", cursor, limit)
            if lb >= 0 and (rb < 0 or lb < rb):
                depth += 1
                cursor = lb + 1
                continue
            if rb >= 0:
                depth -= 1
                cursor = rb + 1
                continue
            if gt < 0:
                raise XmlSyntaxError("unterminated DOCTYPE declaration", position)
            if depth <= 0:
                token = Token(
                    kind=TokenKind.DOCTYPE,
                    text=text[position + len("<!DOCTYPE"):gt].strip(),
                    start=position if self._track_positions else 0,
                    end=gt + 1 if self._track_positions else 0,
                )
                return token, gt + 1
            cursor = gt + 1  # a '>' inside the internal subset

    def _read_end_tag(self, position: int) -> tuple[Token, int]:
        text = self._text
        length = self._length
        cursor = position + 2
        name_start = cursor
        cursor = self._scan_name(cursor, "closing tag")
        name = text[name_start:cursor]
        while cursor < length and text[cursor] in _WHITESPACE:
            cursor += 1
        if cursor >= length or text[cursor] != ">":
            raise XmlSyntaxError(f"malformed closing tag </{name}", position)
        token = Token(
            kind=TokenKind.END_TAG,
            name=name,
            start=position if self._track_positions else 0,
            end=cursor + 1 if self._track_positions else 0,
        )
        return token, cursor + 1

    def _read_start_tag(self, position: int, start: int) -> tuple[Token, int]:
        text = self._text
        length = self._length
        cursor = position + 1
        name_start = cursor
        cursor = self._scan_name(cursor, "opening tag")
        name = text[name_start:cursor]
        attributes: list[tuple[str, str]] = []
        while True:
            while cursor < length and text[cursor] in _WHITESPACE:
                cursor += 1
            if cursor >= length:
                raise XmlSyntaxError(f"unterminated tag <{name}", position)
            character = text[cursor]
            if character == ">":
                token = Token(
                    kind=TokenKind.START_TAG,
                    name=name,
                    attributes=tuple(attributes),
                    start=start if self._track_positions else 0,
                    end=cursor + 1 if self._track_positions else 0,
                )
                return token, cursor + 1
            if character == "/":
                if cursor + 1 >= length or text[cursor + 1] != ">":
                    raise XmlSyntaxError(f"malformed empty-element tag <{name}", position)
                token = Token(
                    kind=TokenKind.EMPTY_TAG,
                    name=name,
                    attributes=tuple(attributes),
                    start=start if self._track_positions else 0,
                    end=cursor + 2 if self._track_positions else 0,
                )
                return token, cursor + 2
            attribute_start = cursor
            cursor = self._scan_name(cursor, "attribute")
            attribute_name = text[attribute_start:cursor]
            while cursor < length and text[cursor] in _WHITESPACE:
                cursor += 1
            if cursor >= length or text[cursor] != "=":
                raise XmlSyntaxError(
                    f"attribute {attribute_name!r} in <{name}> has no value", position
                )
            cursor += 1
            while cursor < length and text[cursor] in _WHITESPACE:
                cursor += 1
            if cursor >= length or text[cursor] not in ("'", '"'):
                raise XmlSyntaxError(
                    f"attribute {attribute_name!r} in <{name}> is not quoted", position
                )
            quote = text[cursor]
            value_end = text.find(quote, cursor + 1)
            if value_end < 0:
                raise XmlSyntaxError(
                    f"unterminated attribute value for {attribute_name!r}", position
                )
            attributes.append((attribute_name, text[cursor + 1:value_end]))
            cursor = value_end + 1

    def _scan_name(self, cursor: int, context: str) -> int:
        text = self._text
        length = self._length
        if cursor >= length or not is_name_start_char(text[cursor]):
            raise XmlSyntaxError(f"invalid {context} name", cursor)
        cursor += 1
        while True:
            # ASCII runs in one C-level regex step; only non-ASCII name
            # characters (Unicode alphanumerics) take the per-character
            # predicate, then the run scan resumes.
            cursor = _ASCII_NAME_RUN.match(text, cursor, length).end()
            if cursor < length and is_name_char(text[cursor]):
                cursor += 1
                continue
            return cursor

    # ------------------------------------------------------------------
    # Character data
    # ------------------------------------------------------------------
    def _read_text(self, position: int) -> tuple[Token, int]:
        text = self._text
        end = text.find("<", position)
        if end < 0:
            end = self._length
        content = text[position:end]
        token = Token(
            kind=TokenKind.TEXT,
            text=content,
            start=position if self._track_positions else 0,
            end=end if self._track_positions else 0,
        )
        return token, end


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` and return the full token list."""
    return list(XmlTokenizer(text).tokens())


def structural_tokens(text: str) -> list[Token]:
    """Tokenize ``text`` keeping only tags and character data.

    This is the token sequence the paper's projection semantics is defined
    over (Section III).
    """
    return [token for token in XmlTokenizer(text).tokens() if token.is_structural]


class TokenizerSession:
    """Incremental tokenizer: feed chunks, collect tokens as they complete.

    The session buffers only the current incomplete token (bounded by the
    largest single token of the document, e.g. one text node or one tag with
    its attributes), so tokenizing a chunked stream runs in O(chunk + token)
    memory.  The emitted token sequence, the well-formedness checks and the
    error messages are identical to :class:`XmlTokenizer` over the
    concatenated input; token offsets are absolute stream offsets.
    """

    def __init__(self, track_positions: bool = True) -> None:
        self._buffer = ""
        self._base = 0              # absolute offset of buffer[0]
        self._fed = 0
        self._eof = False
        self._finished = False
        self._open_elements: list[str] = []
        self._seen_root = False
        self._track_positions = track_positions
        self._scratch = XmlTokenizer("", track_positions)
        # Resumable completeness-scan state for the current head token.
        self._scan = 0              # local offset the delimiter scan reached
        self._doctype_depth = 0     # bracket depth inside <!DOCTYPE ... >
        self._quote = ""            # open quote character inside a tag
        # Optional C boundary kernel: one vectorized pass per fed window
        # finds how far the buffer holds only complete tokens, so the
        # drain loop never re-scans per token in Python (latin-1 buffers
        # only; the kernel declines wider text and the loop takes over).
        accel = load_accel()
        self._boundary = (
            getattr(accel, "scan_str_tokens", None)
            if accel is not None else None
        )
        self.stats = TokenizerStatistics()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def feed(self, chunk: str) -> list[Token]:
        """Buffer ``chunk`` and return the tokens completed by it."""
        if self._finished:
            raise XmlSyntaxError("cannot feed a finished tokenizer session")
        self._fed += len(chunk)
        self._buffer += chunk
        return self._drain()

    def finish(self) -> list[Token]:
        """Signal end of input and return the remaining tokens.

        Raises :class:`XmlSyntaxError` when the stream ends inside a token
        or with unclosed elements, with the same messages as the batch
        tokenizer.
        """
        if self._finished:
            raise XmlSyntaxError("tokenizer session is already finished")
        self._eof = True
        tokens = self._drain()
        self._finished = True
        if self._open_elements:
            raise XmlSyntaxError(
                "unexpected end of document; unclosed element "
                f"<{self._open_elements[-1]}>",
                self._fed,
            )
        self.stats.characters_read = self._fed
        return tokens

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def _drain(self) -> list[Token]:
        # Tokens are extracted at a moving offset and the buffer is sliced
        # once at the end, so a chunk full of small tokens drains in linear
        # rather than quadratic time.
        tokens: list[Token] = []
        offset = 0
        boundary = self._boundary
        if boundary is not None and self._buffer:
            result = boundary(
                self._buffer, self._eof, self._scan, self._doctype_depth,
                ord(self._quote) if self._quote else 0,
            )
            if result is not None:
                # One C pass found the complete-token frontier (and the
                # resume state of the incomplete tail): the readers below
                # run without any per-token completeness re-scan.
                complete_until, scan, depth, quote = result
                while offset < complete_until:
                    consumed = self._read_at(offset, tokens)
                    if consumed <= 0:
                        break
                    offset += consumed
                if offset:
                    self._buffer = self._buffer[offset:]
                    self._base += offset
                self._scan = scan
                self._doctype_depth = depth
                self._quote = chr(quote) if quote else ""
                return tokens
        while True:
            consumed = self._extract_one(offset, tokens)
            if consumed == 0:
                break
            offset += consumed
        if offset:
            self._buffer = self._buffer[offset:]
            self._base += offset
        return tokens

    def _extract_one(self, offset: int, tokens: list[Token]) -> int:
        """Extract the token starting at ``offset``; returns chars consumed.

        A return of 0 means the token (or the decision which construct it
        is) needs more input.
        """
        buffer = self._buffer
        length = len(buffer)
        if offset >= length:
            return 0
        if buffer[offset] == "<":
            if not self._eof and self._markup_end(buffer, offset) < 0:
                return 0
        else:
            lt = buffer.find("<", offset + self._scan)
            if lt < 0 and not self._eof:
                self._scan = length - offset
                return 0
        consumed = self._read_at(offset, tokens)
        self._scan = 0
        self._doctype_depth = 0
        self._quote = ""
        return consumed

    def _read_at(self, offset: int, tokens: list[Token]) -> int:
        """Run the batch reader on the complete token at ``offset``.

        The caller has already decided the token is complete (or that end
        of input makes the reader's own error the right outcome); this
        performs the read, the error/offset rebasing and the
        well-formedness bookkeeping, and returns the characters consumed.
        """
        buffer = self._buffer
        reader = (
            self._scratch._read_markup
            if buffer[offset] == "<"
            else self._scratch._read_text
        )
        self._scratch._text = buffer
        self._scratch._length = len(buffer)
        try:
            token, end = reader(offset)
        except XmlSyntaxError as error:
            if error.position is not None and self._base:
                message = str(error).rsplit(" (at offset ", 1)[0]
                raise XmlSyntaxError(message, error.position + self._base) from None
            raise
        if token is not None:
            if self._track_positions and self._base:
                token = replace(
                    token, start=token.start + self._base, end=token.end + self._base
                )
            self._seen_root = _register_token(
                token, self._open_elements, self._seen_root
            )
            self.stats.tokens_emitted += 1
            tokens.append(token)
        return end - offset

    def _markup_end(self, buffer: str, offset: int) -> int:
        """End offset of the markup construct at ``buffer[offset]``, or -1.

        Advances the resumable scan state (kept relative to ``offset``) so
        repeated calls never re-scan already inspected characters.  A return
        of -1 means the construct (or the decision which construct it is)
        needs more input; any other value means the batch reader can consume
        it now -- including malformed declarations, which it reports with
        the batch error.
        """
        length = len(buffer)
        if length - offset < 2:
            return -1
        second = buffer[offset + 1]
        if second == "?":
            found = buffer.find("?>", offset + max(self._scan, 2))
            if found < 0:
                self._scan = max(2, length - offset - 1)
                return -1
            return found + 2
        if second == "!":
            for prefix, terminator, body_start in (
                ("<!--", "-->", 4),
                ("<![CDATA[", "]]>", 9),
            ):
                if buffer.startswith(prefix, offset):
                    found = buffer.find(terminator, offset + max(self._scan, body_start))
                    if found < 0:
                        self._scan = max(
                            body_start, length - offset - len(terminator) + 1
                        )
                        return -1
                    return found + len(terminator)
                if prefix.startswith(buffer[offset:offset + len(prefix)]):
                    return -1  # still ambiguous: wait for the full prefix
            if buffer.startswith("<!DOCTYPE", offset):
                # Same vectorized bracket-depth scan as the batch reader,
                # with the depth carried across suspensions.
                cursor = offset + max(self._scan, 9)
                depth = self._doctype_depth
                while True:
                    gt = buffer.find(">", cursor)
                    limit = length if gt < 0 else gt
                    lb = buffer.find("[", cursor, limit)
                    rb = buffer.find("]", cursor, limit)
                    if lb >= 0 and (rb < 0 or lb < rb):
                        depth += 1
                        cursor = lb + 1
                        continue
                    if rb >= 0:
                        depth -= 1
                        cursor = rb + 1
                        continue
                    if gt >= 0 and depth <= 0:
                        self._doctype_depth = depth
                        return gt + 1
                    if gt < 0:
                        self._doctype_depth = depth
                        self._scan = length - offset
                        return -1
                    cursor = gt + 1  # a '>' inside the internal subset
            if "<!DOCTYPE".startswith(buffer[offset:offset + 9]):
                return -1
            return length  # unrecognised declaration: the reader raises
        # A start or end tag: scan for '>' outside quoted attribute values.
        # Vectorized like the runtime's end-of-tag scan: candidate '>' and
        # quote positions come from C-level ``find``, and an opened quote is
        # recorded even when no '>' is in the window so the resumed scan
        # skips a quoted '>' in the next chunk correctly.
        cursor = offset + max(self._scan, 1)
        while True:
            if self._quote:
                closing = buffer.find(self._quote, cursor)
                if closing < 0:
                    self._scan = length - offset
                    return -1
                self._quote = ""
                cursor = closing + 1
            gt = buffer.find(">", cursor)
            limit = length if gt < 0 else gt
            dq = buffer.find('"', cursor, limit)
            sq = buffer.find("'", cursor, limit)
            if dq < 0 and sq < 0:
                if gt < 0:
                    self._scan = length - offset
                    return -1
                return gt + 1
            if dq >= 0 and (sq < 0 or dq < sq):
                self._quote, cursor = '"', dq + 1
            else:
                self._quote, cursor = "'", sq + 1


def iter_tokens(chunks: Iterable[str]) -> Iterator[Token]:
    """Tokenize a document provided as an iterable of string chunks.

    The chunks flow through a :class:`TokenizerSession`, so the document is
    never materialised as a whole; the streaming engines and the benchmarks
    share this entry point for chunked inputs.
    """
    session = TokenizerSession()
    for chunk in chunks:
        yield from session.feed(chunk)
    yield from session.finish()
