"""Serialization of token streams back to XML text.

The token-based reference projector produces a filtered token stream; this
module turns such streams back into well-formed XML text so that its output
can be compared byte-for-byte (modulo whitespace) with the SMP runtime's
output and fed to the downstream query engines.
"""

from __future__ import annotations

from typing import Iterable

from repro.xml.escape import escape_attribute
from repro.xml.tokens import Token, TokenKind


def serialize_token(token: Token) -> str:
    """Serialize a single token to XML text."""
    if token.kind is TokenKind.START_TAG:
        return f"<{token.name}{_serialize_attributes(token)}>"
    if token.kind is TokenKind.EMPTY_TAG:
        return f"<{token.name}{_serialize_attributes(token)}/>"
    if token.kind is TokenKind.END_TAG:
        return f"</{token.name}>"
    if token.kind in (TokenKind.TEXT,):
        # Text tokens carry the raw source slice (entity references are left
        # unexpanded by the tokenizer), so they are emitted verbatim; this
        # keeps token-level projection byte-compatible with the SMP runtime,
        # which copies raw input ranges.
        return token.text
    if token.kind is TokenKind.CDATA:
        return f"<![CDATA[{token.text}]]>"
    if token.kind is TokenKind.COMMENT:
        return f"<!--{token.text}-->"
    if token.kind is TokenKind.PROCESSING_INSTRUCTION:
        separator = " " if token.text else ""
        return f"<?{token.name}{separator}{token.text}?>"
    if token.kind is TokenKind.XML_DECLARATION:
        separator = " " if token.text else ""
        return f"<?xml{separator}{token.text}?>"
    if token.kind is TokenKind.DOCTYPE:
        return f"<!DOCTYPE {token.text}>"
    raise ValueError(f"cannot serialize token kind {token.kind!r}")


def _serialize_attributes(token: Token) -> str:
    return "".join(
        f' {name}="{escape_attribute(value)}"' for name, value in token.attributes
    )


def serialize_tokens(tokens: Iterable[Token]) -> str:
    """Serialize a token stream to XML text."""
    return "".join(serialize_token(token) for token in tokens)


def strip_insignificant_whitespace(tokens: Iterable[Token]) -> list[Token]:
    """Drop text tokens that contain only whitespace.

    Useful for comparing projected documents, where formatting whitespace
    between tags carries no information (the paper notes that differences
    between SMP and type-based projection output sizes "are mainly due to
    whitespace formatting").
    """
    return [
        token
        for token in tokens
        if not (token.kind is TokenKind.TEXT and not token.text.strip())
    ]
