"""Minimal SAX-style event API on top of the tokenizer.

The streaming XPath evaluator (SPEX analogue) and the token-based reference
projector both consume documents as SAX events.  The handler interface is a
small subset of the classical SAX ContentHandler: element start/end and
character data, which are exactly the token kinds the paper's formal
development uses.
"""

from __future__ import annotations

from typing import Iterable

from repro.xml.tokenizer import TokenizerSession, XmlTokenizer
from repro.xml.tokens import Token, TokenKind


class SaxHandler:
    """Base class for SAX-style content handlers.

    Subclasses override the callbacks they need; the defaults do nothing.
    """

    def start_document(self) -> None:
        """Called once before any other event."""

    def end_document(self) -> None:
        """Called once after all other events."""

    def start_element(self, name: str, attributes: dict[str, str]) -> None:
        """Called for each opening tag (and for bachelor tags, before end)."""

    def end_element(self, name: str) -> None:
        """Called for each closing tag (and for bachelor tags, after start)."""

    def characters(self, content: str) -> None:
        """Called for character data (text and CDATA)."""


def dispatch_token(token: Token, handler: SaxHandler) -> None:
    """Deliver one token to ``handler`` as SAX events.

    Bachelor tags produce a ``start_element`` immediately followed by an
    ``end_element``, mirroring how the SMP runtime treats them (Figure 4:
    "evaluate the steps for the opening tag and the closing tag one after
    the other").
    """
    if token.kind is TokenKind.START_TAG:
        handler.start_element(token.name, dict(token.attributes))
    elif token.kind is TokenKind.EMPTY_TAG:
        handler.start_element(token.name, dict(token.attributes))
        handler.end_element(token.name)
    elif token.kind is TokenKind.END_TAG:
        handler.end_element(token.name)
    elif token.kind in (TokenKind.TEXT, TokenKind.CDATA):
        handler.characters(token.text)


def drive_handler(tokens: Iterable[Token], handler: SaxHandler) -> None:
    """Feed a token stream to ``handler`` as SAX events."""
    handler.start_document()
    for token in tokens:
        dispatch_token(token, handler)
    handler.end_document()


def parse_with_handler(text: str, handler: SaxHandler) -> None:
    """Tokenize ``text`` and stream the events into ``handler``."""
    drive_handler(XmlTokenizer(text).tokens(), handler)


class SaxSession:
    """Incremental SAX driver: feed text chunks, receive events as they
    complete.

    Wraps a :class:`~repro.xml.tokenizer.TokenizerSession`, so memory use is
    bounded by the largest single token rather than the document.  The event
    sequence is identical to :func:`parse_with_handler` over the
    concatenated input; this is the piece that lets the SMP prefilter's
    incremental output flow straight into SAX consumers (e.g. the streaming
    XPath engine) without an intermediate whole-document string.
    """

    def __init__(self, handler: SaxHandler) -> None:
        self.handler = handler
        self._tokens = TokenizerSession()
        handler.start_document()

    def feed(self, chunk: str) -> None:
        """Tokenize ``chunk`` and dispatch every completed event."""
        for token in self._tokens.feed(chunk):
            dispatch_token(token, self.handler)

    def finish(self) -> None:
        """Flush the final events and deliver ``end_document``."""
        for token in self._tokens.finish():
            dispatch_token(token, self.handler)
        self.handler.end_document()


def parse_chunks(chunks: Iterable[str], handler: SaxHandler) -> None:
    """Stream a chunked document into ``handler`` without concatenating it."""
    session = SaxSession(handler)
    for chunk in chunks:
        session.feed(chunk)
    session.finish()


class EventCollector(SaxHandler):
    """A handler that records events as tuples; used by tests and examples."""

    def __init__(self) -> None:
        self.events: list[tuple[str, ...]] = []

    def start_document(self) -> None:
        self.events.append(("start-document",))

    def end_document(self) -> None:
        self.events.append(("end-document",))

    def start_element(self, name: str, attributes: dict[str, str]) -> None:
        self.events.append(("start", name, tuple(sorted(attributes.items()))))

    def end_element(self, name: str) -> None:
        self.events.append(("end", name))

    def characters(self, content: str) -> None:
        self.events.append(("text", content))
