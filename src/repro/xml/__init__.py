"""XML substrate: tokens, tokenizer, SAX events, tree model, serialization."""

from repro.xml.escape import (
    escape_attribute,
    escape_text,
    is_name_char,
    is_name_start_char,
    is_valid_name,
    unescape,
)
from repro.xml.sax import EventCollector, SaxHandler, drive_handler, parse_with_handler
from repro.xml.serialize import (
    serialize_token,
    serialize_tokens,
    strip_insignificant_whitespace,
)
from repro.xml.tokenizer import XmlTokenizer, structural_tokens, tokenize
from repro.xml.tokens import Token, TokenKind, empty_tag, end_tag, start_tag, text
from repro.xml.tree import (
    TreeBuilder,
    XmlDocument,
    XmlElement,
    XmlNode,
    XmlText,
    build_from_tokens,
    element,
    parse_document,
    walk,
)

__all__ = [
    "EventCollector",
    "SaxHandler",
    "Token",
    "TokenKind",
    "TreeBuilder",
    "XmlDocument",
    "XmlElement",
    "XmlNode",
    "XmlText",
    "XmlTokenizer",
    "build_from_tokens",
    "drive_handler",
    "element",
    "empty_tag",
    "end_tag",
    "escape_attribute",
    "escape_text",
    "is_name_char",
    "is_name_start_char",
    "is_valid_name",
    "parse_document",
    "parse_with_handler",
    "serialize_token",
    "serialize_tokens",
    "start_tag",
    "strip_insignificant_whitespace",
    "structural_tokens",
    "text",
    "tokenize",
    "unescape",
    "walk",
]
