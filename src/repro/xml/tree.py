"""In-memory XML tree.

This is the data model used by the in-memory query engine (the QizX analogue
of Figure 7(a)) and by the correctness tests that compare query results on
original and projected documents.  The representation is intentionally plain:
element nodes with ordered children, text nodes, and a document wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.errors import XmlSyntaxError
from repro.xml.escape import escape_attribute, escape_text, unescape
from repro.xml.tokenizer import XmlTokenizer
from repro.xml.tokens import Token, TokenKind


def _decode_attributes(token: Token) -> dict[str, str]:
    """Resolve entity references in attribute values (the tree holds logical values)."""
    return {name: unescape(value) for name, value in token.attributes}


@dataclass
class XmlText:
    """A character-data node."""

    content: str
    parent: "XmlElement | None" = field(default=None, repr=False, compare=False)

    def serialize(self) -> str:
        """Serialize the node, escaping markup characters."""
        return escape_text(self.content)


@dataclass
class XmlElement:
    """An element node with ordered attributes and children."""

    name: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["XmlNode"] = field(default_factory=list)
    parent: "XmlElement | None" = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def append(self, child: "XmlNode") -> "XmlNode":
        """Append ``child`` and set its parent pointer."""
        child.parent = self
        self.children.append(child)
        return child

    def add_element(self, name: str, attributes: dict[str, str] | None = None) -> "XmlElement":
        """Create, append, and return a child element."""
        element = XmlElement(name=name, attributes=dict(attributes or {}))
        self.append(element)
        return element

    def add_text(self, content: str) -> XmlText:
        """Create, append, and return a text child."""
        text = XmlText(content=content)
        self.append(text)
        return text

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    @property
    def child_elements(self) -> list["XmlElement"]:
        """The element children, in document order."""
        return [child for child in self.children if isinstance(child, XmlElement)]

    def iter_descendants(self, include_self: bool = False) -> Iterator["XmlElement"]:
        """Yield descendant elements in document order."""
        if include_self:
            yield self
        for child in self.children:
            if isinstance(child, XmlElement):
                yield from child.iter_descendants(include_self=True)

    def iter_nodes(self, include_self: bool = True) -> Iterator["XmlNode"]:
        """Yield all nodes (elements and text) in document order."""
        if include_self:
            yield self
        for child in self.children:
            if isinstance(child, XmlElement):
                yield from child.iter_nodes(include_self=True)
            else:
                yield child

    def find_children(self, name: str) -> list["XmlElement"]:
        """Child elements with tag ``name`` (``*`` matches any tag)."""
        return [
            child
            for child in self.child_elements
            if name == "*" or child.name == name
        ]

    def find_descendants(self, name: str) -> list["XmlElement"]:
        """Descendant elements with tag ``name`` (``*`` matches any tag)."""
        return [
            element
            for element in self.iter_descendants()
            if name == "*" or element.name == name
        ]

    def ancestors(self) -> list["XmlElement"]:
        """Ancestor elements from the parent up to the root."""
        result: list[XmlElement] = []
        node = self.parent
        while node is not None:
            result.append(node)
            node = node.parent
        return result

    def path_from_root(self) -> list["XmlElement"]:
        """Elements from the root down to (and including) this element."""
        return list(reversed(self.ancestors())) + [self]

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    def text_content(self) -> str:
        """Concatenated character data of the whole subtree."""
        pieces: list[str] = []
        for node in self.iter_nodes():
            if isinstance(node, XmlText):
                pieces.append(node.content)
        return "".join(pieces)

    def direct_text(self) -> str:
        """Concatenated character data of the direct text children only."""
        return "".join(
            child.content for child in self.children if isinstance(child, XmlText)
        )

    def attribute(self, name: str, default: str | None = None) -> str | None:
        """Value of attribute ``name`` or ``default``."""
        return self.attributes.get(name, default)

    # ------------------------------------------------------------------
    # Serialization and comparison
    # ------------------------------------------------------------------
    def serialize(self, *, indent: str | None = None, _level: int = 0) -> str:
        """Serialize the subtree rooted at this element."""
        attribute_text = "".join(
            f' {name}="{escape_attribute(value)}"' for name, value in self.attributes.items()
        )
        if not self.children:
            return f"<{self.name}{attribute_text}/>"
        pieces: list[str] = [f"<{self.name}{attribute_text}>"]
        for child in self.children:
            if isinstance(child, XmlElement):
                pieces.append(child.serialize(indent=indent, _level=_level + 1))
            else:
                pieces.append(child.serialize())
        pieces.append(f"</{self.name}>")
        if indent is None:
            return "".join(pieces)
        prefix = "\n" + indent * (_level + 1)
        closing_prefix = "\n" + indent * _level
        body = prefix + prefix.join(pieces[1:-1]) + closing_prefix if len(pieces) > 2 else ""
        return pieces[0] + body + pieces[-1]

    def structure_equal(self, other: "XmlElement", *, compare_text: bool = True) -> bool:
        """Structural equality (names, attributes, children, optionally text)."""
        if self.name != other.name or self.attributes != other.attributes:
            return False
        mine = [
            child
            for child in self.children
            if isinstance(child, XmlElement) or (compare_text and child.content.strip())
        ]
        theirs = [
            child
            for child in other.children
            if isinstance(child, XmlElement) or (compare_text and child.content.strip())
        ]
        if len(mine) != len(theirs):
            return False
        for left, right in zip(mine, theirs):
            if isinstance(left, XmlElement) != isinstance(right, XmlElement):
                return False
            if isinstance(left, XmlElement):
                if not left.structure_equal(right, compare_text=compare_text):
                    return False
            elif left.content.strip() != right.content.strip():
                return False
        return True

    def count_descendants(self) -> int:
        """Number of descendant elements (excluding this element)."""
        return sum(1 for _ in self.iter_descendants())


XmlNode = XmlElement | XmlText


@dataclass
class XmlDocument:
    """A parsed XML document: a root element plus prolog information."""

    root: XmlElement
    doctype: str | None = None
    declaration: str | None = None

    def serialize(self, *, indent: str | None = None) -> str:
        """Serialize the document back to XML text."""
        pieces: list[str] = []
        if self.declaration:
            pieces.append(f"<?xml {self.declaration}?>")
        if self.doctype:
            pieces.append(f"<!DOCTYPE {self.doctype}>")
        pieces.append(self.root.serialize(indent=indent))
        return "".join(pieces)

    def iter_elements(self) -> Iterator[XmlElement]:
        """Yield all elements of the document in document order."""
        return self.root.iter_descendants(include_self=True)

    def element_count(self) -> int:
        """Total number of elements in the document."""
        return sum(1 for _ in self.iter_elements())


class TreeBuilder:
    """Build an :class:`XmlDocument` from a token stream."""

    def __init__(self) -> None:
        self._stack: list[XmlElement] = []
        self._root: XmlElement | None = None
        self._doctype: str | None = None
        self._declaration: str | None = None

    def feed(self, token: Token) -> None:
        """Consume one token."""
        if token.kind is TokenKind.START_TAG:
            element = XmlElement(name=token.name, attributes=_decode_attributes(token))
            self._attach(element)
            self._stack.append(element)
        elif token.kind is TokenKind.EMPTY_TAG:
            element = XmlElement(name=token.name, attributes=_decode_attributes(token))
            self._attach(element)
        elif token.kind is TokenKind.END_TAG:
            if not self._stack:
                raise XmlSyntaxError(f"unexpected closing tag </{token.name}>", token.start)
            element = self._stack.pop()
            if element.name != token.name:
                raise XmlSyntaxError(
                    f"mismatched closing tag </{token.name}>, expected </{element.name}>",
                    token.start,
                )
        elif token.kind in (TokenKind.TEXT, TokenKind.CDATA):
            if self._stack:
                content = token.text if token.kind is TokenKind.CDATA else unescape(token.text)
                self._stack[-1].add_text(content)
            elif token.text.strip():
                raise XmlSyntaxError("character data outside the root element", token.start)
        elif token.kind is TokenKind.DOCTYPE:
            self._doctype = token.text
        elif token.kind is TokenKind.XML_DECLARATION:
            self._declaration = token.text
        # Comments and processing instructions are dropped: the projection
        # semantics of the paper is defined over tags and character data only.

    def _attach(self, element: XmlElement) -> None:
        if self._stack:
            self._stack[-1].append(element)
        elif self._root is None:
            self._root = element
        else:
            raise XmlSyntaxError("multiple root elements")

    def finish(self) -> XmlDocument:
        """Finish building and return the document."""
        if self._stack:
            raise XmlSyntaxError(f"unclosed element <{self._stack[-1].name}>")
        if self._root is None:
            raise XmlSyntaxError("document has no root element")
        return XmlDocument(root=self._root, doctype=self._doctype, declaration=self._declaration)


def parse_document(text: str) -> XmlDocument:
    """Parse ``text`` into an :class:`XmlDocument`."""
    builder = TreeBuilder()
    for token in XmlTokenizer(text).tokens():
        builder.feed(token)
    return builder.finish()


def build_from_tokens(tokens: Sequence[Token]) -> XmlDocument:
    """Build a document from an existing token sequence."""
    builder = TreeBuilder()
    for token in tokens:
        builder.feed(token)
    return builder.finish()


def element(name: str, *children: "XmlNode | str", **attributes: str) -> XmlElement:
    """Convenience constructor used heavily by the tests.

    String children become text nodes; attribute keyword arguments become
    attributes.  Example: ``element("a", element("b", "hi"), id="1")``.
    """
    node = XmlElement(name=name, attributes=dict(attributes))
    for child in children:
        if isinstance(child, str):
            node.add_text(child)
        else:
            node.append(child)
    return node


def walk(document: XmlDocument, visit: Callable[[XmlElement], None]) -> None:
    """Apply ``visit`` to every element of ``document`` in document order."""
    for node in document.iter_elements():
        visit(node)
