"""Escaping helpers for XML character data and attribute values.

The SMP technique relies on the XML rule that ``<`` never occurs literally in
character data or attribute values; these helpers enforce that rule when the
workload generators and serializers produce documents.
"""

from __future__ import annotations

_TEXT_REPLACEMENTS = (
    ("&", "&amp;"),
    ("<", "&lt;"),
    (">", "&gt;"),
)

_ATTRIBUTE_REPLACEMENTS = _TEXT_REPLACEMENTS + (
    ('"', "&quot;"),
    ("'", "&apos;"),
)

_UNESCAPE_REPLACEMENTS = (
    ("&lt;", "<"),
    ("&gt;", ">"),
    ("&quot;", '"'),
    ("&apos;", "'"),
    ("&amp;", "&"),
)


def escape_text(value: str) -> str:
    """Escape ``value`` for use as XML character data."""
    for raw, escaped in _TEXT_REPLACEMENTS:
        value = value.replace(raw, escaped)
    return value


def escape_attribute(value: str) -> str:
    """Escape ``value`` for use inside a double-quoted attribute."""
    for raw, escaped in _ATTRIBUTE_REPLACEMENTS:
        value = value.replace(raw, escaped)
    return value


def unescape(value: str) -> str:
    """Resolve the five predefined XML entity references."""
    for escaped, raw in _UNESCAPE_REPLACEMENTS:
        value = value.replace(escaped, raw)
    return value


def is_name_start_char(character: str) -> bool:
    """True if ``character`` may start an XML name (ASCII subset)."""
    return character.isalpha() or character in ("_", ":")


def is_name_char(character: str) -> bool:
    """True if ``character`` may occur inside an XML name (ASCII subset)."""
    return character.isalnum() or character in ("_", ":", "-", ".")


#: Per-byte-value verdicts of :func:`is_name_byte`.  ASCII bytes follow
#: :func:`is_name_char`; every byte >= 0x80 counts as a name byte because it
#: belongs to a multi-byte UTF-8 sequence (non-ASCII name characters), which
#: keeps the byte-native runtime's "tag name extends the keyword" test
#: aligned with the character-level test on conforming documents.
_NAME_BYTE_TABLE = tuple(
    byte >= 0x80 or is_name_char(chr(byte)) for byte in range(256)
)


def is_name_byte(byte: int) -> bool:
    """True if UTF-8 byte value ``byte`` may occur inside an XML name."""
    return _NAME_BYTE_TABLE[byte]


def is_valid_name(name: str) -> bool:
    """True if ``name`` is a well-formed XML name (ASCII subset)."""
    if not name:
        return False
    if not is_name_start_char(name[0]):
        return False
    return all(is_name_char(character) for character in name[1:])
