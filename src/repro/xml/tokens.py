"""Token model for the streaming XML tokenizer.

The paper works on documents ``D = t1 ... tn`` where every token ``ti`` is an
opening, closing, or bachelor tag, or character data (Section III).  The
tokenizer additionally produces prolog/comment/CDATA/DOCTYPE tokens so that
real-world documents round-trip, but the projection semantics only ever looks
at the four paper token kinds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TokenKind(enum.Enum):
    """Kinds of tokens produced by :class:`repro.xml.tokenizer.XmlTokenizer`."""

    START_TAG = "start-tag"
    END_TAG = "end-tag"
    EMPTY_TAG = "empty-tag"  # "bachelor tag" in the paper's terminology
    TEXT = "text"
    COMMENT = "comment"
    CDATA = "cdata"
    PROCESSING_INSTRUCTION = "processing-instruction"
    DOCTYPE = "doctype"
    XML_DECLARATION = "xml-declaration"


@dataclass(frozen=True)
class Token:
    """A single lexical token of an XML document.

    Attributes
    ----------
    kind:
        The token kind.
    name:
        Tag name for tag tokens, target for processing instructions, empty
        string otherwise.
    text:
        Character data for text/CDATA/comment tokens, raw content for
        DOCTYPE/declaration tokens, empty string otherwise.
    attributes:
        Attribute name/value pairs for start and empty tags, in document
        order.
    start, end:
        Character offsets of the token in the source text (``end`` is one
        past the last character).
    """

    kind: TokenKind
    name: str = ""
    text: str = ""
    attributes: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    start: int = 0
    end: int = 0

    # ------------------------------------------------------------------
    # Convenience predicates mirroring the paper's vocabulary
    # ------------------------------------------------------------------
    @property
    def is_start(self) -> bool:
        """True for an opening tag (``<a>``)."""
        return self.kind is TokenKind.START_TAG

    @property
    def is_end(self) -> bool:
        """True for a closing tag (``</a>``)."""
        return self.kind is TokenKind.END_TAG

    @property
    def is_empty(self) -> bool:
        """True for a bachelor tag (``<a/>``)."""
        return self.kind is TokenKind.EMPTY_TAG

    @property
    def is_tag(self) -> bool:
        """True for any of the three tag kinds."""
        return self.kind in (TokenKind.START_TAG, TokenKind.END_TAG, TokenKind.EMPTY_TAG)

    @property
    def is_text(self) -> bool:
        """True for character data (text or CDATA)."""
        return self.kind in (TokenKind.TEXT, TokenKind.CDATA)

    @property
    def is_structural(self) -> bool:
        """True for tokens the projection semantics considers (tags and text)."""
        return self.is_tag or self.is_text

    def attribute(self, name: str, default: str | None = None) -> str | None:
        """Return the value of attribute ``name`` or ``default``."""
        for attribute_name, value in self.attributes:
            if attribute_name == name:
                return value
        return default


def start_tag(name: str, attributes: tuple[tuple[str, str], ...] = (), start: int = 0, end: int = 0) -> Token:
    """Construct an opening-tag token."""
    return Token(kind=TokenKind.START_TAG, name=name, attributes=attributes, start=start, end=end)


def end_tag(name: str, start: int = 0, end: int = 0) -> Token:
    """Construct a closing-tag token."""
    return Token(kind=TokenKind.END_TAG, name=name, start=start, end=end)


def empty_tag(name: str, attributes: tuple[tuple[str, str], ...] = (), start: int = 0, end: int = 0) -> Token:
    """Construct a bachelor-tag token."""
    return Token(kind=TokenKind.EMPTY_TAG, name=name, attributes=attributes, start=start, end=end)


def text(content: str, start: int = 0, end: int = 0) -> Token:
    """Construct a character-data token."""
    return Token(kind=TokenKind.TEXT, text=content, start=start, end=end)
