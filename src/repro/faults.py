"""Deterministic fault injection for chaos-testing the execution layers.

The module exposes seeded, injectable failure points that the test suite
(and the CI chaos leg) can arm via a :class:`FaultPlan`:

* **worker crash** -- a pool worker hard-exits (``os._exit``) right before
  processing a document, as if the OOM killer or a segfault took it down;
* **worker hang** -- a worker blocks and *ignores* ``SIGTERM``, exercising
  the supervisor's per-document deadline and the pool's ``terminate`` →
  ``kill`` teardown escalation;
* **I/O error mid-chunk** -- file/stdin reads raise a transient ``OSError``
  (``EINTR``) between chunks, exercising :class:`~repro.core.sources.RetryPolicy`;
* **socket reset** -- ``socket_chunks`` raises ``ConnectionResetError``;
* **corrupted / truncated bytes** -- pure helpers (:func:`flip_bits`,
  :func:`truncate`, :func:`inject_garbage`) that deterministically damage a
  payload for malformed-input property tests;
* **slow consumer/producer** -- :func:`delay_chunks` wraps a chunk iterator
  with deterministic sleeps.

Design rules
------------

* **Deterministic.**  Every decision comes from a ``random.Random`` seeded
  with ``(plan.seed, scope, site)``.  The same plan + the same scope replays
  the same faults.  Worker processes arm themselves with a per-worker scope
  (fresh for every respawn), so a crashed-and-respawned worker does not
  deterministically crash in a loop.
* **Zero production overhead when disarmed.**  Hot paths guard every
  injection site with a single module-global ``is None`` check
  (:func:`active`); nothing else runs when no plan is armed.
* **Faults travel the real failure paths.**  Injected I/O errors are raised
  *inside* the source read loop so they flow through exactly the retry /
  wrap / resubmit machinery a real error would.

Example::

    plan = FaultPlan(seed=1234, worker_crash=0.3, io_error=0.1)
    with faults.injected(plan):
        run = engine.run(corpus, retry=RetryPolicy(retries=4))

``WorkerPool`` captures the armed plan at construction and ships it to the
workers, so arming in the parent is enough even under the ``spawn`` start
method.
"""

from __future__ import annotations

import contextlib
import errno
import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "FaultPlan",
    "arm",
    "disarm",
    "injected",
    "active",
    "flip_bits",
    "truncate",
    "inject_garbage",
    "corrupt_file",
    "truncate_file",
    "delay_chunks",
]

CRASH_EXIT_CODE = 70  # EX_SOFTWARE; what an injected worker crash exits with


@dataclass(frozen=True)
class FaultPlan:
    """A seeded description of which faults to inject, and how often.

    All rates are per-opportunity probabilities in ``[0, 1]`` drawn from a
    deterministic per-``(seed, scope, site)`` RNG:

    ``worker_crash``
        Checked once per document task inside a pool worker; fires
        ``os._exit(CRASH_EXIT_CODE)``.
    ``worker_hang``
        Checked once per document task; the worker ignores ``SIGTERM`` and
        sleeps ``hang_seconds`` (then continues, if it is still alive).
    ``io_error``
        Checked once per chunk in ``file_chunks``/``stdin_chunks``; raises
        a transient ``OSError(EINTR)``.
    ``socket_reset``
        Checked once per chunk in ``socket_chunks``; raises
        ``ConnectionResetError``.
    ``max_triggers``
        Per-process cap on the total number of faults fired (``None`` =
        unlimited).  Useful to guarantee forward progress, e.g. "each worker
        hangs at most once".
    """

    seed: int = 0
    worker_crash: float = 0.0
    worker_hang: float = 0.0
    hang_seconds: float = 3600.0
    io_error: float = 0.0
    socket_reset: float = 0.0
    max_triggers: int | None = None

    def any_source_faults(self) -> bool:
        return self.io_error > 0.0 or self.socket_reset > 0.0


class _FaultState:
    """Armed plan + per-site deterministic RNGs for this process."""

    __slots__ = ("plan", "scope", "_rngs", "triggers")

    def __init__(self, plan: FaultPlan, scope: str) -> None:
        self.plan = plan
        self.scope = scope
        self._rngs: dict[str, random.Random] = {}
        self.triggers = 0

    def fire(self, site: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        cap = self.plan.max_triggers
        if cap is not None and self.triggers >= cap:
            return False
        rng = self._rngs.get(site)
        if rng is None:
            rng = random.Random(f"{self.plan.seed}:{self.scope}:{site}")
            self._rngs[site] = rng
        if rng.random() >= rate:
            return False
        self.triggers += 1
        return True


_STATE: _FaultState | None = None


def arm(plan: FaultPlan, *, scope: str = "main") -> None:
    """Arm ``plan`` for this process.

    ``scope`` namespaces the RNG streams; worker processes arm with a
    per-worker scope so each draws an independent, reproducible sequence.
    """

    global _STATE
    _STATE = _FaultState(plan, scope)


def disarm() -> None:
    """Remove the armed plan (injection sites become no-ops again)."""

    global _STATE
    _STATE = None


def active() -> FaultPlan | None:
    """The armed plan, or ``None``.  This is the hot-path guard."""

    state = _STATE
    return None if state is None else state.plan


@contextlib.contextmanager
def injected(plan: FaultPlan, *, scope: str = "main") -> Iterator[FaultPlan]:
    """Context manager: arm ``plan`` on entry, disarm on exit."""

    arm(plan, scope=scope)
    try:
        yield plan
    finally:
        disarm()


# ---------------------------------------------------------------------------
# Injection sites (called by the execution layers behind an ``active()`` /
# ``_STATE is not None`` guard).
# ---------------------------------------------------------------------------


def worker_chaos() -> None:
    """Crash or hang the current worker process, per the armed plan.

    Called by the pool worker loop once per document task.  A crash is a
    hard ``os._exit`` (no cleanup, queues left mid-state) so the supervisor
    sees exactly what a segfaulted worker looks like.  A hang installs
    ``SIG_IGN`` for ``SIGTERM`` first, so only ``SIGKILL`` (the pool's
    escalation path) can reclaim the process.
    """

    state = _STATE
    if state is None:
        return
    plan = state.plan
    if state.fire("worker_crash", plan.worker_crash):
        os._exit(CRASH_EXIT_CODE)
    if state.fire("worker_hang", plan.worker_hang):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(plan.hang_seconds)


def maybe_io_error(kind: str, offset: int) -> None:
    """Raise a transient ``OSError`` for a ``kind`` read at ``offset``."""

    state = _STATE
    if state is None:
        return
    if state.fire("io_error", state.plan.io_error):
        raise OSError(
            errno.EINTR, f"injected transient I/O error ({kind} read at byte {offset})"
        )


def maybe_socket_reset(offset: int) -> None:
    """Raise ``ConnectionResetError`` for a socket read at ``offset``."""

    state = _STATE
    if state is None:
        return
    if state.fire("socket_reset", state.plan.socket_reset):
        raise ConnectionResetError(
            errno.ECONNRESET, f"injected connection reset (socket read at byte {offset})"
        )


# ---------------------------------------------------------------------------
# Deterministic byte-corruption helpers (pure functions; used by the
# malformed-input property tests and usable from any harness).
# ---------------------------------------------------------------------------


def flip_bits(data: bytes, *, seed: int, flips: int = 1) -> bytes:
    """Return ``data`` with ``flips`` deterministic single-bit flips."""

    if not data or flips <= 0:
        return data
    rng = random.Random(f"flip:{seed}")
    damaged = bytearray(data)
    for _ in range(flips):
        position = rng.randrange(len(damaged))
        damaged[position] ^= 1 << rng.randrange(8)
    return bytes(damaged)


def truncate(data: bytes, *, seed: int) -> bytes:
    """Return a deterministic strict prefix of ``data`` (possibly empty)."""

    if not data:
        return data
    rng = random.Random(f"truncate:{seed}")
    return data[: rng.randrange(len(data))]


def inject_garbage(data: bytes, *, seed: int, length: int = 8) -> bytes:
    """Insert ``length`` deterministic random bytes somewhere in ``data``."""

    rng = random.Random(f"garbage:{seed}")
    position = rng.randrange(len(data) + 1)
    garbage = bytes(rng.randrange(256) for _ in range(length))
    return data[:position] + garbage + data[position:]


def corrupt_file(path: str, *, seed: int, flips: int = 1) -> bytes:
    """Deterministically flip ``flips`` bits of the file at ``path`` in place.

    The on-disk counterpart of :func:`flip_bits`: read the file, damage it
    with the same seeded single-bit flips, and write the damaged bytes back
    over the original.  Returns the damaged content.  This is the reusable
    corruption mode the checkpoint checksum-rejection tests use (bit-flip a
    checkpoint on disk, then assert the reader refuses it) -- no hand-rolled
    byte surgery per test.
    """

    with open(path, "rb") as handle:
        data = handle.read()
    damaged = flip_bits(data, seed=seed, flips=flips)
    with open(path, "wb") as handle:
        handle.write(damaged)
    return damaged


def truncate_file(path: str, *, length: int | None = None,
                  seed: int | None = None) -> bytes:
    """Truncate the file at ``path``: a torn-write simulation.

    Either to an explicit ``length`` (clamped to the file size) or, with
    ``seed``, to the deterministic strict-prefix length :func:`truncate`
    would pick.  Returns the remaining content.  Used to prove that a
    checkpoint torn at *any* byte boundary is rejected whole
    (:class:`~repro.errors.CheckpointError`) instead of half-restored.
    """

    if (length is None) == (seed is None):
        raise ValueError("pass exactly one of length= or seed=")
    with open(path, "rb") as handle:
        data = handle.read()
    if seed is not None:
        kept = truncate(data, seed=seed)
    else:
        kept = data[: max(0, min(length, len(data)))]
    with open(path, "wb") as handle:
        handle.write(kept)
    return kept


def delay_chunks(
    chunks: Iterable[bytes], *, seconds: float, every: int = 1
) -> Iterator[bytes]:
    """Yield ``chunks`` sleeping ``seconds`` before every ``every``-th chunk.

    Simulates a slow producer (wrap a source) or, fed to a writer, a slow
    consumer -- useful for exercising backpressure and idle/feed timeouts.
    """

    for index, chunk in enumerate(chunks):
        if every > 0 and index % every == 0:
            time.sleep(seconds)
        yield chunk
