"""Command line interface: ``python -m repro``.

Filters an XML document (stdin or ``--input``) against a DTD and a set of
projection paths, writing the projected document to stdout (or
``--output``).  The document flows through the streaming core in
O(chunk + carry window) memory, so arbitrarily large inputs can be piped
through::

    python -m repro site.dtd "//australia//description#" < site.xml > proj.xml
    python -m repro site.dtd "/site/people/person#" --backend native \\
        --chunk-size 65536 --input site.xml --stats

``--stats`` prints the run's statistics (the paper's table columns) to
stderr; ``--stats-json`` emits them as one machine-readable JSON object.
``--measure-memory`` additionally reports the peak traced allocation size,
which is how the CI smoke job asserts the constant-memory behaviour.
"""

from __future__ import annotations

import argparse
import json
import sys
import tracemalloc
from typing import IO, Sequence

from repro.core.prefilter import SmpPrefilter
from repro.core.stream import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.dtd.model import Dtd
from repro.errors import ReproError
from repro.matching.factory import available_backends


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SMP XML prefiltering (Koch/Scherzinger/Schmidt, ICDE 2008): "
            "project an XML stream against a DTD and projection paths in "
            "bounded memory."
        ),
    )
    parser.add_argument("dtd", help="path to the DTD file (DOCTYPE or bare internal subset)")
    parser.add_argument(
        "paths",
        nargs="+",
        help="projection paths, e.g. '//australia//description#' "
             "(append # to keep the selected subtrees)",
    )
    parser.add_argument(
        "--backend",
        default="instrumented",
        choices=available_backends(),
        help="string-matching backend (default: instrumented, the paper's configuration)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        metavar="BYTES",
        help=f"input chunk size in characters (default: {DEFAULT_CHUNK_SIZE})",
    )
    parser.add_argument(
        "--input",
        metavar="FILE",
        help="read the document from FILE instead of stdin",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the projected document to FILE instead of stdout",
    )
    parser.add_argument(
        "--no-default-paths",
        action="store_true",
        help="do not add the default '/*' projection path",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print run statistics to stderr",
    )
    parser.add_argument(
        "--stats-json",
        action="store_true",
        help="print run statistics as one JSON object to stderr",
    )
    parser.add_argument(
        "--measure-memory",
        action="store_true",
        help="trace allocations and report the peak (slows filtering down)",
    )
    return parser


def _render_stats(stats, compilation) -> str:
    lines = [
        f"input size:        {stats.input_size} chars",
        f"projected size:    {stats.output_size} chars "
        f"({100.0 * stats.projection_ratio:.2f}%)",
        f"states (CW+BM):    {compilation.states_label()}",
        f"char comparisons:  {stats.char_comparison_ratio:.2f}% of document",
        f"avg shift size:    {stats.average_shift:.2f} chars",
        f"initial jumps:     {stats.initial_jump_ratio:.2f}% of document",
        f"tokens matched:    {stats.tokens_matched}",
        f"throughput:        {stats.throughput_mb_per_second:.2f} MB/s",
    ]
    if stats.peak_memory_bytes:
        lines.append(f"peak traced memory: {stats.peak_memory_bytes} bytes")
    return "\n".join(lines)


def _run_filter(arguments, document: IO[str], output: IO[str]) -> int:
    with open(arguments.dtd, "r", encoding="utf-8") as handle:
        dtd = Dtd.parse(handle.read())
    prefilter = SmpPrefilter.cached(
        dtd,
        arguments.paths,
        backend=arguments.backend,
        add_default_paths=not arguments.no_default_paths,
    )
    if arguments.measure_memory:
        tracemalloc.start()
    session = prefilter.session(sink=output.write)
    for chunk in iter_chunks(document, arguments.chunk_size):
        session.feed(chunk)
    session.finish()
    stats = session.stats
    if arguments.measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        stats.peak_memory_bytes = peak
    output.flush()
    if arguments.stats_json:
        payload = stats.as_dict()
        payload["peak_memory_bytes"] = float(stats.peak_memory_bytes)
        payload["chunk_size"] = float(arguments.chunk_size)
        payload["backend"] = arguments.backend
        print(json.dumps(payload, sort_keys=True), file=sys.stderr)
    if arguments.stats:
        print(_render_stats(stats, prefilter.compilation), file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.chunk_size <= 0:
        parser.error("--chunk-size must be positive")
    try:
        document = (
            open(arguments.input, "r", encoding="utf-8")
            if arguments.input
            else sys.stdin
        )
        try:
            output = (
                open(arguments.output, "w", encoding="utf-8")
                if arguments.output
                else sys.stdout
            )
            try:
                return _run_filter(arguments, document, output)
            finally:
                if arguments.output:
                    output.close()
        finally:
            if arguments.input:
                document.close()
    except FileNotFoundError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
