"""Command line interface: ``python -m repro``.

The CLI is a thin shell over the unified dataflow API (:mod:`repro.api`):
the input becomes a ``Source`` (file, binary stdin, or memory map), each
query a ``Query`` compiled into one ``Engine``, and the output streams
through ``Sink`` objects (per-query files or stdout).

Single-query mode filters an XML document (stdin or ``--input``) against a
DTD and a set of projection paths, writing the projected document to stdout
(or ``--output``).  The document flows through the *byte-native* streaming
core in O(chunk + carry window) memory -- input is read in binary and never
decoded, output is written in binary -- so arbitrarily large inputs can be
piped through::

    python -m repro site.dtd "//australia//description#" < site.xml > proj.xml
    python -m repro site.dtd "/site/people/person#" --backend native \\
        --chunk-size 65536 --input site.xml --stats
    python -m repro site.dtd "/site/people/person#" --input site.xml --mmap

With ``--mmap`` the input file is memory-mapped and the matcher automata
search the mapped pages directly: no chunked reads, no heap copy of the
document, only the projected slices are ever materialised.

Multi-query mode (repeatable ``--query``) compiles every query into the
shared-scan :class:`~repro.core.multi.MultiQueryEngine`: the document is
scanned **once** and every query receives its own byte-identical
projection.  Queries are workload names (``M1``-``M5`` from the MEDLINE
workload, ``XM1``... from XMark -- the matching DTD is implied) or raw
XPath expressions combined with ``--dtd``::

    python -m repro --query M2 --query M5 doc.xml
    python -m repro --dtd site.dtd --query "/site/people/person/name" site.xml

Without ``--output`` the per-query projections are printed as labelled
sections (``==> M2 <==`` ...); with ``--output BASE`` each query streams
into its own ``BASE.<label>.xml`` file (binary, constant memory).

Corpus runs are fault-tolerant on request: ``--retries N`` (with
``--retry-backoff``) retries transiently failing documents -- interrupted
reads, crashed workers -- and ``--on-error {raise,skip,collect}`` decides
what happens to documents that still fail.  ``collect`` prints one
``repro: failed: ...`` line per poisoned document and exits with status 3
while the healthy documents' output stays byte-identical.

``--stats`` prints the run's statistics (the paper's table columns) to
stderr; ``--stats-json`` emits them as one machine-readable JSON object.
``--measure-memory`` additionally reports the peak traced allocation size,
which is how the CI smoke job asserts the constant-memory behaviour.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import re
import sys
from typing import Sequence

from repro import api
from repro.core.sources import Utf8SlidingDecoder
from repro.core.stream import DEFAULT_CHUNK_SIZE
from repro.dtd.model import Dtd
from repro.errors import ReproError
from repro.matching.factory import available_backends


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SMP XML prefiltering (Koch/Scherzinger/Schmidt, ICDE 2008): "
            "project an XML stream against a DTD and projection paths in "
            "bounded memory.  With repeatable --query, filter one document "
            "against N queries in a single shared scan."
        ),
    )
    parser.add_argument(
        "positional",
        nargs="*",
        metavar="ARG",
        help="single-query mode: DTD file followed by projection paths "
             "(e.g. '//australia//description#'); multi-query mode "
             "(--query): zero or more input document files -- several "
             "files form a corpus, filtered per document (in parallel "
             "with --jobs) with deterministic per-input output",
    )
    parser.add_argument(
        "--query",
        action="append",
        default=[],
        metavar="QUERY",
        help="XPath query or workload query name (M1-M5, XM1...); repeat for "
             "a shared-scan multi-query run",
    )
    parser.add_argument(
        "--dtd",
        metavar="FILE",
        dest="dtd_file",
        help="DTD file for raw XPath --query values (workload query names "
             "imply their workload's DTD)",
    )
    parser.add_argument(
        "--backend",
        default="instrumented",
        choices=available_backends(),
        help="string-matching backend (default: instrumented, the paper's "
             "configuration; use native for wall-clock throughput)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        metavar="BYTES",
        help=f"input chunk size in bytes (default: {DEFAULT_CHUNK_SIZE})",
    )
    parser.add_argument(
        "--input",
        metavar="FILE",
        help="read the document from FILE instead of stdin",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard a multi-file corpus (--query mode with several input "
             "files) across N worker processes; output order always "
             "follows the input order, byte-identical to --jobs 1 "
             "(ignored with a single input file)",
    )
    parser.add_argument(
        "--mmap",
        action="store_true",
        help="memory-map the --input file and search the mapped pages "
             "directly (zero-copy window; requires --input)",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "skip", "collect"),
        default="raise",
        help="corpus-run policy for documents that keep failing after the "
             "retry budget: raise aborts the run (default), skip drops "
             "them, collect reports them on stderr and exits with status 3 "
             "while the healthy documents' output is unchanged",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry transient I/O failures (interrupted reads, reset "
             "connections, crashed workers) up to N times per document "
             "with exponential backoff (default: 0, fail fast)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="initial delay between retries, doubled per attempt "
             "(default: 0.05)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="durable recovery state: in single-document modes, write a "
             "checksummed checkpoint to PATH after every input chunk "
             "(requires --input and --output); in corpus mode (--query "
             "with several input files), journal per-document results to "
             "PATH so a restarted run with the same flag skips "
             "already-completed documents",
    )
    parser.add_argument(
        "--resume",
        metavar="PATH",
        help="resume a crashed single-document run from the checkpoint at "
             "PATH: the --output file(s) are truncated to the checkpointed "
             "length and filtering continues from the recorded input "
             "offset; in corpus mode, synonym for --checkpoint PATH",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the projected document to FILE instead of stdout; in "
             "multi-query mode, one FILE.<label>.xml per query",
    )
    parser.add_argument(
        "--no-default-paths",
        action="store_true",
        help="do not add the default '/*' projection path (single-query mode)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print run statistics to stderr",
    )
    parser.add_argument(
        "--stats-json",
        action="store_true",
        help="print run statistics as one JSON object to stderr",
    )
    parser.add_argument(
        "--measure-memory",
        action="store_true",
        help="trace allocations and report the peak (slows filtering down)",
    )
    return parser


def _render_stats(stats, compilation) -> str:
    lines = [
        f"input size:        {stats.input_size} bytes",
        f"projected size:    {stats.output_size} bytes "
        f"({100.0 * stats.projection_ratio:.2f}%)",
        f"states (CW+BM):    {compilation.states_label()}",
        f"char comparisons:  {stats.char_comparison_ratio:.2f}% of document",
        f"avg shift size:    {stats.average_shift:.2f} bytes",
        f"initial jumps:     {stats.initial_jump_ratio:.2f}% of document",
        f"tokens matched:    {stats.tokens_matched}",
        f"throughput:        {stats.throughput_mb_per_second:.2f} MB/s",
    ]
    if stats.peak_memory_bytes:
        lines.append(f"peak traced memory: {stats.peak_memory_bytes} bytes")
    return "\n".join(lines)


class _Sink:
    """A write target that prefers the binary layer of a stream.

    Real files and standard streams expose a ``buffer``; the sink then runs
    the session in binary mode and writes the projected bytes verbatim.
    Text-only streams (e.g. ``io.StringIO`` doubles in tests) fall back to
    text mode, where the session decodes exactly the emitted bytes.
    """

    def __init__(self, stream) -> None:
        buffer = getattr(stream, "buffer", None)
        self._stream = stream
        if buffer is not None:
            self.binary = True
            self.write = buffer.write
        else:
            self.binary = isinstance(getattr(stream, "mode", ""), str) and \
                "b" in getattr(stream, "mode", "")
            self.write = stream.write

    def write_text(self, text: str) -> None:
        self.write(text.encode("utf-8") if self.binary else text)

    def flush(self) -> None:
        self._stream.flush()


def _retry_policy(arguments) -> "api.RetryPolicy | None":
    """The --retries/--retry-backoff flags as a :class:`api.RetryPolicy`."""
    if not arguments.retries:
        return None
    return api.RetryPolicy(
        retries=arguments.retries, backoff=arguments.retry_backoff
    )


def _document_source(arguments) -> "api.Source":
    """The input document as a :class:`repro.api.Source`."""
    retry = _retry_policy(arguments)
    if arguments.mmap:
        return api.Source.from_mmap(arguments.input)
    if arguments.input:
        return api.Source.from_file(
            arguments.input, chunk_size=arguments.chunk_size, retry=retry
        )
    # Binary stdin when available; text-only doubles (tests) pass through
    # the str encode shim (which has no retryable byte layer).
    if hasattr(sys.stdin, "buffer"):
        return api.Source.from_stdin(
            chunk_size=arguments.chunk_size, retry=retry
        )
    return api.Source.from_iter(sys.stdin, chunk_size=arguments.chunk_size)


def _run_filter(arguments, source, output_stream) -> int:
    dtd_path, paths = arguments.positional[0], arguments.positional[1:]
    with open(dtd_path, "r", encoding="utf-8") as handle:
        dtd = Dtd.parse(handle.read())
    query = api.Query.from_paths(
        dtd,
        paths,
        backend=arguments.backend,
        add_default_paths=not arguments.no_default_paths,
    )
    engine = api.Engine(query)
    sink = _Sink(output_stream)
    run = engine.run(
        source,
        sinks=[api.CallbackSink(sink.write)],
        binary=sink.binary,
        measure_memory=arguments.measure_memory,
    )
    stats = run.single.stats
    sink.flush()
    if arguments.stats_json:
        payload = stats.as_dict()
        payload["peak_memory_bytes"] = float(stats.peak_memory_bytes)
        payload["chunk_size"] = float(arguments.chunk_size)
        payload["backend"] = arguments.backend
        payload["mmap"] = bool(arguments.mmap)
        print(json.dumps(payload, sort_keys=True), file=sys.stderr)
    if arguments.stats:
        print(_render_stats(stats, run.single.compilation), file=sys.stderr)
    return 0


def _resolve_queries(arguments) -> tuple[Dtd, list]:
    """Resolve --query values to (DTD, query list for MultiQueryEngine)."""
    from repro.workloads.medline import MEDLINE_QUERIES, medline_dtd
    from repro.workloads.xmark import XMARK_QUERIES, xmark_dtd

    queries: list = []
    workloads: set[str] = set()
    for value in arguments.query:
        if value in MEDLINE_QUERIES:
            queries.append(MEDLINE_QUERIES[value])
            workloads.add("medline")
        elif value in XMARK_QUERIES:
            queries.append(XMARK_QUERIES[value])
            workloads.add("xmark")
        else:
            queries.append(value)
            workloads.add("xpath")
    if arguments.dtd_file:
        with open(arguments.dtd_file, "r", encoding="utf-8") as handle:
            return Dtd.parse(handle.read()), queries
    if workloads == {"medline"}:
        return medline_dtd(), queries
    if workloads == {"xmark"}:
        return xmark_dtd(), queries
    if "xpath" in workloads:
        raise ReproError(
            "raw XPath --query values need --dtd FILE (workload query names "
            "imply their DTD)"
        )
    raise ReproError(
        "--query values mix workloads; pass --dtd FILE to choose a schema"
    )


def _label_slug(label: str) -> str:
    """A filesystem-safe rendering of a query label."""
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", label).strip("_")
    return slug or "query"


def _query_output_paths(base: str, labels: Sequence[str]) -> list[str]:
    """One output path per query label, never clobbering on slug clashes."""
    paths: list[str] = []
    seen_slugs: dict[str, int] = {}
    for label in labels:
        slug = _label_slug(label)
        count = seen_slugs.get(slug, 0)
        seen_slugs[slug] = count + 1
        if count:
            # Distinct queries may slug identically; never clobber.
            slug = f"{slug}.{count + 1}"
        paths.append(f"{base}.{slug}.xml")
    return paths


def _build_queries(arguments, dtd, queries) -> list["api.Query"]:
    """Resolved --query values (specs or raw XPath) as API queries."""
    return [
        api.Query.from_spec(dtd, query, backend=arguments.backend)
        if not isinstance(query, str)
        else api.Query(query, dtd, backend=arguments.backend)
        for query in queries
    ]


def _corpus_engine(arguments) -> "api.Engine":
    """The parallel corpus engine of the resolved --query values."""
    dtd, queries = _resolve_queries(arguments)
    return api.Engine(
        _build_queries(arguments, dtd, queries),
        mode="parallel",
        jobs=arguments.jobs,
    )


def _corpus_output_paths(
    base: str, documents, labels: Sequence[str]
) -> dict[tuple[int, str], str]:
    """Deterministic ``BASE.<input>.<label>.xml`` paths, clash-free."""
    paths: dict[tuple[int, str], str] = {}
    seen: dict[str, int] = {}
    for document in documents:
        doc_slug = _label_slug(os.path.basename(document.name))
        for label in labels:
            slug = f"{doc_slug}.{_label_slug(label)}"
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            if count:
                slug = f"{slug}.{count + 1}"
            paths[(document.index, label)] = f"{base}.{slug}.xml"
    return paths


def _run_corpus(arguments, inputs: Sequence[str], output_stream) -> int:
    """Filter a multi-file corpus, one document at a time, in input order.

    With ``--jobs N`` the documents are sharded across N worker processes;
    the merged output is byte-identical to a sequential run either way.
    Each input gets its own labelled section on stdout (``==> input ::
    label <==``) or, with ``--output BASE``, its own
    ``BASE.<input>.<label>.xml`` file per query.

    ``--retries`` retries transiently failing documents (worker crashes,
    interrupted reads); ``--on-error`` decides what happens to documents
    that still fail: abort the run (``raise``, default), drop them
    (``skip``), or report them and exit 3 (``collect``) -- healthy
    documents' output is identical in every mode.
    """
    engine = _corpus_engine(arguments)
    run = engine.run(
        api.Source.from_paths(inputs, chunk_size=arguments.chunk_size),
        binary=True,
        retry=_retry_policy(arguments),
        on_error=arguments.on_error,
        journal=arguments.checkpoint or arguments.resume,
    )
    labels = engine.labels

    if arguments.output:
        paths = _corpus_output_paths(arguments.output, run.documents, labels)
        for document in run.documents:
            for result in document.results:
                with open(paths[(document.index, result.label)], "wb") as out:
                    out.write(result.output)
    else:
        sink = _Sink(output_stream)
        for document in run.documents:
            for result in document.results:
                sink.write_text(f"==> {document.name} :: {result.label} <==\n")
                if sink.binary:
                    sink.write(result.output)
                else:
                    sink.write(result.output.decode("utf-8"))
                sink.write_text("\n")
        sink.flush()

    if arguments.stats_json:
        payload = {
            "backend": arguments.backend,
            "chunk_size": float(arguments.chunk_size),
            "jobs": float(run.jobs),
            "documents": [document.name for document in run.documents],
            "queries": {
                result.label: result.stats.as_dict() for result in run
            },
        }
        if run.scan_stats is not None:
            payload["scan"] = run.scan_stats.as_dict()
        print(json.dumps(payload, sort_keys=True), file=sys.stderr)
    if arguments.stats:
        print(
            f"corpus:            {len(run.documents)} documents, "
            f"jobs={run.jobs}",
            file=sys.stderr,
        )
        for result in run:
            print(f"--- {result.label} (aggregate) ---", file=sys.stderr)
            print(_render_stats(result.stats, result.compilation),
                  file=sys.stderr)
    if run.failures:
        for failure in run.failures:
            print(
                f"repro: failed: {failure.name} "
                f"(after {failure.attempts} attempt"
                f"{'s' if failure.attempts != 1 else ''}): {failure.cause}",
                file=sys.stderr,
            )
        return 3
    return 0


def _checkpointed_engine(arguments) -> "api.Engine":
    """The engine of a checkpointed single-document run (any query mode)."""
    if arguments.query:
        dtd, queries = _resolve_queries(arguments)
        return api.Engine(
            _build_queries(arguments, dtd, queries), mode="shared"
        )
    dtd_path, paths = arguments.positional[0], arguments.positional[1:]
    with open(dtd_path, "r", encoding="utf-8") as handle:
        dtd = Dtd.parse(handle.read())
    return api.Engine(api.Query.from_paths(
        dtd,
        paths,
        backend=arguments.backend,
        add_default_paths=not arguments.no_default_paths,
    ))


def _run_checkpointed(arguments) -> int:
    """A single-document run with durable crash recovery.

    The projection streams into the ``--output`` file(s); after every input
    chunk the complete session state (automaton, carry window, statistics,
    flushed output sizes) is written atomically to the ``--checkpoint``
    file.  ``--resume PATH`` restarts after a crash: the output files are
    truncated back to the checkpointed flushed sizes, the input file is
    reopened at the recorded offset, and filtering continues -- the final
    bytes and statistics are identical to an uninterrupted run.
    """
    engine = _checkpointed_engine(arguments)
    if arguments.query:
        out_paths = _query_output_paths(arguments.output, engine.labels)
    else:
        out_paths = [arguments.output]

    resume = None
    flushed = [0] * len(out_paths)
    if arguments.resume:
        resume = api.Checkpoint.load(arguments.resume)
        if len(resume.output_sizes) != len(out_paths):
            raise ReproError(
                f"checkpoint records {len(resume.output_sizes)} output "
                f"stream(s); this invocation has {len(out_paths)}"
            )
        flushed = [int(size) for size in resume.output_sizes]

    with contextlib.ExitStack() as stack:
        handles = []
        for path, size in zip(out_paths, flushed):
            if resume is not None:
                handle = stack.enter_context(open(path, "r+b"))
                handle.seek(0, os.SEEK_END)
                if handle.tell() < size:
                    raise ReproError(
                        f"cannot resume: {path} is shorter than the "
                        f"checkpointed {size} bytes"
                    )
                handle.truncate(size)
                handle.seek(size)
            else:
                handle = stack.enter_context(open(path, "wb"))
            handles.append(handle)
        session = engine.open(
            sinks=[api.CallbackSink(handle.write) for handle in handles],
            binary=True,
            resume=resume,
        )
        offset = resume.input_offset if resume is not None else 0
        with open(arguments.input, "rb") as infile:
            infile.seek(offset)
            while True:
                chunk = infile.read(arguments.chunk_size)
                if not chunk:
                    break
                session.feed(chunk)
                if arguments.checkpoint:
                    for handle in handles:
                        handle.flush()
                    session.checkpoint(arguments.checkpoint)
        session.finish()
        stats = list(session.stats)
        scan = session.scan_stats
        session.close()

    if arguments.stats_json:
        payload = {
            "backend": arguments.backend,
            "chunk_size": float(arguments.chunk_size),
            "resumed": resume is not None,
            "queries": {
                label: one.as_dict()
                for label, one in zip(engine.labels, stats)
            },
        }
        if scan is not None:
            payload["scan"] = scan.as_dict()
        print(json.dumps(payload, sort_keys=True), file=sys.stderr)
    if arguments.stats:
        for index, (label, one) in enumerate(zip(engine.labels, stats)):
            print(f"--- {label} ---", file=sys.stderr)
            print(_render_stats(one, engine.plans[index].compilation),
                  file=sys.stderr)
    return 0


def _run_multi(arguments, source, output_stream) -> int:
    dtd, queries = _resolve_queries(arguments)
    engine = api.Engine(
        _build_queries(arguments, dtd, queries),
        mode="shared",
    )
    labels = engine.labels

    buffers: list["api.CollectSink"] | None = None
    # Per-query output files are opened through an ExitStack so every
    # already-open file is closed on *any* error path -- including a failure
    # while opening a later file or mid-filtering -- and written in binary:
    # the byte path never re-encodes the projection.
    with contextlib.ExitStack() as stack:
        if arguments.output:
            sinks: list["api.Sink"] = [
                stack.enter_context(api.FileSink(path))
                for path in _query_output_paths(arguments.output, labels)
            ]
        else:
            buffers = [api.CollectSink() for _ in labels]
            sinks = list(buffers)
        run = engine.run(
            source,
            sinks=sinks,
            binary=True,
            measure_memory=arguments.measure_memory,
        )

    if buffers is not None:
        sink = _Sink(output_stream)
        for label, collected in zip(labels, buffers):
            sink.write_text(f"==> {label} <==\n")
            if sink.binary:
                for fragment in collected.fragments:
                    sink.write(fragment)
            else:
                # Buffered fragments can end mid-UTF-8-sequence (copy
                # regions flush at arbitrary byte offsets), so a text-only
                # stream needs an incremental decoder per query.
                decoder = Utf8SlidingDecoder()
                for fragment in collected.fragments:
                    sink.write(decoder.decode(fragment))
                tail = decoder.finish()
                if tail:
                    sink.write(tail)
            sink.write_text("\n")
        sink.flush()

    if arguments.stats_json:
        payload = {
            "backend": arguments.backend,
            "chunk_size": float(arguments.chunk_size),
            "mmap": bool(arguments.mmap),
            "scan": run.scan_stats.as_dict(),
            "queries": {
                result.label: result.stats.as_dict() for result in run
            },
        }
        payload["scan"]["peak_memory_bytes"] = float(
            run.scan_stats.peak_memory_bytes
        )
        print(json.dumps(payload, sort_keys=True), file=sys.stderr)
    if arguments.stats:
        scan = run.scan_stats
        print(
            f"shared scan:       {scan.input_size} bytes, "
            f"{scan.tokens_matched} tokens, "
            f"{scan.throughput_mb_per_second:.2f} MB/s",
            file=sys.stderr,
        )
        if scan.peak_memory_bytes:
            print(f"peak traced memory: {scan.peak_memory_bytes} bytes",
                  file=sys.stderr)
        for result in run:
            print(f"--- {result.label} ---", file=sys.stderr)
            print(_render_stats(result.stats, result.compilation),
                  file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # Subcommand dispatch: the workload-generator subsystem ships its own
    # parsers (`python -m repro generate ...` / `python -m repro fuzz ...`);
    # everything else stays on the original flag-based filter CLI.
    if argv and argv[0] == "generate":
        from repro.workloads.generate import main as generate_main

        return generate_main(list(argv[1:]))
    if argv and argv[0] == "fuzz":
        from repro.workloads.fuzz import main as fuzz_main

        return fuzz_main(list(argv[1:]))
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.chunk_size <= 0:
        parser.error("--chunk-size must be positive")
    if arguments.jobs < 1:
        parser.error("--jobs must be >= 1")
    if arguments.retries < 0:
        parser.error("--retries must be >= 0")
    if arguments.retry_backoff < 0:
        parser.error("--retry-backoff must be >= 0")
    corpus_inputs: list[str] = []
    if arguments.query:
        if arguments.positional and arguments.input:
            parser.error(
                "pass the input document(s) either positionally or via --input"
            )
        inputs = list(arguments.positional) or (
            [arguments.input] if arguments.input else []
        )
        if len(inputs) > 1:
            # Several input files form a corpus (one input keeps the
            # single-document path whatever --jobs says: sharding one
            # document buys nothing and must not change the output shape).
            if arguments.mmap:
                parser.error("--mmap maps a single document, not a corpus")
            if arguments.measure_memory:
                parser.error(
                    "--measure-memory traces one process; it is not "
                    "available for corpus runs"
                )
            corpus_inputs = inputs
        elif inputs:
            arguments.input = inputs[0]
        if arguments.jobs > 1 and not inputs:
            parser.error(
                "--jobs shards input files; stdin cannot be sharded "
                "(pass document paths)"
            )
    else:
        if arguments.jobs != 1:
            parser.error(
                "--jobs needs --query mode with input document files"
            )
        if len(arguments.positional) < 2:
            parser.error(
                "single-query mode needs a DTD file and at least one "
                "projection path (or use --query)"
            )
    if arguments.mmap and not arguments.input and not corpus_inputs:
        parser.error("--mmap requires an --input file")
    if arguments.on_error != "raise" and not corpus_inputs:
        parser.error(
            "--on-error is a corpus-run policy (--query mode with several "
            "input files); a single document either filters or fails"
        )
    checkpointed = bool(arguments.checkpoint or arguments.resume)
    if checkpointed and not corpus_inputs:
        if not arguments.input or not arguments.output:
            parser.error(
                "--checkpoint/--resume need --input FILE and --output FILE "
                "(resumable byte accounting requires seekable files)"
            )
        if arguments.mmap:
            parser.error(
                "--checkpoint/--resume stream chunked reads; drop --mmap"
            )
        if arguments.measure_memory:
            parser.error(
                "--measure-memory is not available with --checkpoint/--resume"
            )
    try:
        if corpus_inputs:
            return _run_corpus(arguments, corpus_inputs, sys.stdout)
        if checkpointed:
            return _run_checkpointed(arguments)
        with contextlib.ExitStack() as stack:
            source = _document_source(arguments)
            if arguments.output and not arguments.query:
                output = stack.enter_context(open(arguments.output, "wb"))
            else:
                output = sys.stdout
            if arguments.query:
                return _run_multi(arguments, source, output)
            return _run_filter(arguments, source, output)
    except FileNotFoundError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: exit quietly
        # with the conventional SIGPIPE status.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 141


if __name__ == "__main__":
    sys.exit(main())
