"""Projection paths (Section III of the paper).

A *simple path* is a sequence of XPath downward steps without predicates; a
*projection path* is ``/simplePath`` or ``/simplePath#`` where the ``#`` flag
records that the descendants of the selected nodes are also required.  The
module provides parsing, the prefix-closure ``P+``, and evaluation of simple
paths against *branches* (chains of element names), which is all the
relevance conditions of Definition 3 need.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ProjectionPathError

_NAME_RE = re.compile(r"[A-Za-z_:][\w:.\-]*|\*")


class Axis(enum.Enum):
    """Navigation axis of one path step."""

    CHILD = "/"
    DESCENDANT = "//"


@dataclass(frozen=True)
class PathStep:
    """One step of a simple path: an axis plus a name test (``*`` = any)."""

    axis: Axis
    name: str

    def matches_name(self, tag: str) -> bool:
        """True if this step's name test accepts ``tag``."""
        return self.name == "*" or self.name == tag

    def __str__(self) -> str:
        return f"{self.axis.value}{self.name}"


@dataclass(frozen=True)
class ProjectionPath:
    """A parsed projection path.

    Attributes
    ----------
    steps:
        The navigation steps; an empty tuple represents the path ``/`` which
        selects the (virtual) document node only.
    keep_subtree:
        True when the path carries the ``#`` flag, meaning the descendants of
        the selected nodes are also required (Section III).
    """

    steps: tuple[PathStep, ...]
    keep_subtree: bool = False

    # ------------------------------------------------------------------
    # Parsing / formatting
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ProjectionPath":
        """Parse a projection path such as ``//australia//description#``."""
        original = text
        text = text.strip()
        if not text:
            raise ProjectionPathError("projection path must not be empty")
        keep_subtree = text.endswith("#")
        if keep_subtree:
            text = text[:-1]
        if text in ("", "/"):
            if keep_subtree:
                raise ProjectionPathError("the root path '/' cannot carry the '#' flag")
            return cls(steps=(), keep_subtree=False)
        if not text.startswith("/"):
            raise ProjectionPathError(
                f"projection path must start with '/': {original!r}"
            )
        steps: list[PathStep] = []
        position = 0
        length = len(text)
        while position < length:
            if text.startswith("//", position):
                axis = Axis.DESCENDANT
                position += 2
            elif text.startswith("/", position):
                axis = Axis.CHILD
                position += 1
            else:
                raise ProjectionPathError(
                    f"expected '/' at offset {position} in {original!r}"
                )
            match = _NAME_RE.match(text, position)
            if not match:
                raise ProjectionPathError(
                    f"expected a name test at offset {position} in {original!r}"
                )
            steps.append(PathStep(axis=axis, name=match.group(0)))
            position = match.end()
        return cls(steps=tuple(steps), keep_subtree=keep_subtree)

    def __str__(self) -> str:
        body = "".join(str(step) for step in self.steps) or "/"
        return body + ("#" if self.keep_subtree else "")

    # ------------------------------------------------------------------
    # Derived paths
    # ------------------------------------------------------------------
    def prefixes(self) -> list["ProjectionPath"]:
        """All proper prefix paths, including the root path ``/``.

        Prefix paths never carry the ``#`` flag (they only exist to keep the
        ancestors of selected nodes, Definition 3 / set ``P+``).
        """
        return [
            ProjectionPath(steps=self.steps[:length], keep_subtree=False)
            for length in range(len(self.steps))
        ]

    def without_flag(self) -> "ProjectionPath":
        """The same path with the ``#`` flag removed."""
        if not self.keep_subtree:
            return self
        return ProjectionPath(steps=self.steps, keep_subtree=False)

    @property
    def last_step(self) -> PathStep | None:
        """The final step, or None for the root path."""
        return self.steps[-1] if self.steps else None

    # ------------------------------------------------------------------
    # Evaluation on branches
    # ------------------------------------------------------------------
    def match_positions(self, branch: Sequence[str]) -> set[int]:
        """Positions of ``branch`` selected by this path.

        ``branch`` is a chain of element names from the root element
        downwards.  Returned positions are 0-based indices into the chain;
        the virtual document node is position ``-1`` and is selected exactly
        by the root path ``/``.
        """
        current: set[int] = {-1}
        for step in self.steps:
            if not current:
                return set()
            next_positions: set[int] = set()
            if step.axis is Axis.CHILD:
                for position in current:
                    candidate = position + 1
                    if candidate < len(branch) and step.matches_name(branch[candidate]):
                        next_positions.add(candidate)
            else:
                lowest = min(current)
                for candidate in range(lowest + 1, len(branch)):
                    if step.matches_name(branch[candidate]) and any(
                        candidate > position for position in current
                    ):
                        next_positions.add(candidate)
            current = next_positions
        return current

    def matches_leaf(self, branch: Sequence[str]) -> bool:
        """True if this path selects the last element of ``branch``.

        For the empty branch (the document branch of ``q0``) only the root
        path matches, mirroring Example 10 of the paper.
        """
        if not branch:
            return not self.steps
        return (len(branch) - 1) in self.match_positions(branch)

    def matches_any(self, branch: Sequence[str]) -> bool:
        """True if this path selects any element of ``branch``."""
        if not branch:
            return not self.steps
        positions = self.match_positions(branch)
        positions.discard(-1)
        return bool(positions)


def parse_projection_paths(texts: Iterable[str]) -> list[ProjectionPath]:
    """Parse several projection paths at once."""
    return [ProjectionPath.parse(text) for text in texts]


def extend_with_prefixes(paths: Sequence[ProjectionPath]) -> list[ProjectionPath]:
    """Compute ``P+``: the given paths plus all their prefix paths.

    Duplicates are removed while preserving a deterministic order (original
    paths first, then prefixes ordered by length).
    """
    seen: set[ProjectionPath] = set()
    result: list[ProjectionPath] = []
    for path in paths:
        if path not in seen:
            seen.add(path)
            result.append(path)
    prefix_paths: list[ProjectionPath] = []
    for path in paths:
        prefix_paths.extend(path.prefixes())
    for prefix in sorted(prefix_paths, key=lambda p: len(p.steps)):
        if prefix not in seen:
            seen.add(prefix)
            result.append(prefix)
    return result


def ensure_default_paths(paths: Sequence[ProjectionPath]) -> list[ProjectionPath]:
    """Add the default ``/*`` path if not present.

    The paper always extracts ``/*`` so prefiltering preserves the top-level
    node and produces well-formed output (Section III).
    """
    result = list(paths)
    top_level = ProjectionPath.parse("/*")
    if not any(path.without_flag() == top_level for path in result):
        result.append(top_level)
    return result
