"""Projection semantics: paths, relevance (Definition 3), reference projector."""

from repro.projection.extraction import (
    QuerySpec,
    extract_paths_from_xpath,
    spec_from_xpath,
)
from repro.projection.paths import (
    Axis,
    PathStep,
    ProjectionPath,
    ensure_default_paths,
    extend_with_prefixes,
    parse_projection_paths,
)
from repro.projection.reference import (
    ReferenceProjectionResult,
    ReferenceProjector,
    project_document,
)
from repro.projection.relevance import RelevanceChecker, RelevanceDecision, build_checker

__all__ = [
    "Axis",
    "PathStep",
    "ProjectionPath",
    "QuerySpec",
    "ReferenceProjectionResult",
    "ReferenceProjector",
    "RelevanceChecker",
    "RelevanceDecision",
    "build_checker",
    "ensure_default_paths",
    "extend_with_prefixes",
    "extract_paths_from_xpath",
    "parse_projection_paths",
    "project_document",
    "spec_from_xpath",
]
