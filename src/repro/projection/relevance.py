"""Relevance of tokens and automaton states (Definition 3 of the paper).

A token is *relevant* with respect to a set of projection paths ``P`` when
one of three conditions holds:

* **C1** - the leaf of its document branch is matched by a path in ``P+``
  (the paths plus all their prefixes),
* **C2** - some node of its document branch is matched by a ``#``-flagged
  path (the token lies inside a subtree that must be kept whole),
* **C3** - there is a tag ``t`` such that ``P+`` contains a child-axis path
  ending in ``t`` and a descendant-axis path ending in ``t`` which both match
  the leaf of the branch with its leaf replaced by ``t`` (the token is a
  necessary "stop-over" that keeps ancestor-descendant relationships intact,
  Example 6).

The same definition is applied to document tokens (by the reference
projector) and to DTD-automaton states (by the static analysis, via
Definition 5: a state is relevant iff the leaf of its document branch is).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.projection.paths import (
    Axis,
    ProjectionPath,
    ensure_default_paths,
    extend_with_prefixes,
)


@dataclass(frozen=True)
class RelevanceDecision:
    """The outcome of a relevance check, with the condition that fired."""

    relevant: bool
    condition: str | None = None  # "C1", "C2", "C3" or None

    def __bool__(self) -> bool:
        return self.relevant


class RelevanceChecker:
    """Evaluates Definition 3 for document branches.

    Parameters
    ----------
    paths:
        The projection paths ``P``.  The default ``/*`` path is *not* added
        automatically here; callers that need the paper's default behaviour
        should pass paths through
        :func:`repro.projection.paths.ensure_default_paths` first.
    alphabet:
        The set of tag names of the schema.  It is only needed to resolve
        wildcard last steps when evaluating condition C3; when omitted, C3
        candidate tags are taken from the paths themselves.
    """

    def __init__(
        self,
        paths: Sequence[ProjectionPath],
        alphabet: set[str] | None = None,
    ) -> None:
        self.paths = list(paths)
        self.extended_paths = extend_with_prefixes(self.paths)
        self.flagged_paths = [path for path in self.extended_paths if path.keep_subtree]
        self._alphabet = set(alphabet or ())
        self._child_last: list[ProjectionPath] = []
        self._descendant_last: list[ProjectionPath] = []
        for path in self.extended_paths:
            last = path.last_step
            if last is None:
                continue
            if last.axis is Axis.CHILD:
                self._child_last.append(path)
            else:
                self._descendant_last.append(path)
        self._c3_candidates = self._compute_c3_candidates()
        self._branch_cache: dict[tuple[tuple[str, ...], str | None], RelevanceDecision] = {}

    # ------------------------------------------------------------------
    # Candidate tags for condition C3
    # ------------------------------------------------------------------
    def _compute_c3_candidates(self) -> set[str]:
        child_names = {path.last_step.name for path in self._child_last if path.last_step}
        descendant_names = {
            path.last_step.name for path in self._descendant_last if path.last_step
        }
        candidates: set[str] = set()
        if "*" in child_names or "*" in descendant_names:
            # A wildcard last step can stand for any schema tag; fall back to
            # the full alphabet plus all concrete names mentioned.
            candidates.update(self._alphabet)
            candidates.update(name for name in child_names | descendant_names if name != "*")
        else:
            candidates.update(child_names & descendant_names)
            # Concrete names on one side can still pair with a wildcard-free
            # but differently-named path only if identical, so the
            # intersection suffices in this branch.
        return candidates

    # ------------------------------------------------------------------
    # Relevance of tokens
    # ------------------------------------------------------------------
    def decide(self, ancestors: Sequence[str], leaf_tag: str | None) -> RelevanceDecision:
        """Decide relevance of a token.

        Parameters
        ----------
        ancestors:
            Element names strictly above the token (root first).
        leaf_tag:
            The token's own tag name for tag tokens, or None for character
            data.
        """
        key = (tuple(ancestors), leaf_tag)
        cached = self._branch_cache.get(key)
        if cached is not None:
            return cached
        decision = self._decide_uncached(list(ancestors), leaf_tag)
        self._branch_cache[key] = decision
        return decision

    def is_relevant(self, ancestors: Sequence[str], leaf_tag: str | None) -> bool:
        """Boolean shortcut for :meth:`decide`."""
        return self.decide(ancestors, leaf_tag).relevant

    def branch_relevant(self, branch: Sequence[str]) -> RelevanceDecision:
        """Relevance of a *tag* token whose document branch is ``branch``.

        This is the form used by the static analysis (Definition 5): the leaf
        of the branch is the state's own tag.
        """
        if not branch:
            # The empty branch belongs to q0; it is matched by the root path.
            return self._decide_empty()
        return self.decide(tuple(branch[:-1]), branch[-1])

    def _decide_empty(self) -> RelevanceDecision:
        for path in self.extended_paths:
            if not path.steps:
                return RelevanceDecision(True, "C1")
        return RelevanceDecision(False, None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _decide_uncached(self, ancestors: list[str], leaf_tag: str | None) -> RelevanceDecision:
        if leaf_tag is not None:
            chain = ancestors + [leaf_tag]
            # C1: the leaf is matched by any path in P+.
            for path in self.extended_paths:
                if path.matches_leaf(chain):
                    return RelevanceDecision(True, "C1")
            c2_chain = chain
        else:
            # Character data can never be matched by an element name test,
            # so C1 cannot hold for text tokens.
            c2_chain = ancestors

        # C2: some node of the branch is matched by a #-flagged path.
        for path in self.flagged_paths:
            if path.matches_any(c2_chain):
                return RelevanceDecision(True, "C2")

        # C3: a child-axis path and a descendant-axis path both target the
        # same tag below this token's parent.
        for tag in self._c3_candidates:
            substituted = ancestors + [tag]
            child_hit = any(
                path.last_step is not None
                and path.last_step.matches_name(tag)
                and path.matches_leaf(substituted)
                for path in self._child_last
            )
            if not child_hit:
                continue
            descendant_hit = any(
                path.last_step is not None
                and path.last_step.matches_name(tag)
                and path.matches_leaf(substituted)
                for path in self._descendant_last
            )
            if descendant_hit:
                return RelevanceDecision(True, "C3")
        return RelevanceDecision(False, None)

    # ------------------------------------------------------------------
    # Subtree-copy classification (used for the action table T)
    # ------------------------------------------------------------------
    def keeps_subtree(self, branch: Sequence[str]) -> bool:
        """True if the node with document branch ``branch`` satisfies C2.

        The static analysis assigns "copy on"/"copy off" to the dual states
        of such nodes (the whole subtree is required) and "copy tag" to
        merely structurally relevant nodes.
        """
        if not branch:
            return False
        for path in self.flagged_paths:
            if path.matches_any(branch):
                return True
        return False


def build_checker(
    paths: Sequence[ProjectionPath | str],
    alphabet: set[str] | None = None,
    add_default: bool = True,
) -> RelevanceChecker:
    """Convenience constructor accepting strings and adding ``/*`` by default."""
    parsed = [
        path if isinstance(path, ProjectionPath) else ProjectionPath.parse(path)
        for path in paths
    ]
    if add_default:
        parsed = ensure_default_paths(parsed)
    return RelevanceChecker(parsed, alphabet=alphabet)
