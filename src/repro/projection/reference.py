"""Token-based reference projector.

This projector implements the projection semantics of Section III directly on
the *tokenized* document: every token is classified with
:class:`~repro.projection.relevance.RelevanceChecker` and relevant tokens are
copied to the output in document order, which preserves ancestor-descendant
and following relationships (Lemma 1).

It serves two purposes in the reproduction:

* it is the correctness oracle the SMP runtime is tested against, and
* it stands in for Type-Based Projection in the Table III benchmark: like
  TBP it inspects **every** character of the input (full tokenization) while
  producing essentially the same projected document as SMP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.projection.paths import ProjectionPath, ensure_default_paths
from repro.projection.relevance import RelevanceChecker
from repro.xml.serialize import serialize_tokens
from repro.xml.tokenizer import XmlTokenizer
from repro.xml.tokens import Token, TokenKind


@dataclass
class ReferenceProjectionResult:
    """Output of a reference-projection run."""

    output: str
    input_size: int
    output_size: int
    tokens_seen: int = 0
    tokens_kept: int = 0
    kept_by_condition: dict[str, int] = field(default_factory=dict)

    @property
    def reduction_ratio(self) -> float:
        """Output size divided by input size (lower is more aggressive)."""
        if self.input_size == 0:
            return 0.0
        return self.output_size / self.input_size


class ReferenceProjector:
    """Project documents by full tokenization (the paper's Definition 3)."""

    def __init__(
        self,
        paths: Sequence[ProjectionPath | str],
        alphabet: set[str] | None = None,
        add_default_paths: bool = True,
        keep_attributes: bool = True,
    ) -> None:
        parsed = [
            path if isinstance(path, ProjectionPath) else ProjectionPath.parse(path)
            for path in paths
        ]
        if add_default_paths:
            parsed = ensure_default_paths(parsed)
        self.paths = parsed
        self.checker = RelevanceChecker(parsed, alphabet=alphabet)
        self.keep_attributes = keep_attributes

    # ------------------------------------------------------------------
    # Token-level projection
    # ------------------------------------------------------------------
    def project_tokens(self, tokens: Iterable[Token]) -> Iterator[Token]:
        """Yield the relevant tokens of ``tokens`` in document order."""
        stack: list[str] = []
        for token in tokens:
            if token.kind is TokenKind.START_TAG:
                if self.checker.is_relevant(stack, token.name):
                    yield self._strip_attributes(token)
                stack.append(token.name)
            elif token.kind is TokenKind.EMPTY_TAG:
                if self.checker.is_relevant(stack, token.name):
                    yield self._strip_attributes(token)
            elif token.kind is TokenKind.END_TAG:
                if stack:
                    stack.pop()
                if self.checker.is_relevant(stack, token.name):
                    yield token
            elif token.kind in (TokenKind.TEXT, TokenKind.CDATA):
                if self.checker.is_relevant(stack, None):
                    yield token
            # Prolog, comments and processing instructions are dropped, as in
            # the paper's projected documents.

    def _strip_attributes(self, token: Token) -> Token:
        if self.keep_attributes or not token.attributes:
            return token
        return Token(
            kind=token.kind,
            name=token.name,
            attributes=(),
            start=token.start,
            end=token.end,
        )

    # ------------------------------------------------------------------
    # Document-level projection
    # ------------------------------------------------------------------
    def project_text(self, text: str) -> ReferenceProjectionResult:
        """Project an XML document given as text."""
        tokenizer = XmlTokenizer(text)
        kept: list[Token] = []
        kept_by_condition: dict[str, int] = {}
        tokens_seen = 0
        stack: list[str] = []
        for token in tokenizer.tokens():
            tokens_seen += 1
            if token.kind is TokenKind.START_TAG:
                decision = self.checker.decide(tuple(stack), token.name)
                if decision.relevant:
                    kept.append(self._strip_attributes(token))
                    kept_by_condition[decision.condition or "?"] = (
                        kept_by_condition.get(decision.condition or "?", 0) + 1
                    )
                stack.append(token.name)
            elif token.kind is TokenKind.EMPTY_TAG:
                decision = self.checker.decide(tuple(stack), token.name)
                if decision.relevant:
                    kept.append(self._strip_attributes(token))
                    kept_by_condition[decision.condition or "?"] = (
                        kept_by_condition.get(decision.condition or "?", 0) + 1
                    )
            elif token.kind is TokenKind.END_TAG:
                if stack:
                    stack.pop()
                decision = self.checker.decide(tuple(stack), token.name)
                if decision.relevant:
                    kept.append(token)
            elif token.kind in (TokenKind.TEXT, TokenKind.CDATA):
                decision = self.checker.decide(tuple(stack), None)
                if decision.relevant:
                    kept.append(token)
        output = serialize_tokens(kept)
        return ReferenceProjectionResult(
            output=output,
            input_size=len(text),
            output_size=len(output),
            tokens_seen=tokens_seen,
            tokens_kept=len(kept),
            kept_by_condition=kept_by_condition,
        )


def project_document(
    text: str,
    paths: Sequence[ProjectionPath | str],
    alphabet: set[str] | None = None,
) -> str:
    """One-shot helper: project ``text`` for ``paths`` and return the output."""
    projector = ReferenceProjector(paths, alphabet=alphabet)
    return projector.project_text(text).output
