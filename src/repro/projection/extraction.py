"""Extraction of projection paths from query specifications (Example 4).

The paper uses the path-extraction algorithm of Marian & Siméon [5], which
covers full XQuery with downward XPath axes.  This reproduction implements
the part of it that the experiments exercise:

* for an XPath query, the *spine* of the query becomes a ``#``-flagged
  projection path (the query result needs the selected nodes with their
  subtrees), and every relative path used inside a predicate is appended to
  the path of the step carrying the predicate, also ``#``-flagged (predicate
  evaluation may need those subtrees);
* for the XMark XQuery workload, the per-query return/where expressions were
  translated into explicit projection-path sets once (see
  :mod:`repro.workloads.xmark.queries`), exactly as the paper lists them for
  Q13 in Example 4;
* the default path ``/*`` is always added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.projection.paths import (
    Axis,
    PathStep,
    ProjectionPath,
    ensure_default_paths,
)
from repro.xpath.ast import (
    AttributeRef,
    BooleanExpr,
    ComparisonExpr,
    ContainsExpr,
    ExistsExpr,
    LocationPath,
    NodeTestKind,
    PredicateExpr,
    XPathAxis,
)
from repro.xpath.parser import parse_xpath


@dataclass(frozen=True)
class QuerySpec:
    """A query of the experimental workload.

    Attributes
    ----------
    name:
        Identifier used in the paper's tables (e.g. ``XM1`` or ``M3``).
    query:
        The query text.  For XPath queries this is executable by the query
        engines in :mod:`repro.xpath`; for XQuery-style XMark queries it is
        descriptive.
    projection_paths:
        The projection paths handed to the prefilter, as strings.
    xpath:
        An XPath-subset expression the query engines can execute to play the
        role of the downstream XQuery engine, or None when not applicable.
    description:
        Free-text description of what the query does.
    """

    name: str
    query: str
    projection_paths: tuple[str, ...]
    xpath: str | None = None
    description: str = ""

    def parsed_paths(self) -> list[ProjectionPath]:
        """Parse the projection paths (with the default ``/*`` added)."""
        return ensure_default_paths(
            [ProjectionPath.parse(path) for path in self.projection_paths]
        )


def _steps_from_location_path(path: LocationPath) -> list[PathStep]:
    steps: list[PathStep] = []
    for step in path.steps:
        if step.test.kind is NodeTestKind.TEXT:
            # text() selects character data below the current element; for
            # projection purposes the parent element subtree must be kept, so
            # the text() step itself contributes nothing further.
            continue
        axis = Axis.CHILD if step.axis is XPathAxis.CHILD else Axis.DESCENDANT
        steps.append(PathStep(axis=axis, name=step.test.name))
    return steps


def _predicate_paths(expression: PredicateExpr) -> list[LocationPath]:
    """Relative location paths referenced by a predicate expression."""
    if isinstance(expression, BooleanExpr):
        paths: list[LocationPath] = []
        for operand in expression.operands:
            paths.extend(_predicate_paths(operand))
        return paths
    if isinstance(expression, ComparisonExpr):
        return [expression.left] if isinstance(expression.left, LocationPath) else []
    if isinstance(expression, ContainsExpr):
        return [expression.haystack] if isinstance(expression.haystack, LocationPath) else []
    if isinstance(expression, ExistsExpr):
        return [expression.path]
    if isinstance(expression, AttributeRef):
        return []
    return []


def extract_paths_from_xpath(query: str) -> list[ProjectionPath]:
    """Derive projection paths from an XPath query (plus the default ``/*``).

    The spine of the query becomes a ``#``-flagged path.  For every step that
    carries predicates, each relative path inside the predicate is appended
    to the spine prefix ending at that step and also flagged, because the
    prefilter must keep whatever data the predicate inspects.
    """
    location = parse_xpath(query)
    spine_prefix: list[PathStep] = []
    extracted: list[ProjectionPath] = []
    for step in location.steps:
        if step.test.kind is NodeTestKind.TEXT:
            continue
        axis = Axis.CHILD if step.axis is XPathAxis.CHILD else Axis.DESCENDANT
        spine_prefix.append(PathStep(axis=axis, name=step.test.name))
        for predicate in step.predicates:
            for relative in _predicate_paths(predicate):
                relative_steps = _steps_from_location_path(relative)
                extracted.append(
                    ProjectionPath(
                        steps=tuple(spine_prefix + relative_steps), keep_subtree=True
                    )
                )
    spine = ProjectionPath(steps=tuple(spine_prefix), keep_subtree=True)
    extracted.insert(0, spine)
    return ensure_default_paths(_deduplicate(extracted))


def _deduplicate(paths: Sequence[ProjectionPath]) -> list[ProjectionPath]:
    seen: set[ProjectionPath] = set()
    result: list[ProjectionPath] = []
    for path in paths:
        if path not in seen:
            seen.add(path)
            result.append(path)
    return result


def spec_from_xpath(name: str, query: str, description: str = "") -> QuerySpec:
    """Build a :class:`QuerySpec` whose projection paths are extracted
    automatically from an XPath query."""
    paths = extract_paths_from_xpath(query)
    return QuerySpec(
        name=name,
        query=query,
        projection_paths=tuple(str(path) for path in paths if path.steps),
        xpath=query,
        description=description,
    )
