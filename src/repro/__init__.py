"""Reproduction of *XML Prefiltering as a String Matching Problem* (ICDE 2008).

The package implements the SMP prefilter of Koch, Scherzinger and Schmidt and
every substrate it depends on: Boyer-Moore / Commentz-Walter string matching,
DTD parsing and DTD automata, the projection semantics of Section III, a
token-based reference projector, SAX-style tokenization, in-memory and
streaming XPath engines, and synthetic XMark / MEDLINE workloads.

Quickstart -- the unified dataflow API (Source → Query → Engine → Sink)::

    from repro import Dtd, api

    dtd = Dtd.parse(open("site.dtd").read())
    engine = api.Engine(api.Query("//australia//description", dtd))

    run = engine.run(api.Source.from_file("site.xml"))     # O(chunk) memory
    print(run.single.output)                               # the projection
    print(run.single.stats.char_comparison_ratio, "% of bytes inspected")

Sources cover every input shape with uniform chunk-size/alignment options
(``from_text``, ``from_bytes``, ``from_file``, ``from_mmap``,
``from_stdin``, ``from_socket``, ``from_iter``); sinks stream the
projection anywhere (``FileSink``, ``CollectSink``, ``CallbackSink``,
``NullSink``).  N queries share **one** document scan, each with its own
labelled sink::

    engine = api.Engine([api.Query(q, dtd) for q in queries])
    engine.run(api.Source.from_mmap("site.xml"),
               sinks={label: api.FileSink(f"{label}.xml") for label in engine.labels})

Sessions are incremental and *live*: ``feed``/``finish`` chunk by chunk,
with mid-stream query management::

    session = engine.open(live=True, binary=True)
    for chunk in chunks:
        session.feed(chunk)
    handle = session.attach(api.Query("//person//name", dtd))   # hot attach
    session.detach(handle)                                      # hot detach

The asyncio bridge (:mod:`repro.aio`) serves the same dataflow over
sockets -- ``await aio.serve(engine)`` multiplexes one document in, N
labelled projection streams out, with sink backpressure -- and the
end-to-end pipeline (prefilter → project → evaluate) lives in
:class:`repro.pipeline.XPathPipeline`.  The same functionality is available
from the shell as ``python -m repro``.  Any live session can be captured
to a durable, checksummed :class:`Checkpoint` (``session.checkpoint(path)``)
and resumed after a crash via ``engine.open(resume=path)``; corpus runs
journal per-document results for exactly-once restart
(:mod:`repro.checkpoint`).
"""

from repro import api, faults, parallel
from repro.api import (
    CallbackSink,
    Checkpoint,
    CollectSink,
    CorpusRun,
    DocumentRun,
    Engine,
    EngineRun,
    FileSink,
    NullSink,
    Query,
    QueryHandle,
    QueryResult,
    Session,
    Sink,
    Source,
)
from repro.core.multi import MultiQueryEngine, MultiQueryRun, MultiQuerySession
from repro.core.prefilter import FilterSession, SmpPrefilter
from repro.core.sources import (
    BufferPool,
    RetryPolicy,
    align_utf8_chunks,
    decode_chunks,
    file_chunks,
    iter_byte_chunks,
    mmap_chunks,
    socket_chunks,
    split_documents,
    stdin_chunks,
)
from repro.core.stream import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.core.stats import CompilationStatistics, FilterRun, RunStatistics
from repro.dtd.model import Dtd
from repro.errors import (
    CheckpointError,
    CompilationError,
    DtdRecursionError,
    DtdSyntaxError,
    DtdValidationError,
    MatchingError,
    ProjectionPathError,
    QueryError,
    ReproError,
    RuntimeFilterError,
    SourceError,
    WorkloadError,
    XPathSyntaxError,
    XmlSyntaxError,
)
from repro.faults import FaultPlan
from repro.parallel import DocumentFailure, ParallelExecutionError, WorkerPool
from repro.projection.extraction import QuerySpec, extract_paths_from_xpath
from repro.projection.paths import ProjectionPath, parse_projection_paths
from repro.projection.reference import ReferenceProjector

__version__ = "1.1.0"

__all__ = [
    "BufferPool",
    "CallbackSink",
    "CollectSink",
    "Checkpoint",
    "CheckpointError",
    "CorpusRun",
    "CompilationError",
    "CompilationStatistics",
    "DEFAULT_CHUNK_SIZE",
    "Dtd",
    "DtdRecursionError",
    "DtdSyntaxError",
    "DocumentFailure",
    "DocumentRun",
    "DtdValidationError",
    "Engine",
    "EngineRun",
    "FaultPlan",
    "FileSink",
    "FilterRun",
    "FilterSession",
    "MatchingError",
    "MultiQueryEngine",
    "MultiQueryRun",
    "MultiQuerySession",
    "NullSink",
    "ParallelExecutionError",
    "ProjectionPath",
    "ProjectionPathError",
    "Query",
    "QueryError",
    "QueryHandle",
    "QueryResult",
    "QuerySpec",
    "ReferenceProjector",
    "ReproError",
    "RetryPolicy",
    "RunStatistics",
    "RuntimeFilterError",
    "Session",
    "Sink",
    "SmpPrefilter",
    "Source",
    "SourceError",
    "WorkerPool",
    "WorkloadError",
    "XPathSyntaxError",
    "XmlSyntaxError",
    "__version__",
    "aio",
    "align_utf8_chunks",
    "api",
    "decode_chunks",
    "extract_paths_from_xpath",
    "faults",
    "file_chunks",
    "iter_byte_chunks",
    "iter_chunks",
    "mmap_chunks",
    "parallel",
    "parse_projection_paths",
    "socket_chunks",
    "split_documents",
    "stdin_chunks",
]


def __getattr__(name):
    # ``repro.aio`` pulls in asyncio; import it only when first touched.
    if name == "aio":
        import repro.aio as aio

        return aio
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
