"""Reproduction of *XML Prefiltering as a String Matching Problem* (ICDE 2008).

The package implements the SMP prefilter of Koch, Scherzinger and Schmidt and
every substrate it depends on: Boyer-Moore / Commentz-Walter string matching,
DTD parsing and DTD automata, the projection semantics of Section III, a
token-based reference projector, SAX-style tokenization, in-memory and
streaming XPath engines, and synthetic XMark / MEDLINE workloads.

Quickstart -- one-shot filtering of an in-memory document::

    from repro import Dtd, SmpPrefilter

    dtd = Dtd.parse(open("site.dtd").read())
    prefilter = SmpPrefilter.compile(dtd, ["//australia//description#"])
    run = prefilter.filter_document(xml_text)
    print(run.output)
    print(run.stats.char_comparison_ratio, "% of characters inspected")

Streaming -- the same prefilter over a document of any size, in
O(chunk + carry window) memory with identical statistics.  The execution
core is *byte-native*: files are read (or memory-mapped) in binary, the
matcher automata run directly on the UTF-8 bytes, and only the bytes
copied to output are ever decoded (``str`` chunks keep working through a
thin encode shim)::

    run = prefilter.filter_file("site.xml", chunk_size=64 * 1024)
    run = prefilter.filter_mmap("site.xml")            # zero-copy window
    run = prefilter.filter_bytes(payload)              # bytes in, bytes out

    # or drive a session by hand (e.g. from a socket):
    session = prefilter.session(binary=True)
    for chunk in repro.core.sources.socket_chunks(connection):
        sys.stdout.buffer.write(session.feed(chunk))
    sys.stdout.buffer.write(session.finish())

End-to-end query answering (prefilter -> project -> evaluate) without any
whole-document string lives in :class:`repro.pipeline.XPathPipeline`; the
same functionality is available from the shell as ``python -m repro``.
"""

from repro.core.multi import MultiQueryEngine, MultiQueryRun, MultiQuerySession
from repro.core.prefilter import FilterSession, SmpPrefilter
from repro.core.sources import (
    align_utf8_chunks,
    decode_chunks,
    file_chunks,
    iter_byte_chunks,
    mmap_chunks,
    socket_chunks,
    stdin_chunks,
)
from repro.core.stream import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.core.stats import CompilationStatistics, FilterRun, RunStatistics
from repro.dtd.model import Dtd
from repro.errors import (
    CompilationError,
    DtdRecursionError,
    DtdSyntaxError,
    DtdValidationError,
    MatchingError,
    ProjectionPathError,
    QueryError,
    ReproError,
    RuntimeFilterError,
    WorkloadError,
    XPathSyntaxError,
    XmlSyntaxError,
)
from repro.projection.extraction import QuerySpec, extract_paths_from_xpath
from repro.projection.paths import ProjectionPath, parse_projection_paths
from repro.projection.reference import ReferenceProjector

__version__ = "1.0.0"

__all__ = [
    "CompilationError",
    "CompilationStatistics",
    "DEFAULT_CHUNK_SIZE",
    "Dtd",
    "FilterSession",
    "DtdRecursionError",
    "DtdSyntaxError",
    "DtdValidationError",
    "FilterRun",
    "MatchingError",
    "MultiQueryEngine",
    "MultiQueryRun",
    "MultiQuerySession",
    "ProjectionPath",
    "ProjectionPathError",
    "QueryError",
    "QuerySpec",
    "ReferenceProjector",
    "ReproError",
    "RunStatistics",
    "RuntimeFilterError",
    "SmpPrefilter",
    "WorkloadError",
    "XPathSyntaxError",
    "XmlSyntaxError",
    "__version__",
    "align_utf8_chunks",
    "decode_chunks",
    "extract_paths_from_xpath",
    "file_chunks",
    "iter_byte_chunks",
    "iter_chunks",
    "mmap_chunks",
    "parse_projection_paths",
    "socket_chunks",
    "stdin_chunks",
]
