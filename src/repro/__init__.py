"""Reproduction of *XML Prefiltering as a String Matching Problem* (ICDE 2008).

The package implements the SMP prefilter of Koch, Scherzinger and Schmidt and
every substrate it depends on: Boyer-Moore / Commentz-Walter string matching,
DTD parsing and DTD automata, the projection semantics of Section III, a
token-based reference projector, SAX-style tokenization, in-memory and
streaming XPath engines, and synthetic XMark / MEDLINE workloads.

Quickstart::

    from repro import Dtd, SmpPrefilter

    dtd = Dtd.parse(open("site.dtd").read())
    prefilter = SmpPrefilter.compile(dtd, ["//australia//description#"])
    run = prefilter.filter_document(xml_text)
    print(run.output)
    print(run.stats.char_comparison_ratio, "% of characters inspected")
"""

from repro.core.prefilter import SmpPrefilter
from repro.core.stats import CompilationStatistics, FilterRun, RunStatistics
from repro.dtd.model import Dtd
from repro.errors import (
    CompilationError,
    DtdRecursionError,
    DtdSyntaxError,
    DtdValidationError,
    MatchingError,
    ProjectionPathError,
    QueryError,
    ReproError,
    RuntimeFilterError,
    WorkloadError,
    XPathSyntaxError,
    XmlSyntaxError,
)
from repro.projection.extraction import QuerySpec, extract_paths_from_xpath
from repro.projection.paths import ProjectionPath, parse_projection_paths
from repro.projection.reference import ReferenceProjector

__version__ = "1.0.0"

__all__ = [
    "CompilationError",
    "CompilationStatistics",
    "Dtd",
    "DtdRecursionError",
    "DtdSyntaxError",
    "DtdValidationError",
    "FilterRun",
    "MatchingError",
    "ProjectionPath",
    "ProjectionPathError",
    "QueryError",
    "QuerySpec",
    "ReferenceProjector",
    "ReproError",
    "RunStatistics",
    "RuntimeFilterError",
    "SmpPrefilter",
    "WorkloadError",
    "XPathSyntaxError",
    "XmlSyntaxError",
    "__version__",
    "extract_paths_from_xpath",
    "parse_projection_paths",
]
