"""Loader for the optional ``repro._accel`` C extension.

The hot kernels of the SMP runtime -- per-state token location (frontier
search, false-match rejection, quote-aware end-of-tag scan) and the
multi-query union scan -- have a C implementation in ``src/repro/_accel.c``,
built best-effort by ``setup.py`` (``python setup.py build_ext --inplace``).
The extension is strictly optional: every execution path has a pure-Python
batched implementation with byte-identical output *and* statistics, which
the property suite asserts.

Gating:

* ``REPRO_PURE=1`` (any non-empty value) in the environment forces the pure
  path even when the extension is importable -- the CI fallback leg and the
  benchmark ablation use this.
* When the extension was never built (or fails to import), the loader
  silently reports it as unavailable.

The environment variable is read lazily on first use, so test code may set
``REPRO_PURE`` before touching the filter entry points.
"""

from __future__ import annotations

import os

#: Sentinel distinguishing "not probed yet" from "probed, unavailable".
_UNSET = object()
_module = _UNSET


def load_accel():
    """The ``repro._accel`` module, or ``None`` when unavailable/disabled.

    The probe result is cached; flipping ``REPRO_PURE`` after the first
    call has no effect (use :func:`reset` in tests).
    """
    global _module
    if _module is _UNSET:
        if os.environ.get("REPRO_PURE"):
            _module = None
        else:
            try:
                from repro import _accel  # noqa: F401  (built best-effort)
            except ImportError:
                _module = None
            else:
                _module = _accel
    return _module


def accel_available() -> bool:
    """True when the C kernels will actually be used."""
    return load_accel() is not None


def reset() -> None:
    """Forget the cached probe (re-reads ``REPRO_PURE`` on next use)."""
    global _module
    _module = _UNSET
