"""The unified dataflow API: Source → Query → Engine → Sink.

Three generations of entry points grew on top of the SMP prefilter — the
``filter_document/bytes/file/mmap/stream`` matrix on
:class:`~repro.core.prefilter.SmpPrefilter`, the same matrix again on
:class:`~repro.core.multi.MultiQueryEngine`, and the ``run_*`` variants of
:class:`~repro.pipeline.XPathPipeline`.  Every new input kind multiplied
every engine kind.  This module collapses that surface into four composable
pieces:

* :class:`Source` — *where the bytes come from*: text, bytes, files, memory
  maps, stdin, sockets or arbitrary chunk iterables, with uniform
  chunk-size and UTF-8-alignment options (:mod:`repro.core.sources`
  underneath).
* :class:`Query` — *what to project*: an XPath expression or explicit
  projection paths plus the DTD and matcher options.  Hashable, and its
  compiled plan is shared through the existing
  :meth:`~repro.core.prefilter.SmpPrefilter.cached` plan cache.
* :class:`Engine` — one or more queries compiled into an executable plan.
  :meth:`Engine.open` returns a :class:`Session` (``feed``/``finish``/
  ``run``) that supports **live** :meth:`Session.attach` /
  :meth:`Session.detach` of queries mid-document on the shared-scan path.
* :class:`Sink` — *where the projection goes*: collecting buffers, files,
  callbacks or nothing, one per query (labelled) in multi-query runs.

One document, one query, zero to done::

    from repro import Dtd, api

    dtd = Dtd.parse(open("site.dtd").read())
    run = api.Engine(api.Query("//australia//description", dtd)).run(
        api.Source.from_file("site.xml")
    )
    print(run.single.output)

N queries over one shared byte scan, each streaming into its own file::

    engine = api.Engine([api.Query(q, dtd) for q in queries])
    engine.run(api.Source.from_mmap("site.xml"),
               sinks=[api.FileSink(f"out.{i}.xml") for i in range(len(queries))])

Live query management on an open stream::

    session = engine.open(live=True, binary=True)
    for chunk in chunks:
        session.feed(chunk)
        ...
    handle = session.attach(api.Query("//person//name", dtd))  # mid-document
    ...
    session.detach(handle)

The asyncio serving bridge (``await``-based sinks with backpressure and a
one-socket-in / N-labelled-streams-out server) lives in :mod:`repro.aio`.
Durable crash recovery is built in: :meth:`Session.checkpoint` captures a
live session into a :class:`repro.checkpoint.Checkpoint`,
``Engine.open(resume=...)`` restores one, and corpus runs journal merged
documents (``Engine.run(..., journal=path)``) so a killed run resumed with
the same journal skips completed documents with exactly-once output.
"""

from __future__ import annotations

import contextlib
import glob as _glob
import os
import tracemalloc
from dataclasses import dataclass, field, replace
from typing import IO, Callable, Iterable, Iterator, Mapping, Sequence, Union

from repro.checkpoint import (
    Checkpoint,
    CorpusJournal,
    query_fingerprint,
    read_checkpoint,
)
from repro.core.multi import MultiQueryEngine, MultiQuerySession
from repro.core.prefilter import FilterSession, SmpPrefilter
from repro.core.sources import (
    BufferPool,
    RetryPolicy,
    align_utf8_chunks,
    file_chunks,
    open_mmap,
    socket_chunks,
    split_documents,
    split_jsonl,
    stdin_chunks,
)
from repro.core.stats import CompilationStatistics, RunStatistics
from repro.core.stream import DEFAULT_CHUNK_SIZE, iter_chunks
from repro.dtd.model import Dtd
from repro.errors import CheckpointError, QueryError, ReproError
from repro.projection.extraction import QuerySpec, extract_paths_from_xpath
from repro.projection.paths import ProjectionPath

#: Matcher backend of the dataflow API (the wall-clock oriented choice; the
#: paper's ``"instrumented"`` configuration remains available per query).
DEFAULT_BACKEND = "native"

__all__ = [
    "DEFAULT_BACKEND",
    "CallbackSink",
    "Checkpoint",
    "CollectSink",
    "CorpusRun",
    "DocumentRun",
    "Engine",
    "EngineRun",
    "FileSink",
    "NullSink",
    "Query",
    "QueryHandle",
    "QueryResult",
    "RetryPolicy",
    "Session",
    "Sink",
    "Source",
]


# ----------------------------------------------------------------------
# Source
# ----------------------------------------------------------------------
class Source:
    """A uniform, resource-safe description of chunked document input.

    A source knows how to produce the document's chunks and how long the
    backing resource (file handle, memory map, socket) must stay alive:
    :meth:`open` returns a context manager yielding the chunk iterable, and
    the resource is released only when the context exits — *after* the
    consumer finished the document, so zero-copy windows (mmap) stay valid
    through ``Session.finish``.

    Construct sources through the ``from_*`` class methods (or
    :meth:`Source.of` to auto-dispatch on a raw value).  Sources over
    re-readable inputs (text, bytes, files, maps) may be opened any number
    of times; one-shot streams (stdin, sockets, iterables) raise
    :class:`~repro.errors.ReproError` on a second open.
    """

    #: True for multi-document corpus sources (``from_paths``/``from_dir``/
    #: ``from_records``), which are driven through :meth:`documents` by the
    #: parallel engine instead of :meth:`open`.
    corpus: bool = False

    def __init__(
        self,
        opener: Callable[[], "contextlib.AbstractContextManager[Iterable]"],
        *,
        kind: str,
        repeatable: bool = False,
    ) -> None:
        self._opener = opener
        self.kind = kind
        self.repeatable = repeatable
        self._consumed = False
        self._documents: Callable[[], Iterator] | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Source(kind={self.kind!r}, repeatable={self.repeatable})"

    def open(self) -> "contextlib.AbstractContextManager[Iterable]":
        """A context manager yielding the chunk iterable.

        Resources backing the chunks are held until the context exits, so
        drive the session to completion (including ``finish``) inside it.
        """
        if self._consumed and not self.repeatable:
            raise ReproError(
                f"{self.kind} source was already consumed and cannot be "
                "re-opened"
            )
        self._consumed = True
        return self._opener()

    def chunks(self) -> Iterator:
        """The chunk stream, for consumers that manage no resources.

        Equivalent to iterating inside :meth:`open`; the backing resource
        is released when the iterator is exhausted or closed, so consumers
        that buffer chunk objects beyond the iteration (the mmap zero-copy
        window) must use :meth:`open` instead.
        """
        with self.open() as chunks:
            yield from chunks

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str, *, chunk_size: int | None = None) -> "Source":
        """A ``str`` document (the encode shim); one chunk unless sliced."""
        return cls(
            lambda: contextlib.nullcontext(_sliced(text, chunk_size)),
            kind="text",
            repeatable=True,
        )

    @classmethod
    def from_bytes(
        cls,
        data: "bytes | bytearray | memoryview",
        *,
        chunk_size: int | None = None,
        align_utf8: bool = False,
    ) -> "Source":
        """An in-memory UTF-8 byte document; one chunk unless sliced."""
        return cls(
            lambda: contextlib.nullcontext(
                _aligned(_sliced(data, chunk_size), align_utf8)
            ),
            kind="bytes",
            repeatable=True,
        )

    @classmethod
    def from_file(
        cls,
        path: str,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        align_utf8: bool = False,
        pool: "BufferPool | bool | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> "Source":
        """Binary ``chunk_size`` reads of the file at ``path`` (no decode).

        ``pool`` enables zero-copy buffer reuse: the file is read via
        ``readinto`` into recycled :class:`~repro.core.sources.BufferPool`
        buffers instead of allocating a fresh ``bytes`` per chunk.  Pass a
        pool to share buffers across sources, or ``True`` for a private
        pool sized to ``chunk_size``.  ``retry`` retries transient
        mid-stream I/O errors in place with backoff (a
        :class:`~repro.core.sources.RetryPolicy`); unrecoverable mid-stream
        errors surface as :class:`~repro.errors.SourceError`.
        """
        buffers = _resolve_pool(pool, chunk_size)
        return cls(
            lambda: contextlib.nullcontext(
                _aligned(file_chunks(path, chunk_size, pool=buffers,
                                     retry=retry),
                         align_utf8)
            ),
            kind="file",
            repeatable=True,
        )

    @classmethod
    def from_mmap(cls, path: str, *, chunk_size: int | None = None) -> "Source":
        """A memory-mapped document.

        With the default ``chunk_size=None`` the whole map is handed to the
        consumer as a single chunk: the matchers search the mapped pages
        directly and only projected slices are copied to the heap.  The map
        stays open for the lifetime of the :meth:`open` context.
        """

        @contextlib.contextmanager
        def opener():
            mapping = open_mmap(path)
            try:
                if chunk_size is None:
                    yield (mapping,)
                else:
                    yield (
                        mapping[start:start + chunk_size]
                        for start in range(0, len(mapping), chunk_size)
                    )
            finally:
                mapping.close()

        return cls(opener, kind="mmap", repeatable=True)

    @classmethod
    def from_stdin(
        cls,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        align_utf8: bool = False,
        pool: "BufferPool | bool | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> "Source":
        """The process's binary stdin (one-shot).

        ``pool`` reads via ``readinto`` into recycled buffers, ``retry``
        retries transient mid-stream I/O errors (see :meth:`from_file`).
        """
        buffers = _resolve_pool(pool, chunk_size)
        return cls(
            lambda: contextlib.nullcontext(
                _aligned(stdin_chunks(chunk_size, pool=buffers, retry=retry),
                         align_utf8)
            ),
            kind="stdin",
        )

    @classmethod
    def from_socket(
        cls,
        connection,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        align_utf8: bool = False,
        pool: "BufferPool | bool | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> "Source":
        """Chunks received from anything with ``recv`` (one-shot).

        ``pool`` receives via ``recv_into`` into recycled buffers (see
        :meth:`from_file`); connections without ``recv_into`` fall back to
        plain ``recv``.  ``retry`` retries transient receive errors
        (``ECONNRESET``/timeouts) in place; unrecoverable ones surface as
        :class:`~repro.errors.SourceError` with the byte offset reached.
        """
        buffers = _resolve_pool(pool, chunk_size)
        return cls(
            lambda: contextlib.nullcontext(
                _aligned(socket_chunks(connection, chunk_size, pool=buffers,
                                       retry=retry),
                         align_utf8)
            ),
            kind="socket",
        )

    @classmethod
    def from_iter(
        cls,
        chunks: "Iterable | IO[str] | IO[bytes]",
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        align_utf8: bool = False,
    ) -> "Source":
        """An iterable of chunks or a file-like object (one-shot).

        Whole strings/bytes are sliced, file objects read in ``chunk_size``
        pieces, iterables passed through as produced (see
        :func:`repro.core.stream.iter_chunks`).
        """
        return cls(
            lambda: contextlib.nullcontext(
                _aligned(iter_chunks(chunks, chunk_size), align_utf8)
            ),
            kind="iter",
        )

    # ------------------------------------------------------------------
    # Corpus constructors (multi-document workloads)
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(
        cls,
        paths: Sequence[str],
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "Source":
        """A corpus of documents, one per file path, in the given order.

        Corpus sources feed multi-document engine runs -- most usefully
        ``Engine(mode="parallel", jobs=N)``, which shards the documents
        across worker processes; any other engine mode runs them
        sequentially.  The per-document output order is always the corpus
        order, whatever the execution mode.
        """
        path_list = [os.fspath(path) for path in paths]
        if not path_list:
            raise QueryError("a corpus needs at least one document path")

        def documents():
            for path in path_list:
                yield path, ("path", path, chunk_size)

        return cls._corpus(documents, kind="corpus-paths", repeatable=True)

    @classmethod
    def from_dir(
        cls,
        directory: str,
        *,
        pattern: str = "*.xml",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> "Source":
        """A corpus of the files matching ``pattern`` under ``directory``.

        Matches are sorted, so the corpus (and therefore the merged output)
        is deterministic regardless of directory enumeration order.
        """
        matches = sorted(_glob.glob(os.path.join(os.fspath(directory), pattern)))
        if not matches:
            raise QueryError(
                f"no documents match {pattern!r} under {os.fspath(directory)!r}"
            )
        return cls.from_paths(matches, chunk_size=chunk_size)

    @classmethod
    def from_records(
        cls,
        source,
        *,
        end_tag: "bytes | str",
        chunk_size: int | None = None,
    ) -> "Source":
        """A corpus from one concatenated record stream (MEDLINE style).

        ``source`` (a :class:`Source` or any raw value :meth:`of`
        understands) carries many complete documents back to back; the
        stream is split at each ``end_tag`` (the records' closing root tag,
        e.g. ``b"</MedlineCitationSet>"``) into one in-memory document blob
        per record -- the unit the parallel engine shards across workers.
        One-shot unless the underlying source is repeatable.
        """
        raw = cls.of(source, chunk_size=chunk_size)

        def documents():
            with raw.open() as chunks:
                for index, blob in enumerate(split_documents(chunks, end_tag)):
                    yield f"record[{index}]", ("blob", blob)

        return cls._corpus(
            documents, kind="corpus-records", repeatable=raw.repeatable
        )

    @classmethod
    def from_jsonl(
        cls,
        source,
        *,
        transform: Callable,
        chunk_size: int | None = None,
    ) -> "Source":
        """A corpus from a JSON-Lines stream, one record per line.

        ``transform`` maps each raw JSONL record (``bytes``, the line
        without its newline) to the XML document (``bytes`` or ``str``)
        the runtime filters — e.g.
        :func:`repro.workloads.json_records.json_record_to_xml`.  It runs
        in the parent process, so the workers of a parallel engine receive
        ready-made XML blobs and the callable need not be picklable.
        """
        raw = cls.of(source, chunk_size=chunk_size)

        def documents():
            with raw.open() as chunks:
                for index, line in enumerate(split_jsonl(chunks)):
                    blob = transform(line)
                    if isinstance(blob, str):
                        blob = blob.encode("utf-8")
                    yield f"jsonl[{index}]", ("blob", blob)

        return cls._corpus(
            documents, kind="corpus-jsonl", repeatable=raw.repeatable
        )

    @classmethod
    def _corpus(cls, documents: Callable[[], Iterator], *, kind: str,
                repeatable: bool) -> "Source":
        def opener():
            raise ReproError(
                f"{kind} sources hold many documents; run them through an "
                "Engine (e.g. mode='parallel') instead of opening a single "
                "chunk stream"
            )

        self = cls(opener, kind=kind, repeatable=repeatable)
        self.corpus = True
        self._documents = documents
        return self

    def documents(self) -> Iterator[tuple[str, tuple]]:
        """The corpus work items: ``(name, payload)`` per document.

        ``payload`` is the picklable descriptor the parallel workers
        resolve back to a per-document source (``("path", path,
        chunk_size)`` or ``("blob", bytes)``).  Non-corpus sources raise.
        """
        if self._documents is None:
            raise ReproError(f"{self.kind} source is not a corpus")
        if self._consumed and not self.repeatable:
            raise ReproError(
                f"{self.kind} source was already consumed and cannot be "
                "re-opened"
            )
        self._consumed = True
        return self._documents()

    @classmethod
    def of(cls, source, *, chunk_size: int | None = None) -> "Source":
        """Coerce ``source`` to a :class:`Source`.

        Existing sources pass through; ``str`` becomes :meth:`from_text`,
        bytes-likes :meth:`from_bytes` (both as a single chunk unless
        ``chunk_size`` is given); everything else — file objects, sockets,
        chunk iterables — goes through :meth:`from_iter`.
        """
        if isinstance(source, Source):
            return source
        if isinstance(source, str):
            return cls.from_text(source, chunk_size=chunk_size)
        if isinstance(source, (bytes, bytearray, memoryview)):
            return cls.from_bytes(source, chunk_size=chunk_size)
        return cls.from_iter(
            source, chunk_size=chunk_size or DEFAULT_CHUNK_SIZE
        )


def _sliced(data, chunk_size):
    if chunk_size is None:
        return (data,)
    return iter_chunks(data, chunk_size)


def _resolve_pool(pool: "BufferPool | bool | None",
                  chunk_size: int) -> BufferPool | None:
    """``pool=True`` means a private pool sized to the source's chunks."""
    if pool is True:
        return BufferPool(chunk_size)
    if pool is False:
        return None
    return pool


def _aligned(chunks, align_utf8: bool):
    return align_utf8_chunks(chunks) if align_utf8 else chunks


# ----------------------------------------------------------------------
# Query
# ----------------------------------------------------------------------
class Query:
    """A hashable query specification: what to project, against which DTD.

    Construct from an XPath expression (projection paths are extracted with
    the Marian & Siméon rules), from explicit projection paths
    (:meth:`from_paths`), from a workload spec (:meth:`from_spec`) or from a
    prebuilt plan (:meth:`from_plan`).  Two equal queries hash equally and
    :meth:`plan` resolves both to the *same* compiled
    :class:`~repro.core.prefilter.SmpPrefilter` through the existing plan
    cache, so engines built over overlapping query sets compile each query
    once.
    """

    __slots__ = (
        "dtd", "paths", "xpath", "backend", "add_default_paths", "label",
        "_prebuilt", "_cached_plan",
    )

    def __init__(
        self,
        xpath: str,
        dtd: Dtd,
        *,
        backend: str = DEFAULT_BACKEND,
        label: str | None = None,
    ) -> None:
        paths = extract_paths_from_xpath(str(xpath))
        self._init(
            dtd=dtd,
            paths=paths,
            xpath=str(xpath),
            backend=backend,
            add_default_paths=False,
            label=str(xpath) if label is None else label,
            prebuilt=None,
        )

    def _init(self, *, dtd, paths, xpath, backend, add_default_paths, label,
              prebuilt) -> None:
        self.dtd = dtd
        self.paths: tuple[str, ...] = tuple(str(path) for path in paths)
        self.xpath = xpath
        self.backend = backend
        self.add_default_paths = add_default_paths
        self.label = label
        self._prebuilt: SmpPrefilter | None = prebuilt
        self._cached_plan: SmpPrefilter | None = prebuilt

    @classmethod
    def from_paths(
        cls,
        dtd: Dtd,
        paths: Sequence[ProjectionPath | str],
        *,
        backend: str = DEFAULT_BACKEND,
        add_default_paths: bool = True,
        label: str | None = None,
    ) -> "Query":
        """A query given directly as projection paths."""
        self = object.__new__(cls)
        path_strings = tuple(str(path) for path in paths)
        self._init(
            dtd=dtd,
            paths=path_strings,
            xpath=None,
            backend=backend,
            add_default_paths=add_default_paths,
            label=" ".join(path_strings) if label is None else label,
            prebuilt=None,
        )
        return self

    @classmethod
    def from_spec(
        cls,
        dtd: Dtd,
        spec: QuerySpec,
        *,
        backend: str = DEFAULT_BACKEND,
        label: str | None = None,
    ) -> "Query":
        """A query from one of the workload specifications (``M2``, ``XM5``...)."""
        self = object.__new__(cls)
        self._init(
            dtd=dtd,
            paths=tuple(str(path) for path in spec.parsed_paths()),
            xpath=spec.xpath,
            backend=backend,
            add_default_paths=False,
            label=spec.name if label is None else label,
            prebuilt=None,
        )
        return self

    @classmethod
    def from_plan(
        cls, prefilter: SmpPrefilter, *, label: str | None = None
    ) -> "Query":
        """Wrap an already-compiled plan (identity-keyed, never recompiled)."""
        self = object.__new__(cls)
        self._init(
            dtd=prefilter.dtd,
            paths=tuple(str(path) for path in prefilter.paths),
            xpath=None,
            backend=prefilter.backend,
            add_default_paths=False,
            label="plan" if label is None else label,
            prebuilt=prefilter,
        )
        return self

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        if self._prebuilt is not None:
            return ("plan", id(self._prebuilt), self.label)
        return (
            id(self.dtd),
            tuple(sorted(self.paths)),
            self.backend,
            self.add_default_paths,
            self.label,
        )

    def __hash__(self) -> int:
        return hash(self._key())

    def __eq__(self, other) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self._key() == other._key()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Query(label={self.label!r}, paths={self.paths!r})"

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def plan(self) -> SmpPrefilter:
        """The compiled prefilter, resolved through the shared plan cache."""
        if self._cached_plan is None:
            self._cached_plan = SmpPrefilter.cached(
                self.dtd,
                self.paths,
                backend=self.backend,
                add_default_paths=self.add_default_paths,
            )
        return self._cached_plan


def as_query(query: "Query | SmpPrefilter | str", dtd: Dtd | None = None,
             *, backend: str = DEFAULT_BACKEND) -> Query:
    """Coerce ``query`` to a :class:`Query`.

    Accepts queries, prebuilt plans, and — when ``dtd`` is given — XPath
    strings or workload :class:`~repro.projection.extraction.QuerySpec`
    objects.
    """
    if isinstance(query, Query):
        return query
    if isinstance(query, SmpPrefilter):
        return Query.from_plan(query)
    if isinstance(query, QuerySpec):
        if dtd is None:
            raise QueryError("a QuerySpec needs a DTD to become a Query")
        return Query.from_spec(dtd, query, backend=backend)
    if isinstance(query, str):
        if dtd is None:
            raise QueryError("an XPath string needs a DTD to become a Query")
        return Query(query, dtd, backend=backend)
    raise QueryError(f"cannot interpret {query!r} as a query")


# ----------------------------------------------------------------------
# Sink
# ----------------------------------------------------------------------
class Sink:
    """Where projected fragments go.

    ``write`` receives each fragment as soon as it is safe to emit
    (projected ``bytes`` in binary sessions, incrementally decoded ``str``
    otherwise); ``close`` is called exactly once when the owning session
    finishes or is abandoned.  ``binary`` declares the fragment type the
    sink wants (``None`` = either), which :meth:`Engine.open` uses to pick
    the session's output mode when the caller does not say.

    Sinks are context managers (``close`` on exit) so resource-owning sinks
    compose with ``contextlib.ExitStack``.
    """

    #: Chunk-type preference: True = bytes, False = str, None = either.
    binary: bool | None = None

    def write(self, fragment) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; idempotent."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CollectSink(Sink):
    """Accumulate fragments in memory; :meth:`value` joins them.

    The sink is mode-agnostic (``binary=None``); the session it is handed
    to stamps its resolved output mode onto :attr:`binary`, so
    :meth:`value` returns the right empty value even when nothing was
    projected.
    """

    def __init__(self) -> None:
        self.fragments: list = []

    def write(self, fragment) -> None:
        self.fragments.append(fragment)

    def value(self):
        """All fragments as one ``bytes``/``str`` (empty value when none)."""
        if not self.fragments:
            return b"" if self.binary else ""
        empty = b"" if isinstance(self.fragments[0], bytes) else ""
        return empty.join(self.fragments)


class FileSink(Sink):
    """Stream projected bytes into a file.

    ``target`` is a path (opened ``"wb"`` immediately, closed by
    :meth:`close`) or an open file-like object (borrowed: written to, never
    closed, unless ``close_target=True``).
    """

    binary = True

    def __init__(self, target, *, close_target: bool | None = None) -> None:
        if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
            self._stream = open(target, "wb")
            self._owns = True if close_target is None else close_target
        else:
            self._stream = target
            self._owns = bool(close_target)
        self.write = self._stream.write

    def close(self) -> None:
        if self._owns and not self._stream.closed:
            self._stream.close()
        elif not self._owns:
            try:
                self._stream.flush()
            except ValueError:  # pragma: no cover - closed underneath us
                pass


class CallbackSink(Sink):
    """Adapt a plain callable to the sink protocol."""

    def __init__(self, callback: Callable, *, binary: bool | None = None,
                 on_close: Callable[[], None] | None = None) -> None:
        self.write = callback
        self.binary = binary
        self._on_close = on_close

    def close(self) -> None:
        if self._on_close is not None:
            on_close, self._on_close = self._on_close, None
            on_close()


class NullSink(Sink):
    """Discard the projection (statistics-only runs)."""

    def write(self, fragment) -> None:
        pass


AnySinkSpec = Union[Sink, Callable, None]


def _as_sink(sink: AnySinkSpec) -> Sink | None:
    if sink is None or isinstance(sink, Sink):
        return sink
    if callable(sink):
        return CallbackSink(sink)
    raise QueryError(f"cannot interpret {sink!r} as a sink")


def _normalize_sinks(
    sinks: "AnySinkSpec | Sequence[AnySinkSpec] | Mapping[str, AnySinkSpec]",
    labels: Sequence[str],
    *,
    coerce: Callable = _as_sink,
    sink_type: type = Sink,
) -> list | None:
    """One sink slot per query label, in engine order (or None for none).

    ``coerce``/``sink_type`` let :mod:`repro.aio` reuse the same shape
    handling (single sink, sequence, label mapping) for async sinks.
    """
    if sinks is None:
        return None
    if isinstance(sinks, Mapping):
        unknown = set(sinks) - set(labels)
        if unknown:
            raise QueryError(f"sinks for unknown query labels: {sorted(unknown)}")
        return [coerce(sinks.get(label)) for label in labels]
    if isinstance(sinks, sink_type) or callable(sinks):
        if len(labels) != 1:
            raise QueryError(
                f"one sink for {len(labels)} queries; pass a sequence or a "
                "label mapping"
            )
        return [coerce(sinks)]
    sink_list = [coerce(sink) for sink in sinks]
    if len(sink_list) != len(labels):
        raise QueryError(
            f"expected {len(labels)} sinks, got {len(sink_list)}"
        )
    return sink_list


def _resolve_binary(binary: bool | None, sinks: "list | None") -> bool:
    """Pick the session output mode from the sinks' ``binary`` preferences
    (sync or async sinks — only the attribute is read)."""
    if binary is not None:
        return binary
    if sinks:
        preferences = {
            sink.binary for sink in sinks
            if sink is not None and sink.binary is not None
        }
        if len(preferences) > 1:
            raise QueryError(
                "sinks disagree on bytes vs text output; pass binary=... "
                "explicitly"
            )
        if preferences:
            return preferences.pop()
    return False


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class QueryResult:
    """One query's share of an engine run."""

    label: str
    output: "str | bytes"
    stats: RunStatistics
    compilation: CompilationStatistics = field(
        default_factory=CompilationStatistics
    )

    @property
    def output_size(self) -> int:
        """Size of the projected output (characters or bytes)."""
        return len(self.output)


@dataclass
class EngineRun:
    """The result of running an engine over one document."""

    results: list[QueryResult]
    #: The once-paid shared-scan counters (None on the searching path,
    #: where the matcher counters live on the per-query statistics).
    scan_stats: RunStatistics | None = None

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, key) -> QueryResult:
        if isinstance(key, str):
            for result in self.results:
                if result.label == key:
                    return result
            raise KeyError(key)
        return self.results[key]

    @property
    def single(self) -> QueryResult:
        """The only result of a single-query run."""
        if len(self.results) != 1:
            raise QueryError(
                f"run carries {len(self.results)} results; index by label"
            )
        return self.results[0]

    @property
    def labels(self) -> list[str]:
        return [result.label for result in self.results]

    @property
    def outputs(self) -> list:
        return [result.output for result in self.results]


@dataclass
class DocumentRun:
    """One document's share of a corpus run."""

    index: int
    name: str
    run: EngineRun

    @property
    def results(self) -> list[QueryResult]:
        return self.run.results

    def __getitem__(self, key) -> QueryResult:
        return self.run[key]


@dataclass
class CorpusRun:
    """The result of running an engine over a multi-document corpus.

    ``documents`` holds the per-document runs in corpus order;
    ``results`` the per-query aggregate: outputs concatenated across
    documents (in corpus order -- byte-identical to filtering the
    documents sequentially) and statistics summed with
    :meth:`~repro.core.stats.RunStatistics.merge`.  ``jobs`` records the
    worker count the corpus actually ran with (1 = in-process).

    ``failures`` quarantines the documents that failed under
    ``on_error="collect"``: a list of
    :class:`repro.parallel.DocumentFailure` (path/record name, attempt
    count, cause) in corpus order.  Healthy documents' output is unchanged
    by a quarantine; with the default ``on_error="raise"`` the list is
    always empty.
    """

    documents: list[DocumentRun]
    results: list[QueryResult]
    scan_stats: RunStatistics | None = None
    jobs: int = 1
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no document was quarantined."""
        return not self.failures

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, key) -> QueryResult:
        if isinstance(key, str):
            for result in self.results:
                if result.label == key:
                    return result
            raise KeyError(key)
        return self.results[key]

    @property
    def single(self) -> QueryResult:
        """The only aggregate result of a single-query corpus run."""
        if len(self.results) != 1:
            raise QueryError(
                f"run carries {len(self.results)} results; index by label"
            )
        return self.results[0]

    @property
    def labels(self) -> list[str]:
        return [result.label for result in self.results]

    @property
    def outputs(self) -> list:
        return [result.output for result in self.results]

    def document(self, name: str) -> DocumentRun:
        """The run of the document called ``name`` (path or record name)."""
        for document in self.documents:
            if document.name == name:
                return document
        raise KeyError(name)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class Engine:
    """One or more queries compiled into an executable dataflow plan.

    Parameters
    ----------
    queries:
        A :class:`Query` (or prebuilt :class:`SmpPrefilter`), or a sequence
        of them.  All queries must share one DTD object.
    mode:
        ``"search"`` — the single-query searching runtime (Boyer-Moore /
        Commentz-Walter frontier searches; full matcher statistics).  Only
        valid for exactly one query.
        ``"shared"`` — the shared-scan runtime (one union-automaton pass
        feeding N driven streams; supports live attach/detach).
        ``"parallel"`` — the multi-process sharded runtime: :meth:`run`
        takes a *corpus* source (``Source.from_paths``/``from_dir``/
        ``from_records``) and shards its documents across ``jobs`` worker
        processes (:mod:`repro.parallel`), each running byte-native
        sessions over its shard; the order-preserving merge keeps output
        and aggregated statistics byte-identical to sequential execution.
        ``"auto"`` (default) — ``"search"`` for one query, ``"shared"``
        otherwise (and the sequential per-document loop for corpus
        sources).
    jobs:
        Worker process count for ``mode="parallel"`` (default: the CPUs
        available to this process).  ``jobs=1`` runs the corpus in-process,
        with no worker processes and no pickling.

    The engine is immutable and reusable: every :meth:`open`/:meth:`run`
    gets its own session, any number of which may run concurrently.
    """

    def __init__(
        self,
        queries: "Query | SmpPrefilter | Sequence[Query | SmpPrefilter]",
        *,
        mode: str = "auto",
        jobs: int | None = None,
    ) -> None:
        if isinstance(queries, (Query, SmpPrefilter)):
            queries = [queries]
        normalized = [as_query(query) for query in queries]
        if not normalized:
            raise QueryError("an Engine needs at least one query")
        if mode not in ("auto", "search", "shared", "parallel"):
            raise QueryError(f"unknown engine mode {mode!r}")
        if mode == "search" and len(normalized) != 1:
            raise QueryError("mode='search' supports exactly one query")
        if jobs is not None:
            if mode != "parallel":
                raise QueryError("jobs=... needs mode='parallel'")
            if jobs < 1:
                raise QueryError(f"jobs must be >= 1, got {jobs}")
        dtd = normalized[0].dtd
        for query in normalized[1:]:
            if query.dtd is not dtd:
                raise QueryError("all queries of one engine must share a DTD")
        self.queries: tuple[Query, ...] = tuple(normalized)
        self.dtd = dtd
        self.mode = mode
        self.jobs = jobs
        self.labels: list[str] = [query.label for query in normalized]
        self.plans: list[SmpPrefilter] = [query.plan() for query in normalized]
        self._multi: MultiQueryEngine | None = None

    @classmethod
    def _wrap_multi(cls, multi: MultiQueryEngine) -> "Engine":
        """An engine over an existing shared-scan engine (the legacy shims)."""
        self = cls(
            [
                Query.from_plan(plan, label=label)
                for plan, label in zip(multi.prefilters, multi.labels)
            ],
            mode="shared",
        )
        self._multi = multi
        return self

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------
    def _shared_engine(self) -> MultiQueryEngine:
        if self._multi is None:
            multi = MultiQueryEngine(
                self.dtd, self.plans, backend=self.queries[0].backend
            )
            multi.labels = list(self.labels)
            self._multi = multi
        return self._multi

    def _query_fingerprints(self) -> list[str]:
        """Stable digests of the engine's query set (checkpoint identity)."""
        return [
            query_fingerprint(query.paths, query.backend,
                              query.add_default_paths, query.label)
            for query in self.queries
        ]

    def open(
        self,
        *,
        sinks: "AnySinkSpec | Sequence[AnySinkSpec] | Mapping[str, AnySinkSpec]" = None,
        binary: bool | None = None,
        live: bool = False,
        resume: "Checkpoint | dict | str | os.PathLike | None" = None,
    ) -> "Session":
        """Open a streaming :class:`Session` for one document.

        ``sinks`` routes each query's fragments to its endpoint (a single
        sink, a sequence in query order, or a ``{label: sink}`` mapping);
        without sinks, ``feed``/``finish`` return the emitted output.
        ``binary`` selects bytes vs text output; ``None`` adopts the sinks'
        preference (default text).  ``live=True`` forces the shared-scan
        machinery even for a single query, enabling mid-document
        :meth:`Session.attach` / :meth:`Session.detach`.

        ``resume`` restores a checkpoint captured by
        :meth:`Session.checkpoint` — a :class:`~repro.checkpoint.Checkpoint`,
        its raw snapshot dictionary, or a checkpoint file path.  The
        engine's query set must match the one the checkpoint was captured
        under (verified by fingerprint; :class:`~repro.errors.CheckpointError`
        otherwise), queries that had been attached mid-document are
        re-attached (their sinks are not persisted — route them again if
        needed), and the session continues exactly where the capture left
        off: feed it the original input from
        ``Checkpoint.input_offset`` on (:func:`repro.checkpoint.resume_chunks`)
        and output and statistics stay byte-identical to an uninterrupted
        run.

        A ``mode="parallel"`` engine has no single-document session of its
        own; its workers open in-process sessions over the same plans (use
        a ``"search"``/``"shared"`` engine, or :func:`repro.parallel.
        WorkerPool.open_session` for a session living in a worker).
        """
        if self.mode == "parallel":
            raise QueryError(
                "mode='parallel' engines run corpus sources; open() needs a "
                "search/shared engine (see repro.parallel.WorkerPool."
                "open_session for worker-resident sessions)"
            )
        resume_data = None
        if resume is not None:
            if isinstance(resume, Checkpoint):
                resume_data = resume.snapshot
            elif isinstance(resume, dict):
                resume_data = resume
            else:
                resume_data = read_checkpoint(os.fspath(resume))
            if resume_data.get("kind") != "session":
                raise CheckpointError(
                    f"cannot resume a {resume_data.get('kind')!r} snapshot "
                    "as a streaming session"
                )
            if list(resume_data.get("query_hashes", ())) != \
                    self._query_fingerprints():
                raise CheckpointError(
                    "checkpoint was captured under a different query set; "
                    "open it with an engine built over the same queries"
                )
            if binary is None:
                binary = bool(resume_data.get("binary", False))
        sink_list = _normalize_sinks(sinks, self.labels)
        resolved_binary = _resolve_binary(binary, sink_list)
        shared = self.mode == "shared" or live or (
            self.mode == "auto" and len(self.queries) > 1
        )
        if resume_data is not None:
            if resolved_binary != bool(resume_data.get("binary", False)):
                raise CheckpointError(
                    "checkpoint was captured in "
                    f"{'binary' if resume_data.get('binary') else 'text'} "
                    "output mode; resume with the same mode"
                )
            shared = resume_data.get("mode") == "shared"
        session = Session(self, sink_list, binary=resolved_binary,
                          shared=shared)
        if resume_data is not None:
            session._restore(resume_data)
        return session

    def run(
        self,
        source,
        *,
        sinks: "AnySinkSpec | Sequence[AnySinkSpec] | Mapping[str, AnySinkSpec]" = None,
        binary: bool | None = None,
        live: bool = False,
        chunk_size: int | None = None,
        measure_memory: bool = False,
        on_error: str = "raise",
        retry: "RetryPolicy | None" = None,
        deadline: float | None = None,
        journal: "str | os.PathLike | None" = None,
    ) -> EngineRun:
        """Run the whole dataflow: open a session, drive ``source``, finish.

        ``source`` may be a :class:`Source` or any raw value
        :meth:`Source.of` understands.  With ``measure_memory`` the peak
        traced allocation lands on the run's scan statistics (shared mode)
        or the single query's statistics (search mode).

        A *corpus* source (``Source.from_paths``/``from_dir``/
        ``from_records``) runs document by document and returns a
        :class:`CorpusRun`: sharded across worker processes on a
        ``mode="parallel"`` engine, sequentially in-process otherwise —
        with byte-identical merged output either way.  Corpus runs take
        the fault-tolerance knobs (see
        :func:`repro.parallel.execute_corpus` for full semantics):
        ``retry`` resubmits documents whose failure was transient (dead
        worker, retryable I/O) with exponential backoff; ``deadline``
        bounds each document's wall-clock seconds (the hung worker is
        killed and replaced); ``on_error`` decides what a (still) failing
        document does — ``"raise"`` aborts the run, ``"skip"`` drops it,
        ``"collect"`` quarantines it into ``CorpusRun.failures`` while
        healthy documents' output is unchanged.

        ``journal`` makes a corpus run *resumable*: every merged document
        success is appended to the JSONL journal at that path
        (:class:`repro.checkpoint.CorpusJournal`), and a run restarted
        with the same journal — e.g. after a hard process kill — replays
        the journaled documents instead of re-executing them, so each
        document's output lands in the merged result exactly once.
        Failed documents are never journaled (they are re-attempted on
        resume, composing with ``retry``/``on_error``); a journal written
        for a different query set or output mode is rejected with
        :class:`~repro.errors.CheckpointError`.
        """
        source = Source.of(source, chunk_size=chunk_size)
        if source.corpus or self.mode == "parallel":
            if not source.corpus:
                raise QueryError(
                    "mode='parallel' shards documents, so it needs a corpus "
                    "Source (from_paths/from_dir/from_records); wrap a "
                    "single document in Source.from_paths([path])"
                )
            if live:
                raise QueryError("live attach/detach is per-session; corpus "
                                 "runs do not support live=True")
            if measure_memory:
                raise QueryError(
                    "measure_memory traces one process; it is not supported "
                    "for corpus runs"
                )
            return self._run_corpus(source, sinks=sinks, binary=binary,
                                    on_error=on_error, retry=retry,
                                    deadline=deadline, journal=journal)
        if on_error != "raise" or retry is not None or deadline is not None \
                or journal is not None:
            raise QueryError(
                "on_error/retry/deadline/journal are corpus-run policies; "
                "single-document sources take a retry= on their "
                "Source.from_* constructor instead (and checkpoint through "
                "Session.checkpoint)"
            )
        if measure_memory:
            tracemalloc.start()
        try:
            session = self.open(sinks=sinks, binary=binary, live=live)
            run = session.run(source)
        finally:
            if measure_memory:
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
        if measure_memory:
            target = run.scan_stats if run.scan_stats is not None \
                else run.results[0].stats
            target.peak_memory_bytes = peak
        return run

    def _run_corpus(
        self,
        source: Source,
        *,
        sinks,
        binary: bool | None,
        on_error: str = "raise",
        retry: "RetryPolicy | None" = None,
        deadline: float | None = None,
        journal: "str | os.PathLike | None" = None,
    ) -> CorpusRun:
        """Drive a corpus source document by document (sharded or not).

        The parallel path and the sequential path share this merge loop:
        outcomes arrive in corpus order (see
        :func:`repro.parallel.execute_corpus`), per-query outputs are
        concatenated in that order and statistics summed, so the two paths
        are byte-identical by construction.  With a ``journal``, completed
        documents found in it are replayed instead of re-run and fresh
        successes are appended to it as they merge.
        """
        from repro import parallel

        sink_list = _normalize_sinks(sinks, self.labels)
        resolved_binary = _resolve_binary(binary, sink_list)
        for sink in sink_list or ():
            if sink is not None and sink.binary is None:
                sink.binary = resolved_binary
        if self.mode == "parallel":
            jobs = self.jobs if self.jobs is not None else parallel.default_jobs()
        else:
            jobs = 1
        documents: list[DocumentRun] = []
        failures: list = []
        pieces: list[list] = [[] for _ in self.labels]
        aggregates = [RunStatistics() for _ in self.labels]
        scan_total: RunStatistics | None = None
        journal_store: CorpusJournal | None = None
        try:
            if journal is not None:
                journal_store = CorpusJournal.resume(
                    os.fspath(journal), self._query_fingerprints(),
                    resolved_binary,
                )
                outcomes = self._journaled_outcomes(
                    source, journal_store, jobs=jobs, retry=retry,
                    on_error=on_error, deadline=deadline,
                )
            else:
                outcomes = parallel.execute_corpus(
                    self,
                    source.documents(),
                    jobs=jobs,
                    retry=retry,
                    on_error=on_error,
                    deadline=deadline,
                )
            empty_value = b"" if resolved_binary else ""
            for outcome in outcomes:
                if outcome.failure is not None:
                    failures.append(outcome.failure)
                    continue
                doc_results: list[QueryResult] = []
                for index, (label, output, stats) in enumerate(
                    zip(self.labels, outcome.outputs, outcome.stats)
                ):
                    value = output if resolved_binary else output.decode("utf-8")
                    sink = sink_list[index] if sink_list else None
                    if sink is not None:
                        # Sink-routed queries stream: nothing is retained,
                        # neither on the aggregate nor per document (same
                        # contract as Session.run), so corpus memory stays
                        # bounded by one document's output.
                        if value:
                            sink.write(value)
                        value = empty_value
                    elif value:
                        pieces[index].append(value)
                    aggregates[index].merge(stats)
                    doc_results.append(QueryResult(
                        label=label,
                        output=value,
                        stats=stats,
                        compilation=self.plans[index].compilation,
                    ))
                if outcome.scan_stats is not None:
                    if scan_total is None:
                        scan_total = RunStatistics()
                    scan_total.merge(outcome.scan_stats)
                documents.append(DocumentRun(
                    index=outcome.index,
                    name=outcome.name,
                    run=EngineRun(results=doc_results,
                                  scan_stats=outcome.scan_stats),
                ))
        finally:
            if journal_store is not None:
                journal_store.close()
            for sink in sink_list or ():
                if sink is not None:
                    sink.close()
        empty = b"" if resolved_binary else ""
        results = [
            QueryResult(
                label=label,
                output=empty.join(parts),
                stats=aggregate,
                compilation=plan.compilation,
            )
            for label, parts, aggregate, plan in zip(
                self.labels, pieces, aggregates, self.plans
            )
        ]
        return CorpusRun(documents=documents, results=results,
                         scan_stats=scan_total, jobs=jobs,
                         failures=failures)

    def _journaled_outcomes(
        self,
        source: Source,
        journal: CorpusJournal,
        *,
        jobs: int,
        retry: "RetryPolicy | None",
        on_error: str,
        deadline: float | None,
    ) -> Iterator:
        """Corpus outcomes with journal replay/record woven in.

        Documents already recorded in the journal are served from it
        (outputs and statistics exactly as first merged); the rest run
        through :func:`repro.parallel.execute_corpus` as usual, their
        indices mapped back from the compacted work list to corpus
        positions, and each fresh success is journaled before it is
        yielded to the merge.  The two ordered streams interleave back
        into strict corpus order.
        """
        from repro import parallel

        items = list(source.documents())
        completed = journal.completed
        todo = [item for index, item in enumerate(items)
                if index not in completed]
        original_index = [index for index in range(len(items))
                          if index not in completed]
        replay_order = sorted(index for index in completed
                              if 0 <= index < len(items))
        fresh = iter(parallel.execute_corpus(
            self, todo, jobs=jobs, retry=retry, on_error=on_error,
            deadline=deadline,
        )) if todo else iter(())
        next_fresh = next(fresh, None)
        replay_at = 0
        while replay_at < len(replay_order) or next_fresh is not None:
            if next_fresh is not None:
                fresh_index = original_index[next_fresh.index]
            else:
                fresh_index = None
            if fresh_index is None or (
                replay_at < len(replay_order)
                and replay_order[replay_at] < fresh_index
            ):
                index = replay_order[replay_at]
                replay_at += 1
                entry = completed[index]
                scan_state = entry.get("scan_stats")
                yield parallel.DocumentOutcome(
                    index=index,
                    name=entry.get("name", f"document[{index}]"),
                    outputs=list(entry.get("outputs", ())),
                    stats=[RunStatistics.from_state(state)
                           for state in entry.get("stats", ())],
                    scan_stats=RunStatistics.from_state(scan_state)
                    if scan_state else None,
                )
                continue
            outcome = next_fresh
            next_fresh = next(fresh, None)
            failure = outcome.failure
            if failure is not None:
                failure = replace(failure, index=fresh_index)
            outcome = replace(outcome, index=fresh_index, failure=failure)
            if outcome.failure is None:
                journal.record(
                    fresh_index,
                    outcome.name,
                    outcome.outputs,
                    [stats.export_state() for stats in outcome.stats],
                    outcome.scan_stats.export_state()
                    if outcome.scan_stats is not None else None,
                )
            yield outcome


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
@dataclass(eq=False)
class QueryHandle:
    """A live query inside a :class:`Session` (returned by ``attach`` too)."""

    session: "Session"
    index: int
    query: Query
    label: str

    @property
    def stats(self) -> RunStatistics:
        """The query's structural statistics so far."""
        return self.session.stats[self.index]

    @property
    def attached_at(self) -> int:
        """Absolute input byte offset the query started observing from."""
        return self.session._attach_offset(self.index)

    @property
    def detached(self) -> bool:
        return self.session._is_detached(self.index)

    @property
    def accepted(self) -> bool:
        """True once the query's runtime automaton reached a final state.

        Queries attached mid-document may legitimately never accept (their
        automaton missed the document root); ``finish`` does not validate
        them — this flag tells.
        """
        return self.session._is_accepted(self.index)


class Session:
    """One document flowing through an engine: feed, finish, attach, detach.

    ``feed(chunk)`` returns the list of newly emitted per-query outputs (in
    handle order; empty entries for sink-routed or detached queries);
    ``finish()`` returns the remaining outputs, validates acceptance and
    closes the sinks.  :meth:`run` drives a whole :class:`Source`.  On the
    shared-scan path (multi-query engines, or ``open(live=True)``)
    :meth:`attach` adds a query mid-document and :meth:`detach` removes one;
    the searching path raises :class:`~repro.errors.QueryError` for both.
    """

    def __init__(
        self,
        engine: Engine,
        sinks: list[Sink | None] | None,
        *,
        binary: bool,
        shared: bool,
    ) -> None:
        self.engine = engine
        self.binary = binary
        self._sinks: list[Sink | None] = list(sinks) if sinks else [
            None for _ in engine.queries
        ]
        for sink in self._sinks:
            if sink is not None and sink.binary is None:
                sink.binary = binary  # mode-agnostic sinks adopt ours
        self._closed = False
        callbacks = [
            None if sink is None else sink.write for sink in self._sinks
        ]
        self._single: FilterSession | None = None
        self._shared: MultiQuerySession | None = None
        if shared:
            self._shared = engine._shared_engine().session(
                sinks=callbacks, binary=binary
            )
        else:
            self._single = engine.plans[0].session(
                sink=callbacks[0], binary=binary
            )
        self.handles: list[QueryHandle] = [
            QueryHandle(session=self, index=index, query=query, label=label)
            for index, (query, label) in enumerate(
                zip(engine.queries, engine.labels)
            )
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def labels(self) -> list[str]:
        return [handle.label for handle in self.handles]

    @property
    def stats(self) -> list[RunStatistics]:
        """Per-query statistics, in handle order."""
        if self._shared is not None:
            return self._shared.stats
        return [self._single.stats]

    @property
    def scan_stats(self) -> RunStatistics | None:
        """The once-paid shared-scan counters (None on the searching path)."""
        if self._shared is not None:
            return self._shared.scan_stats
        return None

    @property
    def buffered_bytes(self) -> int:
        """Input bytes currently retained in the carry-over window."""
        if self._shared is not None:
            return self._shared.buffered_bytes
        return self._single.buffered_bytes

    @property
    def finished(self) -> bool:
        if self._shared is not None:
            return self._shared.finished
        return self._single.finished

    def _attach_offset(self, index: int) -> int:
        if self._shared is not None:
            return self._shared.attach_offset(index)
        return 0

    def _is_detached(self, index: int) -> bool:
        return self._shared is not None and not self._shared.is_attached(index)

    def _is_accepted(self, index: int) -> bool:
        if self._shared is not None:
            return self._shared.accepted(index)
        return self._single.accepted

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, chunk) -> list:
        """Process one chunk; returns per-query emitted output (handle order)."""
        if self._shared is not None:
            return self._shared.feed(chunk)
        return [self._single.feed(chunk)]

    def finish(self) -> list:
        """End of input: validate acceptance, close sinks, return the rest."""
        try:
            if self._shared is not None:
                outputs = self._shared.finish()
            else:
                outputs = [self._single.finish()]
        finally:
            self.close()
        return outputs

    def close(self) -> None:
        """Close every sink exactly once (also safe to call on abandon)."""
        if self._closed:
            return
        self._closed = True
        for sink in self._sinks:
            if sink is not None:
                sink.close()

    # ------------------------------------------------------------------
    # Durable checkpoint / resume
    # ------------------------------------------------------------------
    def checkpoint(self, path: "str | os.PathLike | None" = None) -> Checkpoint:
        """Capture the session's complete resume state.

        Returns a :class:`~repro.checkpoint.Checkpoint` (atomically written
        to ``path`` when given) holding everything a fresh process needs to
        continue this exact run: the carry-over window bytes, tokenizer and
        per-query automaton state — including queries attached or detached
        mid-document — and every statistics counter.  Restore it with
        ``Engine.open(resume=...)`` on an engine built over the same query
        set, re-feed the input from :attr:`Checkpoint.input_offset` on, and
        output and statistics are byte-identical to an uninterrupted run.

        Checkpoints are taken at chunk boundaries (between ``feed`` calls);
        under ``delivery="pertoken"`` the captured state may trail the last
        fed byte, in which case :attr:`Checkpoint.input_offset` and
        :attr:`Checkpoint.output_sizes` point the resume driver at the
        exact replay position.  A finished or closed session cannot be
        checkpointed (:class:`~repro.errors.CheckpointError`).
        """
        if self._closed or self.finished:
            raise CheckpointError(
                "cannot checkpoint a finished or closed session"
            )
        if self._shared is not None:
            mode = "shared"
            state = self._shared.export_state()
            streams = state["streams"]
        else:
            mode = "single"
            state = self._single.export_state()
            streams = [state]
        attached = []
        for handle in self.handles[len(self.engine.queries):]:
            query = handle.query
            attached.append({
                "label": handle.label,
                "paths": list(query.paths),
                "backend": query.backend,
                "add_default_paths": query.add_default_paths,
            })
        snapshot = {
            "kind": "session",
            "mode": mode,
            "binary": self.binary,
            "input_offset": int(state["input_offset"]),
            "query_hashes": self.engine._query_fingerprints(),
            "attached": attached,
            "output_sizes": [self._flushed_size(s) for s in streams],
            "state": state,
        }
        checkpoint = Checkpoint(snapshot)
        if path is not None:
            checkpoint.save(os.fspath(path))
        return checkpoint

    def _flushed_size(self, stream_state: dict) -> int:
        """Output bytes the captured stream had already delivered.

        In text mode the decoder may hold a partial UTF-8 sequence that is
        counted in ``emitted_bytes`` but was not yet part of any returned
        ``str`` — the resume driver truncates prior output to this size
        (measured in encoded bytes).
        """
        emitted = int(stream_state.get("emitted_bytes", 0))
        if not self.binary:
            decoder = stream_state.get("decoder")
            if decoder:
                emitted -= len(decoder[0])
        return emitted

    def _restore(self, data: dict) -> None:
        """Restore a session-kind snapshot into this fresh session."""
        for recipe in data.get("attached", ()):
            query = Query.from_paths(
                self.engine.dtd,
                recipe["paths"],
                backend=recipe["backend"],
                add_default_paths=recipe["add_default_paths"],
                label=recipe["label"],
            )
            self.attach(query, label=recipe["label"])
        state = data.get("state")
        if not isinstance(state, dict):
            raise CheckpointError(
                "session checkpoint carries no state snapshot"
            )
        if self._shared is not None:
            self._shared.import_state(state)
        else:
            self._single.import_state(state)

    def run(self, source) -> EngineRun:
        """Drive a whole :class:`Source` through the session.

        Feeds every chunk inside the source's resource context (so
        zero-copy windows stay valid through ``finish``), closes the sinks
        on every exit path, and returns the per-query results.
        """
        source = Source.of(source)
        pieces: list[list] = [[] for _ in self.handles]
        try:
            with source.open() as chunks:
                for chunk in chunks:
                    self._gather(self.feed(chunk), pieces)
                self._gather(self.finish(), pieces)
        finally:
            self.close()
        empty = b"" if self.binary else ""
        results = [
            QueryResult(
                label=handle.label,
                output=empty.join(parts),
                stats=stats,
                compilation=self._compilation(index),
            )
            for index, (handle, parts, stats) in enumerate(
                zip(self.handles, pieces, self.stats)
            )
        ]
        return EngineRun(results=results, scan_stats=self.scan_stats)

    def _gather(self, outputs: list, pieces: list[list]) -> None:
        while len(pieces) < len(outputs):
            pieces.append([])
        for index, emitted in enumerate(outputs):
            if emitted:
                pieces[index].append(emitted)

    def _compilation(self, index: int) -> CompilationStatistics:
        if self._shared is not None:
            return self._shared.prefilters[index].compilation
        return self.engine.plans[index].compilation

    # ------------------------------------------------------------------
    # Live query management (shared-scan sessions)
    # ------------------------------------------------------------------
    def attach(
        self,
        query: "Query | SmpPrefilter",
        *,
        sink: AnySinkSpec = None,
        label: str | None = None,
    ) -> QueryHandle:
        """Attach a query to the live stream, mid-document.

        The query starts observing at the session's current dispatch
        frontier (``handle.attached_at``): its output and structural
        statistics equal a fresh session fed only the input from that byte
        offset on.  Only available on shared-scan sessions — open the
        engine with ``mode="shared"`` or ``open(live=True)``.
        """
        if self._shared is None:
            raise QueryError(
                "live attach needs a shared-scan session; build the Engine "
                "with mode='shared' or call open(live=True)"
            )
        query = as_query(query)
        sink_obj = _as_sink(sink)
        index = self._shared.attach(
            query.plan(),
            sink=None if sink_obj is None else sink_obj.write,
            label=label if label is not None else query.label,
        )
        self._sinks.append(sink_obj)
        handle = QueryHandle(
            session=self,
            index=index,
            query=query,
            label=self._shared.labels[index],
        )
        self.handles.append(handle)
        return handle

    def detach(self, handle: QueryHandle):
        """Detach a live query; returns its pending un-taken output.

        The query's statistics freeze and it emits nothing further; its
        handle (and feed slot) remain, reporting ``detached``.
        """
        if self._shared is None:
            raise QueryError("detach needs a shared-scan session")
        if handle.session is not self:
            raise QueryError("handle belongs to a different session")
        return self._shared.detach(handle.index)
