"""DTD substrate: parsing, content models, Glushkov and DTD automata."""

from repro.dtd.ast import (
    AttributeDecl,
    AttributeDefault,
    ChoiceNode,
    ContentKind,
    ContentNode,
    ElementDecl,
    EmptyNode,
    NameNode,
    PcdataNode,
    RepeatKind,
    RepeatNode,
    SequenceNode,
)
from repro.dtd.automaton import (
    CLOSE,
    OPEN,
    DtdAutomaton,
    DtdState,
    OccurrencePair,
    Symbol,
    close_symbol,
    open_symbol,
)
from repro.dtd.glushkov import GlushkovAutomaton, build_glushkov, minimal_child_sequence
from repro.dtd.model import Dtd, load_dtd
from repro.dtd.parser import ParsedDtd, parse_content_model, parse_dtd_text

__all__ = [
    "AttributeDecl",
    "AttributeDefault",
    "CLOSE",
    "ChoiceNode",
    "ContentKind",
    "ContentNode",
    "Dtd",
    "DtdAutomaton",
    "DtdState",
    "ElementDecl",
    "EmptyNode",
    "GlushkovAutomaton",
    "NameNode",
    "OPEN",
    "OccurrencePair",
    "ParsedDtd",
    "PcdataNode",
    "RepeatKind",
    "RepeatNode",
    "SequenceNode",
    "Symbol",
    "build_glushkov",
    "close_symbol",
    "load_dtd",
    "minimal_child_sequence",
    "open_symbol",
    "parse_content_model",
    "parse_dtd_text",
]
