"""The :class:`Dtd` model: element declarations plus derived information.

This is the schema object handed to the SMP compiler.  Besides giving access
to the parsed declarations it provides the derived quantities the static
analysis needs:

* the root element (from the DOCTYPE name or inferred),
* a recursion check (the paper requires a non-recursive schema),
* minimal serialized lengths of elements and content models, which feed the
  initial-jump offsets of table ``J`` (Example 1 / Example 3 of the paper),
* the set of tag names, used to detect tag names that are prefixes of each
  other (the ``Abstract`` / ``AbstractText`` special case of Section II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Mapping

from repro.errors import DtdRecursionError, DtdValidationError
from repro.dtd.ast import ContentKind, ElementDecl
from repro.dtd.glushkov import GlushkovAutomaton, build_glushkov, minimal_child_sequence
from repro.dtd.parser import parse_dtd_text


@dataclass
class Dtd:
    """A parsed, validated DTD.

    Use :meth:`Dtd.parse` to build one from DTD text, or construct it
    directly from a mapping of :class:`~repro.dtd.ast.ElementDecl` objects
    (the synthetic workload schemas do the latter).
    """

    elements: dict[str, ElementDecl]
    root_name: str
    _glushkov_cache: dict[str, GlushkovAutomaton] = field(
        default_factory=dict, repr=False, compare=False
    )
    _min_length_cache: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, root: str | None = None) -> "Dtd":
        """Parse DTD text and validate it.

        Parameters
        ----------
        text:
            A ``<!DOCTYPE ...>`` declaration or a bare internal subset.
        root:
            Explicit root element name; overrides the DOCTYPE name.
        """
        parsed = parse_dtd_text(text)
        root_name = root or parsed.doctype_name
        dtd = cls.from_elements(parsed.elements, root=root_name)
        return dtd

    @classmethod
    def from_elements(
        cls, elements: Mapping[str, ElementDecl], root: str | None = None
    ) -> "Dtd":
        """Build and validate a DTD from element declarations."""
        element_map = dict(elements)
        if not element_map:
            raise DtdValidationError("DTD declares no elements")
        if root is not None:
            root_name = root
        else:
            try:
                root_name = _infer_root(element_map)
            except DtdValidationError:
                # A cycle makes every element "referenced"; report the more
                # informative recursion error in that case.
                cycle = _find_cycle(element_map)
                if cycle:
                    raise DtdRecursionError(cycle) from None
                raise
        if root_name not in element_map:
            raise DtdValidationError(f"root element {root_name!r} is not declared")
        dtd = cls(elements=element_map, root_name=root_name)
        dtd.validate()
        return dtd

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check referential integrity and non-recursiveness."""
        for declaration in self.elements.values():
            for child in declaration.child_names():
                if child not in self.elements:
                    raise DtdValidationError(
                        f"element {declaration.name!r} references undeclared "
                        f"element {child!r}"
                    )
        cycle = self.find_recursion()
        if cycle:
            raise DtdRecursionError(cycle)

    def find_recursion(self) -> list[str] | None:
        """Return a cycle of element names if the DTD is recursive, else None."""
        return _find_cycle(self.elements)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> ElementDecl:
        """The root element declaration."""
        return self.elements[self.root_name]

    def element(self, name: str) -> ElementDecl:
        """The declaration of element ``name``."""
        try:
            return self.elements[name]
        except KeyError:
            raise DtdValidationError(f"element {name!r} is not declared") from None

    def tag_names(self) -> set[str]:
        """All declared element names."""
        return set(self.elements)

    def prefix_pairs(self) -> list[tuple[str, str]]:
        """Pairs ``(short, long)`` where ``short`` is a proper prefix of ``long``.

        These are the tag names that require the extra verification step of
        the runtime algorithm (the ``Abstract`` / ``AbstractText`` case).
        """
        names = sorted(self.elements)
        pairs: list[tuple[str, str]] = []
        for index, short in enumerate(names):
            for long in names[index + 1:]:
                if long.startswith(short) and long != short:
                    pairs.append((short, long))
        return pairs

    def glushkov(self, name: str) -> GlushkovAutomaton:
        """The Glushkov automaton of element ``name``'s content model (cached)."""
        if name not in self._glushkov_cache:
            self._glushkov_cache[name] = build_glushkov(self.element(name).content)
        return self._glushkov_cache[name]

    # ------------------------------------------------------------------
    # Minimal serialized lengths (for the J table)
    # ------------------------------------------------------------------
    def minimal_element_length(self, name: str) -> int:
        """Minimal number of characters a complete ``<name>...</name>`` occupies.

        An element whose content can be empty serializes minimally as a
        bachelor tag ``<name/>`` (plus required attributes); otherwise the
        opening tag, the minimal content, and the closing tag are counted.
        """
        cached = self._min_length_cache.get(name)
        if cached is not None:
            return cached
        declaration = self.element(name)
        required_attributes = declaration.required_attribute_length()
        content_minimum = self.minimal_content_length(name)
        if content_minimum == 0:
            # "<name/>" possibly with required attributes.
            total = len(name) + 3 + required_attributes
        else:
            # "<name>" + content + "</name>".
            total = (len(name) + 2 + required_attributes) + content_minimum + (len(name) + 3)
        self._min_length_cache[name] = total
        return total

    def minimal_content_length(self, name: str) -> int:
        """Minimal serialized length of the content of element ``name``."""
        declaration = self.element(name)
        if declaration.kind in (ContentKind.EMPTY, ContentKind.PCDATA, ContentKind.ANY):
            return 0
        lengths = {
            child: self.minimal_element_length(child)
            for child in declaration.child_names()
        }
        return minimal_child_sequence(declaration.content, lengths)

    def minimal_opening_tag_length(self, name: str) -> int:
        """Minimal length of an opening tag ``<name ...>`` including attributes."""
        return len(name) + 2 + self.element(name).required_attribute_length()

    # ------------------------------------------------------------------
    # Serialization helpers
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render the DTD back to ``<!ELEMENT>`` / ``<!ATTLIST>`` declarations."""
        lines: list[str] = []
        for name in sorted(self.elements):
            declaration = self.elements[name]
            lines.append(f"<!ELEMENT {name} {_content_text(declaration)}>")
            for attribute in declaration.attributes:
                default = attribute.default.value
                if attribute.default_value is not None and default != "#FIXED":
                    default = f'"{attribute.default_value}"'
                elif attribute.default_value is not None:
                    default = f'#FIXED "{attribute.default_value}"'
                lines.append(
                    f"<!ATTLIST {name} {attribute.name} {attribute.attribute_type} {default}>"
                )
        return "\n".join(lines)

    def to_doctype(self) -> str:
        """Render as a full ``<!DOCTYPE root [ ... ]>`` declaration."""
        return f"<!DOCTYPE {self.root_name} [\n{self.to_text()}\n]>"


def _content_text(declaration: ElementDecl) -> str:
    if declaration.kind is ContentKind.EMPTY:
        return "EMPTY"
    if declaration.kind is ContentKind.ANY:
        return "ANY"
    if declaration.kind is ContentKind.PCDATA:
        return "(#PCDATA)"
    if declaration.kind is ContentKind.MIXED:
        names = sorted(declaration.content.child_names())
        return "(#PCDATA | " + " | ".join(names) + ")*"
    text = str(declaration.content)
    if not text.startswith("("):
        text = f"({text})"
    return text


def _find_cycle(elements: Mapping[str, ElementDecl]) -> list[str] | None:
    """Depth-first search for a cycle in the element reference graph."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in elements}
    stack: list[str] = []

    def visit(name: str) -> list[str] | None:
        colour[name] = GREY
        stack.append(name)
        for child in sorted(elements[name].child_names()):
            if child not in colour:
                continue
            if colour[child] == GREY:
                return stack[stack.index(child):] + [child]
            if colour[child] == WHITE:
                cycle = visit(child)
                if cycle:
                    return cycle
        stack.pop()
        colour[name] = BLACK
        return None

    for name in sorted(elements):
        if colour[name] == WHITE:
            cycle = visit(name)
            if cycle:
                return cycle
    return None


def _infer_root(elements: Mapping[str, ElementDecl]) -> str:
    """Infer the root: an element that no other element references."""
    referenced: set[str] = set()
    for declaration in elements.values():
        referenced.update(declaration.child_names())
    candidates = [name for name in elements if name not in referenced]
    if len(candidates) == 1:
        return candidates[0]
    if not candidates:
        raise DtdValidationError(
            "cannot infer the root element: every element is referenced "
            "(pass root= explicitly)"
        )
    raise DtdValidationError(
        "cannot infer the root element: candidates are "
        + ", ".join(sorted(candidates))
        + " (pass root= explicitly)"
    )


def load_dtd(text_or_elements: str | Mapping[str, ElementDecl], root: str | None = None) -> Dtd:
    """Convenience loader accepting DTD text or a declaration mapping."""
    if isinstance(text_or_elements, str):
        return Dtd.parse(text_or_elements, root=root)
    return Dtd.from_elements(text_or_elements, root=root)
