"""Parser for Document Type Definitions (the schema input of SMP).

The parser supports the DTD subset needed by the paper's experiments and by
the synthetic XMark / MEDLINE schemas: ``<!ELEMENT>`` declarations with
``EMPTY`` / ``ANY`` / ``(#PCDATA)`` / mixed / children content models,
``<!ATTLIST>`` declarations, and comments.  Parameter entities and
conditional sections are not supported (none of the paper's schemas need
them); encountering one raises :class:`~repro.errors.DtdSyntaxError`.

The input may be a bare internal subset (a sequence of declarations) or a
full ``<!DOCTYPE root [ ... ]>`` wrapper, in which case the DOCTYPE name is
used as the root element.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import DtdSyntaxError
from repro.dtd.ast import (
    AttributeDecl,
    AttributeDefault,
    ChoiceNode,
    ContentKind,
    ContentNode,
    ElementDecl,
    EmptyNode,
    NameNode,
    PcdataNode,
    RepeatKind,
    RepeatNode,
    SequenceNode,
)

_NAME_RE = re.compile(r"[A-Za-z_:][\w:.\-]*")
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_DOCTYPE_RE = re.compile(r"<!DOCTYPE\s+([A-Za-z_:][\w:.\-]*)\s*(?:\[(.*)\]\s*)?>", re.DOTALL)


@dataclass
class ParsedDtd:
    """Raw result of parsing a DTD text."""

    elements: dict[str, ElementDecl]
    doctype_name: str | None


def parse_dtd_text(text: str) -> ParsedDtd:
    """Parse ``text`` into element declarations.

    ``text`` may be a full ``<!DOCTYPE ...>`` declaration or just the internal
    subset (a sequence of ``<!ELEMENT>`` / ``<!ATTLIST>`` declarations).
    """
    doctype_name: str | None = None
    body = text
    doctype_match = _DOCTYPE_RE.search(text)
    if doctype_match:
        doctype_name = doctype_match.group(1)
        body = doctype_match.group(2) or ""
    body = _COMMENT_RE.sub(" ", body)
    if "%" in body and re.search(r"<!ENTITY\s*%", body):
        raise DtdSyntaxError("parameter entities are not supported")

    elements: dict[str, ElementDecl] = {}
    attlists: dict[str, list[AttributeDecl]] = {}

    for declaration in _iter_declarations(body):
        if declaration.startswith("<!ELEMENT"):
            name, decl = _parse_element_declaration(declaration)
            if name in elements:
                raise DtdSyntaxError(f"duplicate <!ELEMENT {name}> declaration")
            elements[name] = decl
        elif declaration.startswith("<!ATTLIST"):
            name, attributes = _parse_attlist_declaration(declaration)
            attlists.setdefault(name, []).extend(attributes)
        elif declaration.startswith("<!ENTITY") or declaration.startswith("<!NOTATION"):
            # General entities and notations do not influence the analysis.
            continue
        else:
            raise DtdSyntaxError(f"unrecognised declaration: {declaration[:40]!r}")

    for name, attributes in attlists.items():
        if name not in elements:
            raise DtdSyntaxError(f"<!ATTLIST {name}> for undeclared element")
        elements[name].attributes.extend(attributes)

    return ParsedDtd(elements=elements, doctype_name=doctype_name)


def _iter_declarations(body: str):
    """Yield individual ``<!...>`` declarations from the internal subset."""
    cursor = 0
    length = len(body)
    while cursor < length:
        start = body.find("<!", cursor)
        if start < 0:
            remainder = body[cursor:].strip()
            if remainder:
                raise DtdSyntaxError(f"unexpected content in DTD: {remainder[:40]!r}")
            return
        gap = body[cursor:start].strip()
        if gap:
            raise DtdSyntaxError(f"unexpected content in DTD: {gap[:40]!r}")
        end = body.find(">", start)
        if end < 0:
            raise DtdSyntaxError("unterminated declaration in DTD")
        yield body[start:end + 1]
        cursor = end + 1


# ----------------------------------------------------------------------
# <!ELEMENT ...>
# ----------------------------------------------------------------------
def _parse_element_declaration(declaration: str) -> tuple[str, ElementDecl]:
    inner = declaration[len("<!ELEMENT"):-1].strip()
    name_match = _NAME_RE.match(inner)
    if not name_match:
        raise DtdSyntaxError(f"missing element name in {declaration!r}")
    name = name_match.group(0)
    content_text = inner[name_match.end():].strip()
    kind, content = parse_content_model(content_text)
    return name, ElementDecl(name=name, kind=kind, content=content)


def parse_content_model(text: str) -> tuple[ContentKind, ContentNode]:
    """Parse the content-specification part of an element declaration."""
    stripped = text.strip()
    if stripped == "EMPTY":
        return ContentKind.EMPTY, EmptyNode()
    if stripped == "ANY":
        return ContentKind.ANY, EmptyNode()
    if stripped in ("#PCDATA", "(#PCDATA)", "(#PCDATA)*"):
        return ContentKind.PCDATA, PcdataNode()
    if stripped.startswith("(") and "#PCDATA" in stripped:
        return _parse_mixed_content(stripped)
    parser = _ContentModelParser(stripped)
    node = parser.parse()
    return ContentKind.CHILDREN, node


def _parse_mixed_content(text: str) -> tuple[ContentKind, ContentNode]:
    """Parse mixed content ``(#PCDATA | a | b)*``."""
    body = text.strip()
    has_star = body.endswith("*")
    if has_star:
        body = body[:-1].rstrip()
    if not (body.startswith("(") and body.endswith(")")):
        raise DtdSyntaxError(f"malformed mixed content model: {text!r}")
    parts = [part.strip() for part in body[1:-1].split("|")]
    if parts[0] != "#PCDATA":
        raise DtdSyntaxError(f"mixed content must start with #PCDATA: {text!r}")
    names = parts[1:]
    if not names:
        return ContentKind.PCDATA, PcdataNode()
    if not has_star:
        raise DtdSyntaxError(f"mixed content with element names requires '*': {text!r}")
    for name in names:
        if not _NAME_RE.fullmatch(name):
            raise DtdSyntaxError(f"invalid name {name!r} in mixed content")
    choice = ChoiceNode(items=[NameNode(name) for name in names])
    return ContentKind.MIXED, RepeatNode(item=choice, kind=RepeatKind.STAR)


class _ContentModelParser:
    """Recursive-descent parser for children content models."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._position = 0

    def parse(self) -> ContentNode:
        node = self._parse_particle()
        self._skip_whitespace()
        if self._position != len(self._text):
            raise DtdSyntaxError(
                f"trailing characters in content model: {self._text[self._position:]!r}"
            )
        return node

    def _skip_whitespace(self) -> None:
        while self._position < len(self._text) and self._text[self._position].isspace():
            self._position += 1

    def _peek(self) -> str:
        if self._position < len(self._text):
            return self._text[self._position]
        return ""

    def _parse_particle(self) -> ContentNode:
        self._skip_whitespace()
        if self._peek() == "(":
            node = self._parse_group()
        else:
            node = self._parse_name()
        return self._maybe_repeat(node)

    def _parse_group(self) -> ContentNode:
        assert self._peek() == "("
        self._position += 1
        items = [self._parse_particle()]
        separator: str | None = None
        while True:
            self._skip_whitespace()
            character = self._peek()
            if character == ")":
                self._position += 1
                break
            if character not in (",", "|"):
                raise DtdSyntaxError(
                    f"expected ',' '|' or ')' in content model at {self._position}"
                )
            if separator is None:
                separator = character
            elif character != separator:
                raise DtdSyntaxError(
                    "cannot mix ',' and '|' at the same level of a content model"
                )
            self._position += 1
            items.append(self._parse_particle())
        if len(items) == 1:
            return items[0]
        if separator == "|":
            return ChoiceNode(items=items)
        return SequenceNode(items=items)

    def _parse_name(self) -> ContentNode:
        self._skip_whitespace()
        match = _NAME_RE.match(self._text, self._position)
        if not match:
            raise DtdSyntaxError(
                f"expected an element name at position {self._position} "
                f"in content model {self._text!r}"
            )
        self._position = match.end()
        return NameNode(match.group(0))

    def _maybe_repeat(self, node: ContentNode) -> ContentNode:
        character = self._peek()
        if character == "*":
            self._position += 1
            return RepeatNode(item=node, kind=RepeatKind.STAR)
        if character == "+":
            self._position += 1
            return RepeatNode(item=node, kind=RepeatKind.PLUS)
        if character == "?":
            self._position += 1
            return RepeatNode(item=node, kind=RepeatKind.OPTIONAL)
        return node


# ----------------------------------------------------------------------
# <!ATTLIST ...>
# ----------------------------------------------------------------------
_ATTLIST_TYPES = (
    "CDATA", "ID", "IDREF", "IDREFS", "ENTITY", "ENTITIES",
    "NMTOKEN", "NMTOKENS", "NOTATION",
)


def _parse_attlist_declaration(declaration: str) -> tuple[str, list[AttributeDecl]]:
    inner = declaration[len("<!ATTLIST"):-1].strip()
    name_match = _NAME_RE.match(inner)
    if not name_match:
        raise DtdSyntaxError(f"missing element name in {declaration!r}")
    element_name = name_match.group(0)
    rest = inner[name_match.end():]
    tokens = _tokenize_attlist(rest)
    attributes: list[AttributeDecl] = []
    index = 0
    while index < len(tokens):
        attribute_name = tokens[index]
        index += 1
        if index >= len(tokens):
            raise DtdSyntaxError(f"incomplete attribute declaration for {attribute_name!r}")
        attribute_type = tokens[index]
        index += 1
        if attribute_type.startswith("("):
            # Enumerated type: already a single token thanks to the tokenizer.
            pass
        elif attribute_type == "NOTATION":
            if index >= len(tokens) or not tokens[index].startswith("("):
                raise DtdSyntaxError("NOTATION attribute type requires an enumeration")
            attribute_type = f"NOTATION {tokens[index]}"
            index += 1
        elif attribute_type not in _ATTLIST_TYPES:
            raise DtdSyntaxError(f"unknown attribute type {attribute_type!r}")
        if index >= len(tokens):
            raise DtdSyntaxError(f"missing default for attribute {attribute_name!r}")
        default_token = tokens[index]
        index += 1
        default_value: str | None = None
        if default_token == "#REQUIRED":
            default = AttributeDefault.REQUIRED
        elif default_token == "#IMPLIED":
            default = AttributeDefault.IMPLIED
        elif default_token == "#FIXED":
            default = AttributeDefault.FIXED
            if index >= len(tokens):
                raise DtdSyntaxError(f"#FIXED attribute {attribute_name!r} needs a value")
            default_value = _strip_quotes(tokens[index])
            index += 1
        else:
            default = AttributeDefault.DEFAULT
            default_value = _strip_quotes(default_token)
        attributes.append(
            AttributeDecl(
                name=attribute_name,
                attribute_type=attribute_type,
                default=default,
                default_value=default_value,
            )
        )
    return element_name, attributes


def _strip_quotes(token: str) -> str:
    if len(token) >= 2 and token[0] == token[-1] and token[0] in ("'", '"'):
        return token[1:-1]
    return token


def _tokenize_attlist(text: str) -> list[str]:
    """Split an ATTLIST body into tokens, keeping quoted values and groups whole."""
    tokens: list[str] = []
    cursor = 0
    length = len(text)
    while cursor < length:
        character = text[cursor]
        if character.isspace():
            cursor += 1
            continue
        if character in ("'", '"'):
            end = text.find(character, cursor + 1)
            if end < 0:
                raise DtdSyntaxError("unterminated quoted value in ATTLIST")
            tokens.append(text[cursor:end + 1])
            cursor = end + 1
        elif character == "(":
            end = text.find(")", cursor)
            if end < 0:
                raise DtdSyntaxError("unterminated enumeration in ATTLIST")
            tokens.append(text[cursor:end + 1].replace(" ", ""))
            cursor = end + 1
        else:
            end = cursor
            while end < length and not text[end].isspace() and text[end] not in ("'", '"', "("):
                end += 1
            tokens.append(text[cursor:end])
            cursor = end
    return tokens
