"""The document-level DTD-automaton (Figure 5 of the paper).

A DTD-automaton is a finite-state automaton that recognises exactly the
well-formed documents valid with respect to a non-recursive DTD.  Its states
come in *dual pairs*: an opening state ``q`` entered by reading ``<t>`` and a
closing state ``q_hat`` entered by reading ``</t>``.  All transitions into a
state carry the same label (*homogeneity*), which the static analysis relies
on when attaching actions to states.

Construction
------------
Each element type's content model is compiled into a Glushkov position
automaton.  The document automaton is obtained by hierarchically expanding
positions: every position (an occurrence of a child element name within a
parent's content model) becomes a fresh dual state pair, and the child's own
content model is expanded recursively inside that pair.  Because the DTD is
non-recursive the expansion terminates; the expansion of one element type may
appear several times (once per occurrence context), exactly as in the paper
where states ``q4`` and ``q5`` are both ``b``-labelled occurrences inside
``c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CompilationError
from repro.dtd.model import Dtd

#: Transition symbols: ("open", tag) for ``<tag>`` and ("close", tag) for ``</tag>``.
Symbol = tuple[str, str]

OPEN = "open"
CLOSE = "close"

#: Safety valve against pathological DTDs whose hierarchical expansion explodes.
MAX_STATES = 500_000


def open_symbol(tag: str) -> Symbol:
    """The transition symbol for the opening tag of ``tag``."""
    return (OPEN, tag)


def close_symbol(tag: str) -> Symbol:
    """The transition symbol for the closing tag of ``tag``."""
    return (CLOSE, tag)


@dataclass
class DtdState:
    """One state of the DTD-automaton.

    Attributes
    ----------
    state_id:
        Dense integer identifier.
    tag:
        The element name carried by every incoming transition ("" for the
        initial state ``q0``).
    is_opening:
        True for the dual ``q`` (reads ``<tag>``), False for ``q_hat``
        (reads ``</tag>``); False for ``q0``.
    pair_id:
        Identifier of the occurrence pair this state belongs to (-1 for q0).
    depth:
        Nesting depth of the occurrence (root element = 1, q0 = 0).
    """

    state_id: int
    tag: str
    is_opening: bool
    pair_id: int
    depth: int

    @property
    def is_initial(self) -> bool:
        """True for ``q0``."""
        return self.pair_id < 0

    def describe(self) -> str:
        """Human-readable name, e.g. ``q3<item>`` or ``q3^</item>``."""
        if self.is_initial:
            return "q0"
        marker = f"<{self.tag}>" if self.is_opening else f"</{self.tag}>"
        return f"q{self.state_id}{marker}"


@dataclass
class OccurrencePair:
    """A dual (opening, closing) state pair for one element occurrence."""

    pair_id: int
    element: str
    open_state: int
    close_state: int
    parent_pair: int | None
    depth: int
    children: list[int] = field(default_factory=list)

    def states(self) -> tuple[int, int]:
        """The two state ids of the pair."""
        return (self.open_state, self.close_state)


class DtdAutomaton:
    """The document-level automaton of a non-recursive DTD."""

    def __init__(self, dtd: Dtd) -> None:
        self.dtd = dtd
        self.states: list[DtdState] = []
        self.pairs: list[OccurrencePair] = []
        self.transitions: dict[int, dict[Symbol, set[int]]] = {}
        self.initial_state = self._new_state(tag="", is_opening=False, pair_id=-1, depth=0)
        self.root_pair = self._expand(dtd.root_name, parent_pair=None, depth=1)
        self._add_transition(
            self.initial_state, open_symbol(dtd.root_name), self.pairs[self.root_pair].open_state
        )
        self.final_states: set[int] = {self.pairs[self.root_pair].close_state}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new_state(self, tag: str, is_opening: bool, pair_id: int, depth: int) -> int:
        if len(self.states) >= MAX_STATES:
            raise CompilationError(
                f"DTD-automaton exceeds {MAX_STATES} states; the schema's "
                "hierarchical expansion is too large for SMP compilation"
            )
        state = DtdState(
            state_id=len(self.states),
            tag=tag,
            is_opening=is_opening,
            pair_id=pair_id,
            depth=depth,
        )
        self.states.append(state)
        self.transitions[state.state_id] = {}
        return state.state_id

    def _new_pair(self, element: str, parent_pair: int | None, depth: int) -> int:
        pair_id = len(self.pairs)
        open_state = self._new_state(tag=element, is_opening=True, pair_id=pair_id, depth=depth)
        close_state = self._new_state(tag=element, is_opening=False, pair_id=pair_id, depth=depth)
        pair = OccurrencePair(
            pair_id=pair_id,
            element=element,
            open_state=open_state,
            close_state=close_state,
            parent_pair=parent_pair,
            depth=depth,
        )
        self.pairs.append(pair)
        if parent_pair is not None:
            self.pairs[parent_pair].children.append(pair_id)
        return pair_id

    def _add_transition(self, source: int, symbol: Symbol, target: int) -> None:
        self.transitions[source].setdefault(symbol, set()).add(target)

    def _expand(self, element: str, parent_pair: int | None, depth: int) -> int:
        """Create the pair for one occurrence of ``element`` and expand its content."""
        pair_id = self._new_pair(element, parent_pair, depth)
        pair = self.pairs[pair_id]
        declaration = self.dtd.element(element)
        if not declaration.allows_children() or not declaration.child_names():
            # Text-only / EMPTY / ANY-without-structure content: the closing
            # tag may follow the opening tag directly.
            self._add_transition(pair.open_state, close_symbol(element), pair.close_state)
            return pair_id

        glushkov = self.dtd.glushkov(element)
        position_pairs: dict[int, int] = {}
        for position, child_name in glushkov.positions.items():
            position_pairs[position] = self._expand(child_name, pair_id, depth + 1)

        for position in glushkov.first:
            child_pair = self.pairs[position_pairs[position]]
            self._add_transition(
                pair.open_state, open_symbol(child_pair.element), child_pair.open_state
            )
        for position, followers in glushkov.follow.items():
            source_pair = self.pairs[position_pairs[position]]
            for follower in followers:
                target_pair = self.pairs[position_pairs[follower]]
                self._add_transition(
                    source_pair.close_state,
                    open_symbol(target_pair.element),
                    target_pair.open_state,
                )
        for position in glushkov.last:
            child_pair = self.pairs[position_pairs[position]]
            self._add_transition(
                child_pair.close_state, close_symbol(element), pair.close_state
            )
        if glushkov.nullable:
            self._add_transition(pair.open_state, close_symbol(element), pair.close_state)
        return pair_id

    # ------------------------------------------------------------------
    # Accessors used by the static analysis
    # ------------------------------------------------------------------
    def state(self, state_id: int) -> DtdState:
        """The state object with identifier ``state_id``."""
        return self.states[state_id]

    def pair_of(self, state_id: int) -> OccurrencePair | None:
        """The occurrence pair of a state (None for ``q0``)."""
        pair_id = self.states[state_id].pair_id
        if pair_id < 0:
            return None
        return self.pairs[pair_id]

    def dual_of(self, state_id: int) -> int | None:
        """The dual state (opening <-> closing) of ``state_id`` (None for q0)."""
        pair = self.pair_of(state_id)
        if pair is None:
            return None
        return pair.close_state if state_id == pair.open_state else pair.open_state

    def parent_states(self, state_id: int) -> tuple[int, ...]:
        """The parent states of ``state_id`` in the sense of Example 8.

        For a state belonging to an occurrence whose parent occurrence is
        ``P``, the parent states are ``P``'s dual pair; for the root
        occurrence the single parent state is ``q0``.
        """
        pair = self.pair_of(state_id)
        if pair is None:
            return ()
        if pair.parent_pair is None:
            return (self.initial_state,)
        parent = self.pairs[pair.parent_pair]
        return parent.states()

    def subtree_states(self, pair_id: int) -> set[int]:
        """States of all occurrences strictly below ``pair_id``.

        These are exactly the states via which a path from the pair's opening
        state to its closing state can travel (the set ``R`` of step 1(b) in
        Figure 6).
        """
        result: set[int] = set()
        stack = list(self.pairs[pair_id].children)
        while stack:
            child_id = stack.pop()
            child = self.pairs[child_id]
            result.update(child.states())
            stack.extend(child.children)
        return result

    def branch_names(self, state_id: int) -> list[str]:
        """Element names on the document branch of ``state_id`` (root first).

        The branch of ``q0`` is empty; the branch of any other state is the
        chain of ancestor element names ending with the state's own element
        (Example 9 of the paper).
        """
        pair = self.pair_of(state_id)
        names: list[str] = []
        while pair is not None:
            names.append(pair.element)
            pair = self.pairs[pair.parent_pair] if pair.parent_pair is not None else None
        return list(reversed(names))

    def iter_transitions(self) -> Iterator[tuple[int, Symbol, int]]:
        """Yield all transitions as ``(source, symbol, target)`` triples."""
        for source, by_symbol in self.transitions.items():
            for symbol, targets in by_symbol.items():
                for target in targets:
                    yield source, symbol, target

    def successors(self, state_id: int) -> Iterator[tuple[Symbol, int]]:
        """Yield ``(symbol, target)`` pairs for the outgoing transitions."""
        for symbol, targets in self.transitions[state_id].items():
            for target in targets:
                yield symbol, target

    def state_count(self) -> int:
        """Number of states, including ``q0``."""
        return len(self.states)

    def transition_count(self) -> int:
        """Total number of transitions."""
        return sum(1 for _ in self.iter_transitions())

    # ------------------------------------------------------------------
    # Weights for initial-jump computation (table J)
    # ------------------------------------------------------------------
    def skip_weight(self, state_id: int) -> int:
        """Minimal characters consumed by reading the tag that enters this state.

        The weights deliberately *under*-estimate so that jump offsets derived
        from them can never overshoot a token the runtime needs to see:

        * opening state of ``c``: ``len("<c") + required attributes + 1``
          (the shortest opening tag, also covering the prefix of a bachelor
          tag ``<c .../>`` minus its final two characters),
        * closing state: ``1`` (the ``>`` that any closing or bachelor form
          must still contribute).

        Together a skipped (open, close) pair costs ``len(c) + 3 + atts``,
        the exact length of the minimal bachelor tag -- this reproduces the
        offsets of the paper's Example 1 (25 characters) and Example 3
        (4 characters).
        """
        state = self.states[state_id]
        if state.is_initial:
            return 0
        if state.is_opening:
            declaration = self.dtd.element(state.tag)
            return len(state.tag) + 2 + declaration.required_attribute_length()
        return 1
